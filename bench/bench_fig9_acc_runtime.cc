// Figure 9 reproduction: accuracy-to-runtime scatter for the prominent
// measures. Runtime is inference time only (computing the test-vs-train
// dissimilarity matrices), exactly as in the paper.
//
// Paper shape: lock-step measures (O(m)) fastest but least accurate; NCCc
// and SINK (O(m log m)) offer the best accuracy/runtime trade-off; elastic
// and alignment-kernel measures (O(m^2)) cost an order of magnitude more
// for comparable accuracy.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/one_nn.h"
#include "src/classify/param_grids.h"
#include "src/core/registry.h"

namespace {

using Clock = std::chrono::steady_clock;
using tsdist::bench::BenchArchive;
using tsdist::bench::MeanOf;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig9_acc_runtime");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Figure 9: accuracy vs inference runtime over "
            << archive.size() << " datasets\n";
  std::cout << std::left << std::setw(12) << "Measure" << std::setw(12)
            << "AvgAcc" << std::setw(14) << "Runtime(ms)" << std::setw(14)
            << "CostClass" << "\n";

  struct Entry {
    const char* name;
    tsdist::ParamMap params;
  };
  const std::vector<Entry> entries = {
      {"euclidean", {}},
      {"lorentzian", {}},
      {"nccc", {}},
      {"sink", tsdist::UnsupervisedParamsFor("sink")},
      {"dtw", tsdist::UnsupervisedParamsFor("dtw")},
      {"msm", tsdist::UnsupervisedParamsFor("msm")},
      {"twe", tsdist::UnsupervisedParamsFor("twe")},
      {"erp", {}},
      {"gak", tsdist::UnsupervisedParamsFor("gak")},
      {"kdtw", tsdist::UnsupervisedParamsFor("kdtw")},
  };

  struct Row {
    const char* name;
    double avg_acc;
    double ms;
    const char* cost;
  };
  std::vector<Row> results;
  obs_session.RunCase("evaluate_entries", [&] {
    results.clear();
    for (const auto& entry : entries) {
      std::vector<double> accuracies;
      const auto start = Clock::now();
      for (const auto& dataset : archive) {
        const auto measure =
            tsdist::Registry::Global().Create(entry.name, entry.params);
        const tsdist::Matrix e =
            engine.Compute(dataset.test(), dataset.train(), *measure);
        accuracies.push_back(tsdist::OneNnAccuracy(
            e, dataset.test_labels(), dataset.train_labels()));
      }
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count();
      const auto measure =
          tsdist::Registry::Global().Create(entry.name, entry.params);
      const char* cost =
          measure->cost_class() == tsdist::CostClass::kLinear ? "O(m)"
          : measure->cost_class() == tsdist::CostClass::kLinearithmic
              ? "O(m log m)"
              : "O(m^2)";
      results.push_back({entry.name, MeanOf(accuracies), ms, cost});
    }
  });
  for (const auto& row : results) {
    std::cout << std::left << std::setw(12) << row.name << std::setw(12)
              << std::fixed << std::setprecision(4) << row.avg_acc
              << std::setw(14) << std::setprecision(1) << row.ms
              << std::setw(14) << row.cost << "\n";
  }
  std::cout << "\n(Paper shape: runtime ordering O(m) < O(m log m) << O(m^2)\n"
            << " while NCCc/SINK hold most of the elastic accuracy.)\n";
  return 0;
}
