// Table 1 reproduction: the study's inventory — category cardinalities and
// the number of scaling (normalization) methods evaluated per category,
// generated from the live registry so the counts cannot drift from the
// code.

#include <iomanip>
#include <iostream>
#include <vector>

#include "src/core/registry.h"
#include "src/normalization/normalization.h"

#include "bench/bench_common.h"

int main() {
  tsdist::bench::ObsSession obs_session("bench_table1_inventory");
  using namespace tsdist;
  const Registry& registry = Registry::Global();
  // 7 per-series methods + pairwise AdaptiveScaling = the paper's 8.
  const std::size_t norms = PerSeriesNormalizerNames().size() + 1;

  struct Row {
    const char* category;
    std::size_t cardinality;
    std::size_t scaling_methods;
  };
  std::vector<Row> rows;
  obs_session.RunCase("inventory", [&] {
    rows = {
        {"Lock-step",
         registry.NamesInCategory(MeasureCategory::kLockStep).size(), norms},
        {"Sliding", registry.NamesInCategory(MeasureCategory::kSliding).size(),
         norms},
        {"Elastic", registry.NamesInCategory(MeasureCategory::kElastic).size(),
         1},
        {"Kernel", registry.NamesInCategory(MeasureCategory::kKernel).size(),
         1},
        {"Embedding", 4 /* dataset-level transforms; see src/embedding */, 1},
    };
  });

  std::cout << "Table 1: measure inventory (generated from the registry)\n";
  std::cout << std::left << std::setw(12) << "Category" << std::setw(14)
            << "Cardinality" << std::setw(16) << "ScalingMethods" << "\n";
  std::size_t total = 0;
  for (const Row& row : rows) {
    total += row.cardinality;
    std::cout << std::left << std::setw(12) << row.category << std::setw(14)
              << row.cardinality << std::setw(16) << row.scaling_methods
              << "\n";
  }
  std::cout << "Total measures: " << total << " (paper: 71)\n";
  return total == 71 ? 0 : 1;
}
