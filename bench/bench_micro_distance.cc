// Micro-benchmarks of the per-comparison distance kernels (google-benchmark).
//
// Quantifies the raw cost classes behind Figure 9: O(m) lock-step,
// O(m log m) sliding, O(m^2) elastic/alignment-kernel, across series
// lengths. Run with --benchmark_filter=... to narrow.

#include <benchmark/benchmark.h>

#include <vector>

#include "src/core/registry.h"
#include "src/linalg/rng.h"

namespace {

std::vector<double> RandomSeries(std::size_t m, std::uint64_t seed) {
  tsdist::Rng rng(seed);
  std::vector<double> out(m);
  for (auto& v : out) v = rng.Gaussian();
  return out;
}

void BM_Distance(benchmark::State& state, const std::string& name,
                 const tsdist::ParamMap& params) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const auto a = RandomSeries(m, 1);
  const auto b = RandomSeries(m, 2);
  const auto measure = tsdist::Registry::Global().Create(name, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure->Distance(a, b));
  }
  state.SetComplexityN(static_cast<std::int64_t>(m));
}

void RegisterAll() {
  struct Entry {
    const char* name;
    tsdist::ParamMap params;
  };
  static const Entry kEntries[] = {
      {"euclidean", {}},
      {"manhattan", {}},
      {"lorentzian", {}},
      {"emanon4", {}},
      {"nccc", {}},
      {"dtw", {{"delta", 10.0}}},
      {"dtw", {{"delta", 100.0}}},
      {"msm", {{"c", 0.5}}},
      {"twe", {{"lambda", 1.0}, {"nu", 0.0001}}},
      {"erp", {}},
      {"lcss", {{"delta", 10.0}, {"epsilon", 0.2}}},
      {"edr", {{"epsilon", 0.1}}},
      {"sink", {{"gamma", 5.0}}},
      {"rbf", {{"gamma", 2.0}}},
      {"gak", {{"gamma", 0.1}}},
      {"kdtw", {{"gamma", 0.125}}},
  };
  for (const auto& entry : kEntries) {
    std::string label = "BM_Distance/";
    label += entry.name;
    if (!entry.params.empty()) {
      label += "/";
      label += tsdist::ToString(entry.params);
    }
    benchmark::RegisterBenchmark(
        label.c_str(),
        [entry](benchmark::State& state) {
          BM_Distance(state, entry.name, entry.params);
        })
        ->RangeMultiplier(4)
        ->Range(64, 1024)
        ->Complexity();
  }
}

const bool kRegistered = (RegisterAll(), true);

}  // namespace
