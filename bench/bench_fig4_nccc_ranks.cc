// Figure 4 reproduction: critical-difference diagram of NCCc under
// different normalization methods, with Lorentzian + UnitLength as the
// baseline.
//
// Paper shape: NCCc with z-score, MeanNorm, and UnitLength significantly
// improve over the baseline; AdaptiveScaling and MinMax combos do not.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig4_nccc_ranks");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Figure 4: normalization methods for NCCc over "
            << archive.size() << " datasets\n";

  std::vector<ComboAccuracies> combos;
  obs_session.RunCase("evaluate_ranks", [&] {
    combos.clear();
    for (const char* norm :
         {"zscore", "meannorm", "unitlength", "adaptive", "minmax"}) {
      combos.push_back(EvaluateCombo("nccc", {}, norm, archive, engine));
    }
    combos.push_back(
        EvaluateCombo("lorentzian", {}, "unitlength", archive, engine));
  });

  tsdist::bench::PrintCdDiagram(
      "Average ranks: NCCc x normalization vs Lorentzian + UnitLength",
      combos, 0.10);
  std::cout << "(Paper shape: z-score / MeanNorm / UnitLength significantly\n"
            << " better than the baseline; AdaptiveScaling and MinMax not.)\n";
  return 0;
}
