// Lock-step SIMD kernel benchmark: every batched measure is timed twice —
// once pinned to the scalar dispatch level and once at the CPU's native
// level (AVX2/AVX-512) — over the same synthetic collection, so the
// tsdist.bench.v2 report carries a per-measure scalar-vs-vector sample pair
// with perf-counter and kernel-attribution evidence. The binary also prints
// a median-speedup table and verifies the two levels produce bit-identical
// distance matrices (the dispatch contract; see docs/KERNELS.md).
//
// Collection sizes scale with TSDIST_SCALE (tiny/small/medium). The series
// length is a multiple of neither 8 nor 16 so the tail path is exercised.

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/core/time_series.h"
#include "src/linalg/matrix.h"
#include "src/linalg/rng.h"
#include "src/obs/profiler.h"
#include "src/simd/dispatch.h"

#include "bench/bench_common.h"

namespace {

std::vector<tsdist::TimeSeries> MakeCollection(std::size_t n, std::size_t m,
                                               std::uint64_t seed) {
  tsdist::Rng rng(seed);
  std::vector<tsdist::TimeSeries> out;
  out.reserve(n);
  std::vector<double> values(m);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : values) v = rng.Gaussian();
    out.emplace_back(values, static_cast<int>(i % 2));
  }
  return out;
}

double MedianOf(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool BitIdentical(const tsdist::Matrix& x, const tsdist::Matrix& y) {
  if (x.rows() != y.rows() || x.cols() != y.cols()) return false;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double xv = x(r, c), yv = y(r, c);
      if (std::memcmp(&xv, &yv, sizeof(double)) != 0) return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_kernel_lockstep");
  using namespace tsdist;

  std::size_t n = 64, m = 508;  // 508 = 4 mod 8: exercises the lane tail
  switch (bench::ScaleFromEnv()) {
    case ArchiveScale::kTiny:
      n = 32;
      m = 252;
      break;
    case ArchiveScale::kSmall:
      break;
    case ArchiveScale::kMedium:
      n = 128;
      m = 1020;
      break;
  }
  const std::vector<TimeSeries> queries = MakeCollection(n, m, 1);
  const std::vector<TimeSeries> references = MakeCollection(n, m, 2);

  // Single-threaded engine: the comparison is kernel ILP, not parallelism.
  PairwiseEngine engine(1);
  const Registry& registry = Registry::Global();
  const std::vector<std::string> measures = {
      "euclidean",     "manhattan",
      "chebyshev",     "minkowski",
      "squared_euclidean", "pearson_chisq",
      "neyman_chisq",  "squared_chisq",
      "prob_symmetric_chisq", "divergence",
      "clark",         "additive_symmetric_chisq"};

  const simd::SimdLevel native = simd::DetectBestSimdLevel();
  std::cout << "Lock-step kernel dispatch benchmark  (n=" << n << " x " << n
            << ", m=" << m << ", native=" << simd::ToString(native) << ")\n";
  std::cout << std::left << std::setw(28) << "measure" << std::right
            << std::setw(14) << "scalar ms" << std::setw(14) << "native ms"
            << std::setw(10) << "speedup" << std::setw(8) << "bits" << "\n";

  bool all_identical = true;
  std::vector<std::pair<std::string, double>> speedups;
  for (const std::string& name : measures) {
    const MeasurePtr measure = registry.Create(name);
    if (measure == nullptr) continue;
    Matrix scalar_result(0, 0), native_result(0, 0);

    simd::SetActiveSimdLevelForTest(simd::SimdLevel::kScalar);
    obs_session.RunCase(name + "/scalar", [&] {
      obs::PerfRegion region("kernel_lockstep/" + name + "/scalar");
      scalar_result = engine.Compute(queries, references, *measure);
    });
    const double scalar_ms = MedianOf(obs_session.cases().back().samples_ms);

    simd::SetActiveSimdLevelForTest(native);
    obs_session.RunCase(name + "/native", [&] {
      obs::PerfRegion region("kernel_lockstep/" + name + "/native");
      native_result = engine.Compute(queries, references, *measure);
    });
    const double native_ms = MedianOf(obs_session.cases().back().samples_ms);

    const bool identical = BitIdentical(scalar_result, native_result);
    all_identical = all_identical && identical;
    const double speedup = native_ms > 0.0 ? scalar_ms / native_ms : 0.0;
    speedups.emplace_back(name, speedup);
    std::cout << std::left << std::setw(28) << name << std::right
              << std::setw(14) << std::fixed << std::setprecision(3)
              << scalar_ms << std::setw(14) << native_ms << std::setw(9)
              << std::setprecision(2) << speedup << "x" << std::setw(8)
              << (identical ? "same" : "DIFF") << "\n";
  }
  simd::ResetActiveSimdLevelForTest();

  std::vector<double> ratios;
  for (const auto& [name, s] : speedups) ratios.push_back(s);
  std::cout << "median speedup: " << std::setprecision(2) << MedianOf(ratios)
            << "x over " << ratios.size() << " measures; matrices "
            << (all_identical ? "bit-identical" : "DIVERGED") << " across levels\n";
  return all_identical ? 0 : 1;
}
