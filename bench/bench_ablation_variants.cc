// Ablation: do the elastic-measure extensions (DDTW, WDTW, CID) improve
// over their base measures?
//
// Section 7 of the paper excludes these variants, citing the bake-off study
// [11] which "did not identify significant improvements from their use".
// This bench revisits that call on the synthetic archive: each variant vs
// its base, with Wilcoxon verdicts.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/one_nn.h"
#include "src/elastic/variants.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;

ComboAccuracies EvaluateFromRegistry(const tsdist::Registry& registry,
                                     const std::string& name,
                                     const tsdist::ParamMap& params,
                                     const std::vector<tsdist::Dataset>& archive,
                                     const tsdist::PairwiseEngine& engine) {
  ComboAccuracies out;
  out.measure = name;
  out.normalization = "zscore";
  out.label = name;
  if (!params.empty()) {
    out.label += " (";
    out.label += tsdist::ToString(params);
    out.label += ")";
  }
  for (const auto& dataset : archive) {
    const tsdist::MeasurePtr measure = registry.Create(name, params);
    const tsdist::Matrix e =
        engine.Compute(dataset.test(), dataset.train(), *measure);
    out.accuracies.push_back(tsdist::OneNnAccuracy(
        e, dataset.test_labels(), dataset.train_labels()));
  }
  return out;
}

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_ablation_variants");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());

  // Local registry = global inventory + the variants.
  tsdist::Registry registry;
  for (const auto& name : tsdist::Registry::Global().Names()) {
    registry.Register(name, [name](const tsdist::ParamMap& params) {
      return tsdist::Registry::Global().Create(name, params);
    });
  }
  tsdist::RegisterElasticVariants(&registry);

  std::cout << "Ablation: elastic variants vs their base measures, "
            << archive.size() << " datasets\n";

  struct Pair {
    const char* variant;
    tsdist::ParamMap variant_params;
    const char* base;
    tsdist::ParamMap base_params;
  };
  const std::vector<Pair> pairs = {
      {"ddtw", {{"delta", 10.0}}, "dtw", {{"delta", 10.0}}},
      {"wdtw", {{"g", 0.05}}, "dtw", {{"delta", 100.0}}},
      {"cid_euclidean", {}, "euclidean", {}},
      {"cid_dtw", {{"delta", 10.0}}, "dtw", {{"delta", 10.0}}},
  };

  std::vector<std::pair<ComboAccuracies, ComboAccuracies>> results;
  obs_session.RunCase("evaluate_variants", [&] {
    results.clear();
    for (const auto& pair : pairs) {
      ComboAccuracies base = EvaluateFromRegistry(
          registry, pair.base, pair.base_params, archive, engine);
      ComboAccuracies variant = EvaluateFromRegistry(
          registry, pair.variant, pair.variant_params, archive, engine);
      results.emplace_back(std::move(base), std::move(variant));
    }
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ComboAccuracies& base = results[i].first;
    const ComboAccuracies& variant = results[i].second;
    tsdist::bench::PrintTableHeader(
        std::string(pairs[i].variant) + " vs " + pairs[i].base, base.label);
    tsdist::bench::PrintComparisonRow(variant, base.accuracies);
    tsdist::bench::PrintBaselineRow(base.label, base.accuracies);
    std::cout << "\n";
  }
  std::cout << "(Paper context: the bake-off found no significant gains from\n"
            << " these variants; expect mostly 'no' verdicts here too.)\n";
  return 0;
}
