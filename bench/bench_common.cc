#include "bench/bench_common.h"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "src/classify/one_nn.h"
#include "src/classify/tuning.h"
#include "src/core/registry.h"
#include "src/normalization/normalization.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/obs/perf_counters.h"
#include "src/obs/profiler.h"
#include "src/stats/ranking.h"
#include "src/stats/wilcoxon.h"

namespace tsdist::bench {

ObsSession::ObsSession(std::string bench_name)
    : name_(std::move(bench_name)), start_ns_(obs::NowNs()) {
  const char* profile = std::getenv("TSDIST_PROFILE_OUT");
  if (profile != nullptr && *profile != '\0') {
    profile_out_ = profile;
    // Failure (already running, NOOP build) degrades to an empty profile;
    // the destructor still writes a valid header-only file.
    obs::Profiler::Global().Start();
  }
  const char* heap = std::getenv("TSDIST_HEAP_PROFILE_OUT");
  if (heap != nullptr && *heap != '\0') {
    heap_profile_out_ = heap;
    // Same degradation contract: unavailable (sanitizer, NOOP, non-glibc)
    // still yields a schema-valid header-only heap profile on exit.
    obs::HeapProfiler::Global().Start();
  }
}

double ObsSession::ElapsedSeconds() const {
  return static_cast<double>(obs::NowNs() - start_ns_) / 1e9;
}

void ObsSession::RunCase(const std::string& name,
                         const std::function<void()>& body) {
  obs::BenchCaseResult result;
  result.name = name;
  result.warmup = BenchWarmupFromEnv();
  const int iters = BenchRepeatFromEnv();
  for (int i = 0; i < result.warmup; ++i) body();
  // Counters cover the calling thread only (it participates in every
  // ParallelFor); summed over the measured iterations. When unavailable
  // (containers, CI) the probe warns once and the block is omitted.
  std::unique_ptr<obs::PerfCounterGroup> perf_group;
  if (obs::Enabled() && obs::PerfCountersSupported()) {
    perf_group = std::make_unique<obs::PerfCounterGroup>();
    if (!perf_group->available()) perf_group.reset();
  }
  obs::PerfReading perf_total;
  perf_total.valid = perf_group != nullptr;
  // The kernel_attribution block is the delta of the tsdist.kernel.*
  // counter family across the measured iterations, grouped per label.
  std::map<std::string, std::uint64_t> kernel_before;
  const bool obs_on = obs::Enabled();
  if (obs_on) {
    // Peak-live gauges are per-case high-water marks: rebase them to the
    // current live estimate so this case cannot inherit a prior case's peak.
    obs::ResetMemPeaks();
    kernel_before = obs::MetricsRegistry::Global().Snapshot().counters;
  }
  result.samples_ms.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const std::uint64_t iter_start = obs::NowNs();
    if (perf_group != nullptr) perf_group->Start();
    body();
    if (perf_group != nullptr) perf_total.Accumulate(perf_group->Stop());
    result.samples_ms.push_back(
        static_cast<double>(obs::NowNs() - iter_start) / 1e6);
    // Per-repeat, not per-case: a case whose footprint shrinks by its last
    // repeat would otherwise under-report its true high-water.
    obs::UpdatePeakRssGauge();
  }
  result.perf = perf_total;
  if (obs_on) {
    const obs::MetricsSnapshot after = obs::MetricsRegistry::Global().Snapshot();
    result.kernel = obs::KernelStatsBetween(kernel_before, after.counters);
    result.memory =
        obs::MemStatsBetween(kernel_before, after.counters, after.gauges);
  }
  obs::UpdatePeakRssGauge();
  cases_.push_back(std::move(result));
}

ObsSession::~ObsSession() {
  const double wall_ms = ElapsedSeconds() * 1e3;
  if (!profile_out_.empty()) {
    obs::Profiler::Global().Stop();
    obs::WriteProfileFolded(profile_out_);
  }
  if (!heap_profile_out_.empty()) {
    obs::HeapProfiler::Global().Stop();
    obs::WriteHeapProfileFolded(heap_profile_out_);
  }
  const char* dir = std::getenv("TSDIST_BENCH_JSON");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) {
    TSDIST_LOG(obs::LogLevel::kError, "cannot write bench report",
               obs::F("path", path));
    obs::Logger::Global().Flush();
    return;
  }

  std::size_t threads = ThreadsFromEnv();
  if (threads == 0) threads = std::thread::hardware_concurrency();

  obs::BenchReport report;
  report.bench = name_;
  report.scale = ScaleNameFromEnv();
  report.threads = threads;
  report.wall_ms = wall_ms;
  report.manifest =
      obs::CollectRunManifest(threads, ArchiveOptions{}.seed, report.scale);
  obs::UpdatePeakRssGauge();
  report.peak_rss_bytes = obs::PeakRssBytes();
  report.cases = cases_;
  if (report.cases.empty()) {
    // Binary never declared an explicit case: expose the whole run as one
    // single-sample case so every v2 artifact has a sample array.
    obs::BenchCaseResult total;
    total.name = "total";
    total.warmup = 0;
    total.samples_ms.push_back(wall_ms);
    report.cases.push_back(std::move(total));
  }
  report.metrics_json = obs::MetricsRegistry::Global().ToJson();

  out << obs::BenchReportToJson(report);
  TSDIST_LOG(obs::LogLevel::kInfo, "wrote bench report",
             obs::F("path", path), obs::F("wall_ms", wall_ms),
             obs::F("cases", static_cast<std::uint64_t>(report.cases.size())));
  obs::Logger::Global().Flush();
}

ArchiveScale ScaleFromEnv() {
  const std::string value = ScaleNameFromEnv();
  if (value == "tiny") return ArchiveScale::kTiny;
  if (value == "medium") return ArchiveScale::kMedium;
  return ArchiveScale::kSmall;
}

std::string ScaleNameFromEnv() {
  const char* env = std::getenv("TSDIST_SCALE");
  if (env == nullptr) return "small";
  const std::string value(env);
  if (value == "tiny" || value == "medium") return value;
  return "small";
}

std::size_t ThreadsFromEnv() {
  const char* env = std::getenv("TSDIST_THREADS");
  if (env == nullptr) return 0;
  return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
}

int BenchRepeatFromEnv() {
  const char* env = std::getenv("TSDIST_BENCH_REPEAT");
  if (env == nullptr) return 1;
  const long value = std::strtol(env, nullptr, 10);
  return value < 1 ? 1 : static_cast<int>(value);
}

int BenchWarmupFromEnv() {
  const char* env = std::getenv("TSDIST_BENCH_WARMUP");
  if (env == nullptr) return 0;
  const long value = std::strtol(env, nullptr, 10);
  return value < 0 ? 0 : static_cast<int>(value);
}

std::vector<Dataset> BenchArchive() {
  ArchiveOptions options;
  options.scale = ScaleFromEnv();
  options.z_normalize = true;
  return BuildArchive(options);
}

ComboAccuracies EvaluateCombo(const std::string& measure_name,
                              const ParamMap& params,
                              const std::string& normalization,
                              const std::vector<Dataset>& archive,
                              const PairwiseEngine& engine) {
  ComboAccuracies out;
  out.measure = measure_name;
  out.normalization = normalization;
  out.label = measure_name + "+" + normalization;

  const bool adaptive = normalization == "adaptive";
  NormalizerPtr normalizer;
  if (!adaptive && normalization != "zscore" && normalization != "none") {
    normalizer = MakeNormalizer(normalization);
  }
  // "zscore": the archive is already z-normalized, so it is a no-op re-apply;
  // we skip the copy for speed. (Re-applying z-score to z-normalized data is
  // the identity.)

  for (const Dataset& dataset : archive) {
    const Dataset* eval_set = &dataset;
    Dataset transformed;
    if (normalizer != nullptr) {
      transformed = normalizer->Apply(dataset);
      eval_set = &transformed;
    }
    if (adaptive) {
      MeasurePtr base = Registry::Global().Create(measure_name, params);
      const AdaptiveScalingMeasure measure(std::move(base));
      const Matrix e =
          engine.Compute(eval_set->test(), eval_set->train(), measure);
      out.accuracies.push_back(OneNnAccuracy(e, eval_set->test_labels(),
                                             eval_set->train_labels()));
    } else {
      out.accuracies.push_back(
          EvaluateFixed(measure_name, params, *eval_set, engine)
              .test_accuracy);
    }
  }
  return out;
}

ComboAccuracies EvaluateComboTuned(const std::string& measure_name,
                                   const std::vector<ParamMap>& grid,
                                   const std::vector<Dataset>& archive,
                                   const PairwiseEngine& engine) {
  ComboAccuracies out;
  out.measure = measure_name;
  out.normalization = "zscore";
  out.label = measure_name + " (LOOCV)";
  for (const Dataset& dataset : archive) {
    out.accuracies.push_back(
        EvaluateTuned(measure_name, grid, dataset, engine).test_accuracy);
  }
  return out;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

void PrintTableHeader(const std::string& title, const std::string& baseline) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "(baseline: " << baseline
            << "; 'Better' = Wilcoxon signed-rank, 95% confidence)\n";
  std::cout << std::left << std::setw(34) << "Measure+Normalization"
            << std::setw(8) << "Better" << std::setw(12) << "AvgAcc"
            << std::setw(5) << ">" << std::setw(5) << "=" << std::setw(5)
            << "<" << "\n";
}

namespace {

void PrintRow(const std::string& label, const std::string& better,
              double avg, int wins, int ties, int losses) {
  std::cout << std::left << std::setw(34) << label << std::setw(8) << better
            << std::setw(12) << std::fixed << std::setprecision(4) << avg
            << std::setw(5) << wins << std::setw(5) << ties << std::setw(5)
            << losses << "\n";
}

}  // namespace

void PrintComparisonRow(const ComboAccuracies& combo,
                        const std::vector<double>& baseline) {
  int wins = 0, ties = 0, losses = 0;
  for (std::size_t i = 0; i < combo.accuracies.size(); ++i) {
    if (combo.accuracies[i] > baseline[i]) {
      ++wins;
    } else if (combo.accuracies[i] == baseline[i]) {
      ++ties;
    } else {
      ++losses;
    }
  }
  const WilcoxonResult w = WilcoxonSignedRank(combo.accuracies, baseline);
  const bool better = w.p_value < 0.05 && w.w_plus > w.w_minus;
  const bool worse = w.p_value < 0.05 && w.w_plus < w.w_minus;
  PrintRow(combo.label, better ? "yes" : (worse ? "WORSE" : "no"),
           MeanOf(combo.accuracies), wins, ties, losses);
}

void PrintBaselineRow(const std::string& label,
                      const std::vector<double>& accuracies) {
  PrintRow(label + " (baseline)", "-", MeanOf(accuracies), 0, 0, 0);
}

Matrix AccuracyMatrix(const std::vector<ComboAccuracies>& combos) {
  const std::size_t n = combos.empty() ? 0 : combos[0].accuracies.size();
  Matrix out(n, combos.size());
  for (std::size_t j = 0; j < combos.size(); ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      out(i, j) = combos[j].accuracies[i];
    }
  }
  return out;
}

void PrintCdDiagram(const std::string& title,
                    const std::vector<ComboAccuracies>& combos, double alpha) {
  std::vector<std::string> names;
  names.reserve(combos.size());
  for (const auto& c : combos) names.push_back(c.label);
  const CdAnalysis analysis = AnalyzeRanks(AccuracyMatrix(combos), names, alpha);
  std::cout << "--- " << title << " (alpha = " << alpha << ") ---\n";
  std::cout << RenderCdDiagram(analysis);
}

}  // namespace tsdist::bench
