// Table 6 reproduction: kernel measures vs NCCc under supervised and
// unsupervised tuning.
//
// Paper shape: KDTW and GAK significantly beat NCCc in both regimes; SINK
// beats it only supervised; RBF is significantly worse — the lock-step
// kernel cannot compensate for missing shift/warp invariance.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"
#include "src/kernel/kernel_measure.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::EvaluateComboTuned;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_table6_kernel");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Table 6: kernel measures vs NCCc, " << archive.size()
            << " datasets\n";

  ComboAccuracies baseline;
  std::vector<ComboAccuracies> rows;
  obs_session.RunCase("evaluate_kernels", [&] {
    baseline = EvaluateCombo("nccc", {}, "zscore", archive, engine);
    rows.clear();
    for (const auto& measure : tsdist::KernelMeasureNames()) {
      rows.push_back(EvaluateComboTuned(
          measure, tsdist::ParamGridFor(measure), archive, engine));

      const tsdist::ParamMap fixed = tsdist::UnsupervisedParamsFor(measure);
      ComboAccuracies unsup =
          EvaluateCombo(measure, fixed, "zscore", archive, engine);
      unsup.label = measure + " (" + tsdist::ToString(fixed) + ")";
      rows.push_back(std::move(unsup));
    }
  });

  tsdist::bench::PrintTableHeader("Kernel measures vs NCCc", "nccc+zscore");
  for (const auto& row : rows) {
    tsdist::bench::PrintComparisonRow(row, baseline.accuracies);
  }
  tsdist::bench::PrintBaselineRow("nccc+zscore", baseline.accuracies);

  std::cout << "\n(Paper shape: KDTW strongest — the first measure to beat\n"
            << " DTW in both regimes; GAK close; SINK competitive; RBF\n"
            << " significantly worse than NCCc.)\n";
  return 0;
}
