// Extension experiment: multivariate generalization strategies.
//
// The paper's footnote 1 defers multivariate measures to future work. This
// bench runs the canonical experiment for that extension: independent vs
// dependent ED/DTW under channel-coupled vs channel-independent warping.
// Expected shape (Shokoohi-Yekta et al.): DTW_I wins when channels warp
// independently; DTW_D catches up (or wins) when channels warp together;
// lock-step ED trails whenever any warping is present.

#include <iomanip>
#include <iostream>

#include "src/multivariate/multivariate.h"

#include "bench/bench_common.h"

namespace {

void RunRegime(const char* title, bool shared_warp, double warp,
               std::uint64_t seed) {
  using namespace tsdist;
  MultivariateGeneratorOptions options;
  options.length = 96;
  options.num_channels = 3;
  options.train_per_class = 10;
  options.test_per_class = 15;
  options.noise = 0.3;
  options.warp = warp;
  options.shared_warp = shared_warp;
  options.seed = seed;
  const MultivariateDataset data = MakeMultivariateMotions(options);

  std::cout << title << " (" << data.train.size() << " train / "
            << data.test.size() << " test, " << options.num_channels
            << " channels)\n";
  const MultivariateEdIndependent ed_i;
  const MultivariateEdDependent ed_d;
  const MultivariateDtwIndependent dtw_i(20.0);
  const MultivariateDtwDependent dtw_d(20.0);
  std::cout << std::fixed << std::setprecision(4);
  std::cout << "  ed_i   " << MultivariateOneNnAccuracy(ed_i, data) << "\n";
  std::cout << "  ed_d   " << MultivariateOneNnAccuracy(ed_d, data) << "\n";
  std::cout << "  dtw_i  " << MultivariateOneNnAccuracy(dtw_i, data) << "\n";
  std::cout << "  dtw_d  " << MultivariateOneNnAccuracy(dtw_d, data) << "\n\n";
}

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_ext_multivariate");
  std::cout << "Extension: multivariate strategies (paper footnote 1)\n\n";
  obs_session.RunCase("no_warping",
                      [&] { RunRegime("No warping", false, 0.0, 11); });
  obs_session.RunCase("independent_warping", [&] {
    RunRegime("Independent per-channel warping", false, 0.2, 12);
  });
  obs_session.RunCase("shared_warping", [&] {
    RunRegime("Shared (coupled) warping", true, 0.2, 13);
  });
  std::cout << "(Expected shape: the class signal here is inter-channel\n"
            << " timing, so DTW_D — which warps all channels with one path\n"
            << " and preserves their relative lags — dominates DTW_I, which\n"
            << " aligns each channel independently and erases the signal.\n"
            << " Independent per-channel warping destroys the lag signal\n"
            << " itself, degrading every measure: the I/D choice is\n"
            << " workload-dependent, which is why the paper defers the\n"
            << " multivariate question rather than folding it into M1-M4.)\n";
  return 0;
}
