// Figure 1 reproduction: how each of the 8 normalization methods transforms
// a pair of series (the paper uses two ECGFiveDays series; we use two
// series from the ECG-like generator). Rendered as ASCII sparklines with
// the value range printed per method — enough to see the paper's
// observations: most methods only change the value range, MinMax/MeanNorm
// re-anchor it, and the two non-linear activations (Logistic, Tanh) visibly
// reshape the waveform.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/data/generators.h"
#include "src/normalization/normalization.h"

#include "bench/bench_common.h"

namespace {

// Renders values as a one-line sparkline over a fixed glyph ramp.
std::string Sparkline(const std::vector<double>& values) {
  static const char* kRamp = " .:-=+*#%@";
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const double range = hi - lo;
  std::string out;
  for (std::size_t i = 0; i < values.size(); i += 2) {  // downsample 2:1
    const double t = range < 1e-12 ? 0.0 : (values[i] - lo) / range;
    out += kRamp[static_cast<std::size_t>(t * 9.0)];
  }
  return out;
}

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig1_normalizations");
  using namespace tsdist;

  // Two heartbeat series of different classes (normal vs inverted-T), raw.
  GeneratorOptions options;
  options.length = 128;
  options.train_per_class = 1;
  options.test_per_class = 0;
  options.noise = 0.05;
  options.seed = 8;
  const Dataset data = MakeEcgLike(options);
  // Give them distinct scales and offsets so the normalizations have work
  // to do (the paper's point: raw recordings arrive unnormalized).
  std::vector<double> x(data.train()[0].values().begin(),
                        data.train()[0].values().end());
  std::vector<double> y(data.train()[1].values().begin(),
                        data.train()[1].values().end());
  for (auto& v : x) v = 2.5 * v + 3.0;
  for (auto& v : y) v = 0.8 * v - 1.0;

  std::printf("Figure 1: two ECG-like series under the 8 normalizations\n\n");
  auto show = [](const char* name, const std::vector<double>& a,
                 const std::vector<double>& b) {
    const double lo = std::min(*std::min_element(a.begin(), a.end()),
                               *std::min_element(b.begin(), b.end()));
    const double hi = std::max(*std::max_element(a.begin(), a.end()),
                               *std::max_element(b.begin(), b.end()));
    std::printf("%-14s range [%8.3f, %8.3f]\n", name, lo, hi);
    std::printf("  x: %s\n", Sparkline(a).c_str());
    std::printf("  y: %s\n\n", Sparkline(b).c_str());
  };

  obs_session.RunCase("render_normalizations", [&] {
    show("raw", x, y);
    for (const auto& name : PerSeriesNormalizerNames()) {
      const NormalizerPtr n = MakeNormalizer(name);
      show(name.c_str(), n->Apply(std::span<const double>(x)),
           n->Apply(std::span<const double>(y)));
    }
    // AdaptiveScaling is pairwise: show y rescaled against x.
    double dot_xy = 0.0, dot_yy = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      dot_xy += x[i] * y[i];
      dot_yy += y[i] * y[i];
    }
    const double alpha = dot_xy / dot_yy;
    std::vector<double> scaled = y;
    for (auto& v : scaled) v *= alpha;
    show("adaptive(y|x)", x, scaled);
  });
  std::printf("(Paper observation: differences are mostly in the value\n"
              " range; MinMax/MeanNorm/AdaptiveScaling re-anchor it; the\n"
              " non-linear Logistic and Tanh visibly reshape the waveform.)\n");
  return 0;
}
