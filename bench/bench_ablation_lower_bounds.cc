// Ablation: DTW lower-bound cascade effectiveness.
//
// Section 10 of the paper points to lower bounding as the standard
// acceleration for elastic measures. This bench quantifies it on the
// synthetic archive: fraction of full DTW computations pruned by the
// LB_Kim -> LB_Keogh cascade during exact 1-NN classification, and the
// wall-clock speedup over exhaustive search, per warping-window width.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/elastic/dtw.h"
#include "src/elastic/lower_bounds.h"

namespace {

using Clock = std::chrono::steady_clock;
using tsdist::bench::BenchArchive;

}  // namespace

int main() {
  const tsdist::bench::ObsSession obs_session("bench_ablation_lower_bounds");
  const auto archive = BenchArchive();
  std::cout << "Ablation: LB_Kim -> LB_Keogh pruning for exact DTW 1-NN over "
            << archive.size() << " datasets\n";
  std::cout << std::left << std::setw(10) << "window%" << std::setw(12)
            << "pruned%" << std::setw(12) << "kim%" << std::setw(12)
            << "keogh%" << std::setw(14) << "exhaust(ms)" << std::setw(14)
            << "pruned(ms)" << std::setw(10) << "speedup" << "\n";

  for (double window : {2.0, 5.0, 10.0, 20.0}) {
    std::size_t total = 0, kim = 0, keogh = 0, full = 0;
    double exhaustive_ms = 0.0, pruned_ms = 0.0;
    for (const auto& dataset : archive) {
      std::vector<std::vector<double>> train;
      std::vector<tsdist::Envelope> envelopes;
      for (const auto& s : dataset.train()) {
        train.emplace_back(s.values().begin(), s.values().end());
        envelopes.push_back(tsdist::BuildEnvelope(train.back(), window));
      }
      const tsdist::DtwDistance dtw(window);

      const auto t0 = Clock::now();
      for (const auto& q : dataset.test()) {
        double best = std::numeric_limits<double>::infinity();
        for (const auto& c : train) {
          best = std::min(best, dtw.Distance(q.values(), c));
        }
      }
      const auto t1 = Clock::now();
      for (const auto& q : dataset.test()) {
        const tsdist::PrunedSearchResult r =
            tsdist::PrunedOneNn(q.values(), train, envelopes, window);
        total += train.size();
        kim += r.lb_kim_pruned;
        keogh += r.lb_keogh_pruned;
        full += r.full_computations;
      }
      const auto t2 = Clock::now();
      exhaustive_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
      pruned_ms += std::chrono::duration<double, std::milli>(t2 - t1).count();
    }
    const double pruned_pct =
        100.0 * static_cast<double>(kim + keogh) / static_cast<double>(total);
    std::cout << std::left << std::setw(10) << window << std::setw(12)
              << std::fixed << std::setprecision(1) << pruned_pct
              << std::setw(12)
              << 100.0 * static_cast<double>(kim) / static_cast<double>(total)
              << std::setw(12)
              << 100.0 * static_cast<double>(keogh) / static_cast<double>(total)
              << std::setw(14) << exhaustive_ms << std::setw(14) << pruned_ms
              << std::setw(10) << std::setprecision(2)
              << exhaustive_ms / pruned_ms << "\n";
  }
  std::cout << "\n(Expected shape: narrower windows -> tighter envelopes ->\n"
            << " more pruning and larger speedups.)\n";
  return 0;
}
