// Ablation: DTW lower-bound cascade effectiveness.
//
// Section 10 of the paper points to lower bounding as the standard
// acceleration for elastic measures. This bench quantifies it on the
// synthetic archive via the engine's pruned 1-NN path
// (PairwiseEngine::NearestNeighborIndicesPruned): fraction of full DTW
// computations avoided by the LB_Kim -> LB_Keogh -> early-abandon cascade
// during exact 1-NN classification, and the wall-clock speedup over the
// exhaustive full-matrix path, per warping-window width. Both paths use the
// same engine (same thread pool), so the speedup is algorithmic, not a
// threading artifact. The tsdist.prune.* counters accumulated here land in
// the BENCH JSON metrics snapshot (TSDIST_BENCH_JSON).

#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/one_nn.h"
#include "src/core/pairwise_engine.h"
#include "src/elastic/dtw.h"
#include "src/obs/obs.h"

namespace {

using Clock = std::chrono::steady_clock;
using tsdist::bench::BenchArchive;

// Snapshot of the cascade counters; per-window deltas isolate one sweep.
struct PruneCounts {
  std::uint64_t candidates = 0;
  std::uint64_t kim = 0;
  std::uint64_t keogh = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t full = 0;

  static PruneCounts Snapshot() {
    auto& metrics = tsdist::obs::MetricsRegistry::Global();
    PruneCounts c;
    c.candidates = metrics.GetCounter("tsdist.prune.candidates").Value();
    c.kim = metrics.GetCounter("tsdist.prune.lb_kim").Value();
    c.keogh = metrics.GetCounter("tsdist.prune.lb_keogh").Value();
    c.abandoned = metrics.GetCounter("tsdist.prune.abandoned").Value();
    c.full = metrics.GetCounter("tsdist.prune.full").Value();
    return c;
  }

  PruneCounts operator-(const PruneCounts& other) const {
    return {candidates - other.candidates, kim - other.kim,
            keogh - other.keogh, abandoned - other.abandoned,
            full - other.full};
  }
};

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_ablation_lower_bounds");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Ablation: LB_Kim -> LB_Keogh -> early-abandon cascade for "
               "exact DTW 1-NN over "
            << archive.size() << " datasets\n";
  std::cout << std::left << std::setw(10) << "window%" << std::setw(10)
            << "avoided%" << std::setw(8) << "kim%" << std::setw(8) << "keogh%"
            << std::setw(10) << "abandon%" << std::setw(8) << "full%"
            << std::setw(14) << "exhaust(ms)" << std::setw(13) << "pruned(ms)"
            << std::setw(10) << "speedup" << "\n";

  struct Row {
    double window;
    PruneCounts delta;
    double exhaustive_ms;
    double pruned_ms;
  };
  std::vector<Row> rows;
  bool identical = true;
  obs_session.RunCase("dtw_cascade_sweep", [&] {
    rows.clear();
    identical = true;
    for (double window : {2.0, 5.0, 10.0, 20.0}) {
      const tsdist::DtwDistance dtw(window);
      double exhaustive_ms = 0.0, pruned_ms = 0.0;
      const PruneCounts before = PruneCounts::Snapshot();
      for (const auto& dataset : archive) {
        const auto t0 = Clock::now();
        const tsdist::Matrix e =
            engine.Compute(dataset.test(), dataset.train(), dtw);
        const std::vector<std::size_t> matrix_nn =
            tsdist::NearestNeighborIndices(e);
        const auto t1 = Clock::now();
        const std::vector<std::size_t> pruned_nn =
            engine.NearestNeighborIndicesPruned(dataset.test(),
                                                dataset.train(), dtw);
        const auto t2 = Clock::now();
        identical = identical && (matrix_nn == pruned_nn);
        exhaustive_ms +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        pruned_ms +=
            std::chrono::duration<double, std::milli>(t2 - t1).count();
      }
      const PruneCounts delta = PruneCounts::Snapshot() - before;
      rows.push_back({window, delta, exhaustive_ms, pruned_ms});
    }
  });
  for (const auto& row : rows) {
    const double denom = row.delta.candidates > 0
                             ? static_cast<double>(row.delta.candidates)
                             : 1.0;
    const auto pct = [denom](std::uint64_t n) {
      return 100.0 * static_cast<double>(n) / denom;
    };
    std::cout << std::left << std::setw(10) << row.window << std::fixed
              << std::setprecision(1) << std::setw(10)
              << pct(row.delta.kim + row.delta.keogh + row.delta.abandoned)
              << std::setw(8) << pct(row.delta.kim) << std::setw(8)
              << pct(row.delta.keogh) << std::setw(10)
              << pct(row.delta.abandoned) << std::setw(8)
              << pct(row.delta.full) << std::setw(14) << row.exhaustive_ms
              << std::setw(13) << row.pruned_ms << std::setw(10)
              << std::setprecision(2) << row.exhaustive_ms / row.pruned_ms
              << "\n";
  }
  std::cout << "\npredictions identical to the full-matrix path: "
            << (identical ? "yes" : "NO — BUG") << "\n";
  std::cout << "(Expected shape: narrower windows -> tighter envelopes ->\n"
            << " more pruning and larger speedups.)\n";
  return identical ? 0 : 1;
}
