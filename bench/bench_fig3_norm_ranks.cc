// Figure 3 reproduction: critical-difference diagram of normalization
// methods combined with the Lorentzian distance, against ED + z-score.
//
// The paper finds Lorentzian with z-score, UnitLength, and MeanNorm all
// significantly better than ED with z-score, with no difference among the
// three.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig3_norm_ranks");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Figure 3: normalization methods for the Lorentzian distance "
            << "over " << archive.size() << " datasets\n";

  std::vector<ComboAccuracies> combos;
  obs_session.RunCase("evaluate_ranks", [&] {
    combos.clear();
    for (const char* norm : {"zscore", "minmax", "unitlength", "meannorm"}) {
      combos.push_back(EvaluateCombo("lorentzian", {}, norm, archive, engine));
    }
    combos.push_back(EvaluateCombo("euclidean", {}, "zscore", archive, engine));
  });

  tsdist::bench::PrintCdDiagram(
      "Average ranks: Lorentzian x normalization vs ED + z-score", combos,
      0.10);
  std::cout << "(Paper shape: three of the four Lorentzian combos beat\n"
            << " ED+z-score significantly, with no difference among them.)\n";
  return 0;
}
