// Table 5 reproduction: elastic measures vs NCCc, under both supervised
// (LOOCV over the Table 4 grids) and unsupervised (fixed parameters)
// tuning. All data z-normalized, as in the paper.
//
// Paper shape: supervised, all elastic measures except LCSS significantly
// beat NCCc; unsupervised, only MSM, TWE, and ERP do, while LCSS, EDR, and
// DTW-100 fall slightly below the sliding baseline — the M3 debunking.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"

namespace {

using tsdist::ParamMap;
using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::EvaluateComboTuned;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_table5_elastic");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Table 5: elastic measures vs NCCc, " << archive.size()
            << " datasets (supervised LOOCV + unsupervised fixed params)\n";

  ComboAccuracies baseline;
  std::vector<ComboAccuracies> rows;
  obs_session.RunCase("evaluate_elastic", [&] {
    baseline = EvaluateCombo("nccc", {}, "zscore", archive, engine);
    rows.clear();
    for (const char* measure :
         {"msm", "twe", "dtw", "edr", "swale", "erp", "lcss"}) {
      // Supervised row (ERP is parameter-free; its "grid" is a single
      // entry).
      rows.push_back(EvaluateComboTuned(
          measure, tsdist::ParamGridFor(measure), archive, engine));
      // Unsupervised row with the paper's fixed parameters.
      const ParamMap fixed = tsdist::UnsupervisedParamsFor(measure);
      ComboAccuracies unsup = EvaluateCombo(measure, fixed, "zscore", archive,
                                            engine);
      unsup.label = std::string(measure) + " (" +
                    (fixed.empty() ? "param-free" : tsdist::ToString(fixed)) +
                    ")";
      rows.push_back(std::move(unsup));
    }
    // The paper also reports DTW with delta = 100 (unconstrained)
    // explicitly.
    ComboAccuracies dtw100 =
        EvaluateCombo("dtw", {{"delta", 100.0}}, "zscore", archive, engine);
    dtw100.label = "dtw (delta=100)";
    rows.push_back(std::move(dtw100));
  });

  tsdist::bench::PrintTableHeader("Elastic measures vs NCCc", "nccc+zscore");
  for (const auto& row : rows) {
    tsdist::bench::PrintComparisonRow(row, baseline.accuracies);
  }
  tsdist::bench::PrintBaselineRow("nccc+zscore", baseline.accuracies);
  std::cout << "\n(Paper shape: supervised elastic measures beat NCCc except\n"
            << " LCSS; unsupervised, only MSM/TWE/ERP do — most elastic\n"
            << " measures do NOT beat the omitted sliding baseline.)\n";
  return 0;
}
