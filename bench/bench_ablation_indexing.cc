// Ablation: exact ED k-NN through the SAX index vs a linear scan.
//
// Quantifies the M2 argument — "ED ... widely supported by indexing
// mechanisms" — on a larger synthetic collection: pruning breakdown
// (bucket-level MINDIST vs per-series PAA bound) and wall-clock speedup,
// per index configuration.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/data/generators.h"
#include "src/index/sax_index.h"
#include "src/lockstep/minkowski_family.h"
#include "src/normalization/normalization.h"

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_ablation_indexing");
  // One larger collection: many CBF series (an indexing workload, not a
  // classification one).
  tsdist::GeneratorOptions options;
  const bool tiny =
      tsdist::bench::ScaleFromEnv() == tsdist::ArchiveScale::kTiny;
  options.length = tiny ? 64 : 128;
  options.train_per_class = tiny ? 150 : 600;
  options.test_per_class = tiny ? 15 : 40;
  options.noise = 0.25;
  options.seed = 99;
  const tsdist::Dataset data =
      tsdist::ZScoreNormalizer().Apply(tsdist::MakeCbf(options));
  const auto& collection = data.train();
  const auto& queries = data.test();

  std::cout << "Ablation: SAX-index exact 10-NN vs linear scan, "
            << collection.size() << " series of length "
            << data.series_length() << ", " << queries.size() << " queries\n";
  std::cout << std::left << std::setw(18) << "word x alphabet" << std::setw(12)
            << "bucket%" << std::setw(12) << "paa%" << std::setw(12)
            << "full%" << std::setw(12) << "scan(ms)" << std::setw(12)
            << "index(ms)" << std::setw(10) << "speedup" << "\n";

  // Linear-scan reference time.
  const tsdist::EuclideanDistance ed;
  double checksum = 0.0;
  double scan_ms = 0.0;
  obs_session.RunCase("linear_scan", [&] {
    checksum = 0.0;
    const auto t0 = Clock::now();
    for (const auto& q : queries) {
      double best = 1e300;
      for (const auto& c : collection) {
        best = std::min(best, ed.Distance(q.values(), c.values()));
      }
      checksum += best;
    }
    scan_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  });

  struct Row {
    std::size_t word, alphabet;
    std::size_t bucket, paa, full, total;
    double index_ms;
  };
  std::vector<Row> rows;
  obs_session.RunCase("sax_knn_sweep", [&] {
    rows.clear();
    for (const auto& [word, alphabet] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {4, 4}, {8, 4}, {8, 8}, {16, 8}}) {
      tsdist::SaxIndex index(word, alphabet);
      index.Build(collection);
      Row row{word, alphabet, 0, 0, 0, 0, 0.0};
      const auto t1 = Clock::now();
      for (const auto& q : queries) {
        tsdist::SaxIndex::Stats stats;
        index.Knn(q.values(), 10, &stats);
        row.bucket += stats.bucket_pruned;
        row.paa += stats.paa_pruned;
        row.full += stats.full_distances;
        row.total += stats.candidates;
      }
      row.index_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t1).count();
      rows.push_back(row);
    }
  });
  for (const auto& row : rows) {
    const double dt = static_cast<double>(row.total);
    std::cout << std::left << std::setw(18)
              << (std::to_string(row.word) + " x " +
                  std::to_string(row.alphabet))
              << std::fixed << std::setprecision(1) << std::setw(12)
              << 100.0 * static_cast<double>(row.bucket) / dt << std::setw(12)
              << 100.0 * static_cast<double>(row.paa) / dt << std::setw(12)
              << 100.0 * static_cast<double>(row.full) / dt << std::setw(12)
              << scan_ms << std::setw(12) << row.index_ms << std::setw(10)
              << std::setprecision(2) << scan_ms / row.index_ms << "\n";
  }
  std::cout << "(checksum " << std::setprecision(3) << checksum << ")\n";
  std::cout << "\n(Expected shape: longer words / larger alphabets prune\n"
            << " more; most candidates never reach a full ED computation.)\n";
  return 0;
}
