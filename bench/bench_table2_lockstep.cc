// Table 2 reproduction: lock-step measures x normalization methods vs the
// ED + z-score baseline.
//
// The paper evaluates all 52 x 8 combinations and reports only those whose
// average accuracy exceeds the baseline's. We do the same: every combination
// is evaluated; rows above the baseline's average accuracy are printed with
// their Wilcoxon verdict and per-dataset win/tie/loss counts.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/lockstep/lockstep_all.h"
#include "src/normalization/normalization.h"
#include "src/stats/holm.h"
#include "src/stats/wilcoxon.h"

namespace {

using tsdist::ParamMap;
using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::MeanOf;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_table2_lockstep");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Table 2: lock-step measures under 8 normalizations, "
            << archive.size() << " datasets\n";

  // Normalizations evaluated per measure: the 7 per-series transforms plus
  // the pairwise adaptive scaling (8 methods, Section 4).
  std::vector<std::string> norms = tsdist::PerSeriesNormalizerNames();
  norms.push_back("adaptive");

  // Baseline: ED with z-score (the archive's native normalization).
  ComboAccuracies baseline;
  std::vector<ComboAccuracies> above_baseline;
  obs_session.RunCase("evaluate_combos", [&] {
    baseline = EvaluateCombo("euclidean", {}, "zscore", archive, engine);
    above_baseline.clear();
    const double baseline_avg = MeanOf(baseline.accuracies);
    for (const auto& measure : tsdist::LockStepMeasureNames()) {
      for (const auto& norm : norms) {
        ParamMap params;
        if (measure == "minkowski") {
          // The only lock-step measure with a parameter; the paper tunes it
          // with LOOCV. Use the strong fixed choice p = 0.5 here and report
          // the supervised variant separately below.
          params["p"] = 0.5;
        }
        ComboAccuracies combo =
            EvaluateCombo(measure, params, norm, archive, engine);
        if (MeanOf(combo.accuracies) > baseline_avg) {
          above_baseline.push_back(std::move(combo));
        }
      }
    }
  });

  tsdist::bench::PrintTableHeader(
      "Lock-step x normalization combos with avg accuracy above ED+z-score",
      "euclidean+zscore");
  for (const auto& combo : above_baseline) {
    tsdist::bench::PrintComparisonRow(combo, baseline.accuracies);
  }
  tsdist::bench::PrintBaselineRow("euclidean+zscore", baseline.accuracies);

  // Family-wise control: Holm's step-down over the pairwise Wilcoxon
  // p-values of the combos above the baseline (Demsar's recommendation when
  // many measures are compared against one control).
  std::vector<double> p_values;
  p_values.reserve(above_baseline.size());
  for (const auto& combo : above_baseline) {
    p_values.push_back(
        tsdist::WilcoxonSignedRank(combo.accuracies, baseline.accuracies)
            .p_value);
  }
  std::size_t holm_survivors = 0;
  for (const auto& outcome : tsdist::HolmCorrection(p_values, 0.05)) {
    if (outcome.rejected) ++holm_survivors;
  }
  std::cout << "\nHolm correction at alpha = 0.05: " << holm_survivors
            << " of " << above_baseline.size()
            << " above-baseline combos stay significant family-wise.\n";

  std::cout << "\n" << above_baseline.size()
            << " of " << tsdist::LockStepMeasureNames().size() * norms.size()
            << " combinations exceed the baseline's average accuracy.\n"
            << "(Paper: 36 of 416 on the UCR archive; the shape to check is\n"
            << " that L1-family measures and MeanNorm-style normalizations\n"
            << " dominate the list while ED itself is never significantly\n"
            << " best.)\n";
  return 0;
}
