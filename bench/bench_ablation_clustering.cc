// Ablation: clustering quality by distance measure (k-Shape vs baselines).
//
// Section 6 of the paper motivates cross-correlation partly through
// k-Shape's "state-of-the-art performance" for time-series clustering.
// This bench validates that claim on the archive: Adjusted Rand Index of
// k-Shape (SBD), k-means (ED), and k-medoids (DTW / SBD) against the
// generator's ground-truth classes.

#include <iomanip>
#include <iostream>

#include "bench/bench_common.h"
#include "src/cluster/evaluation.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/kshape.h"
#include "src/core/registry.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::MeanOf;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_ablation_clustering");
  const auto archive = BenchArchive();
  std::cout << "Ablation: clustering ARI by algorithm/measure over "
            << archive.size() << " datasets\n";
  std::cout << std::left << std::setw(22) << "Dataset" << std::setw(14)
            << "kshape(SBD)" << std::setw(14) << "kmeans(ED)" << std::setw(14)
            << "kmed(DTW)" << std::setw(14) << "kmed(SBD)" << "\n";

  const tsdist::MeasurePtr dtw =
      tsdist::Registry::Global().Create("dtw", {{"delta", 10.0}});
  const tsdist::MeasurePtr sbd = tsdist::Registry::Global().Create("nccc");

  std::vector<double> ari_kshape, ari_kmeans, ari_kmed_dtw, ari_kmed_sbd;
  obs_session.RunCase("cluster_archive", [&] {
    ari_kshape.clear();
    ari_kmeans.clear();
    ari_kmed_dtw.clear();
    ari_kmed_sbd.clear();
    for (const auto& dataset : archive) {
      const std::vector<int> truth = dataset.train_labels();
      const std::size_t k = dataset.num_classes();

      tsdist::KShapeOptions ks;
      ks.k = k;
      ks.seed = 31;
      tsdist::KMeansOptions km;
      km.k = k;
      km.seed = 31;

      ari_kshape.push_back(tsdist::AdjustedRandIndex(
          tsdist::KShape(dataset.train(), ks).assignments, truth));
      ari_kmeans.push_back(tsdist::AdjustedRandIndex(
          tsdist::KMeans(dataset.train(), km).assignments, truth));
      ari_kmed_dtw.push_back(tsdist::AdjustedRandIndex(
          tsdist::KMedoids(dataset.train(), *dtw, km).assignments, truth));
      ari_kmed_sbd.push_back(tsdist::AdjustedRandIndex(
          tsdist::KMedoids(dataset.train(), *sbd, km).assignments, truth));
    }
  });
  for (std::size_t i = 0; i < archive.size(); ++i) {
    std::cout << std::left << std::setw(22) << archive[i].name() << std::fixed
              << std::setprecision(3) << std::setw(14) << ari_kshape[i]
              << std::setw(14) << ari_kmeans[i] << std::setw(14)
              << ari_kmed_dtw[i] << std::setw(14) << ari_kmed_sbd[i] << "\n";
  }
  std::cout << std::left << std::setw(22) << "AVERAGE" << std::fixed
            << std::setprecision(3) << std::setw(14) << MeanOf(ari_kshape)
            << std::setw(14) << MeanOf(ari_kmeans) << std::setw(14)
            << MeanOf(ari_kmed_dtw) << std::setw(14) << MeanOf(ari_kmed_sbd)
            << "\n";
  std::cout << "\n(Expected shape: k-Shape leads on shift-dominated datasets\n"
            << " and is competitive overall — the k-Shape paper's claim the\n"
            << " debunking paper leans on.)\n";
  return 0;
}
