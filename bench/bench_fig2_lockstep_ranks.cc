// Figure 2 reproduction: critical-difference diagram of the lock-step
// measures that challenge ED under z-score normalization.
//
// The paper ranks Minkowski (supervised), Lorentzian, Manhattan,
// Avg(L1, Linf), and DISSIM against ED, finding all five significantly
// better than ED with no significant difference among themselves.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::EvaluateComboTuned;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig2_lockstep_ranks");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Figure 2: ranking of lock-step measures under z-score over "
            << archive.size() << " datasets\n";

  std::vector<ComboAccuracies> combos;
  obs_session.RunCase("evaluate_ranks", [&] {
    combos.clear();
    // Minkowski is supervised (LOOCV over the Table 4 p-grid), like the
    // paper.
    combos.push_back(EvaluateComboTuned("minkowski",
                                        tsdist::ParamGridFor("minkowski"),
                                        archive, engine));
    for (const char* measure :
         {"lorentzian", "manhattan", "avg_l1_linf", "dissim", "euclidean"}) {
      combos.push_back(EvaluateCombo(measure, {}, "zscore", archive, engine));
    }
  });

  tsdist::bench::PrintCdDiagram(
      "Average ranks (Friedman + Nemenyi): lock-step under z-score", combos,
      0.10);
  std::cout << "(Paper shape: Lorentzian ranked first among unsupervised\n"
            << " measures, ED ranked last, the L1-family members not\n"
            << " significantly different from each other.)\n";
  return 0;
}
