// Figures 7 and 8 reproduction: critical-difference diagrams of the
// strongest kernel functions together with the leading elastic and sliding
// measures, supervised (Fig. 7) and unsupervised (Fig. 8).
//
// Paper shape: KDTW significantly outranks DTW in both regimes (the first
// kernel reported to do so); GAK is comparable to DTW; MSM/TWE lead only in
// the unsupervised regime.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::EvaluateComboTuned;

constexpr const char* kMeasures[] = {"kdtw", "gak", "msm", "twe", "dtw"};

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig7_fig8_kernel_ranks");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Figures 7/8: kernel + elastic + sliding rankings over "
            << archive.size() << " datasets\n";

  // Figure 7: supervised.
  {
    std::vector<ComboAccuracies> combos;
    obs_session.RunCase("supervised_ranks", [&] {
      combos.clear();
      for (const char* measure : kMeasures) {
        combos.push_back(EvaluateComboTuned(
            measure, tsdist::ParamGridFor(measure), archive, engine));
      }
      combos.push_back(EvaluateCombo("nccc", {}, "zscore", archive, engine));
    });
    tsdist::bench::PrintCdDiagram("Figure 7: supervised kernels vs elastic",
                                  combos, 0.10);
  }

  // Figure 8: unsupervised.
  {
    std::vector<ComboAccuracies> combos;
    obs_session.RunCase("unsupervised_ranks", [&] {
      combos.clear();
      for (const char* measure : kMeasures) {
        ComboAccuracies combo =
            EvaluateCombo(measure, tsdist::UnsupervisedParamsFor(measure),
                          "zscore", archive, engine);
        combo.label = std::string(measure) + " (fixed)";
        combos.push_back(std::move(combo));
      }
      combos.push_back(EvaluateCombo("nccc", {}, "zscore", archive, engine));
    });
    tsdist::bench::PrintCdDiagram("Figure 8: unsupervised kernels vs elastic",
                                  combos, 0.10);
  }
  return 0;
}
