// Table 3 reproduction: sliding (cross-correlation) measures x
// normalization methods vs the Lorentzian baseline — the new lock-step
// state of the art established by Table 2/Figure 2.
//
// Paper shape: NCC, NCCb, NCCc beat the Lorentzian under z-score and
// UnitLength; NCCu never does; NCCc is the most robust variant.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/normalization/normalization.h"
#include "src/sliding/ncc_measures.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::MeanOf;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_table3_sliding");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Table 3: sliding measures under 8 normalizations, "
            << archive.size() << " datasets\n";

  std::vector<std::string> norms = tsdist::PerSeriesNormalizerNames();
  norms.push_back("adaptive");

  ComboAccuracies baseline;
  std::vector<ComboAccuracies> above;
  obs_session.RunCase("evaluate_combos", [&] {
    baseline = EvaluateCombo("lorentzian", {}, "zscore", archive, engine);
    const double baseline_avg = MeanOf(baseline.accuracies);
    above.clear();
    for (const auto& measure : tsdist::SlidingMeasureNames()) {
      for (const auto& norm : norms) {
        ComboAccuracies combo =
            EvaluateCombo(measure, {}, norm, archive, engine);
        if (MeanOf(combo.accuracies) > baseline_avg) {
          above.push_back(std::move(combo));
        }
      }
    }
  });

  tsdist::bench::PrintTableHeader(
      "Sliding x normalization combos above the Lorentzian baseline",
      "lorentzian+zscore");
  for (const auto& combo : above) {
    tsdist::bench::PrintComparisonRow(combo, baseline.accuracies);
  }
  tsdist::bench::PrintBaselineRow("lorentzian+zscore", baseline.accuracies);

  std::cout << "\n(Paper shape: NCCc/NCC/NCCb with z-score and UnitLength\n"
            << " significantly beat the Lorentzian; NCCu never appears.)\n";
  return 0;
}
