// Shared infrastructure for the paper-reproduction bench binaries.
//
// Each bench binary regenerates one table or figure of the SIGMOD'20 study
// on the synthetic archive (see DESIGN.md for the substitution rationale).
// Conventions shared with the paper:
//  * the archive ships z-normalized (like the UCR archive); normalization
//    combos are applied on top of that base;
//  * "Better" means significantly better than the baseline per the Wilcoxon
//    signed-rank test at 95% confidence;
//  * ">", "=", "<" count datasets where a measure beats / ties / loses to
//    the baseline;
//  * figures are Friedman + Nemenyi critical-difference diagrams (90%),
//    rendered as ASCII.
//
// Environment knobs:
//  * TSDIST_SCALE  = tiny | small | medium   (default small)
//  * TSDIST_THREADS = N                      (default: hardware concurrency)
//  * TSDIST_BENCH_REPEAT = N                 measured iterations per RunCase
//    (default 1); TSDIST_BENCH_WARMUP = K    unmeasured warmup iterations
//    (default 0). The tsdist_bench orchestrator sets both.
//  * TSDIST_BENCH_JSON = <dir>               when set, each bench binary
//    writes <dir>/BENCH_<name>.json on exit: a tsdist.bench.v2 report with
//    the run manifest (git SHA, compiler, CPU, seed), per-case wall-clock
//    sample arrays, the peak-RSS gauge, and the full tsdist.metrics.v1
//    snapshot, so BENCH_*.json trajectories are self-describing and
//    comparable across commits (see docs/BENCHMARKING.md)
//  * TSDIST_PROFILE_OUT = <file>             when set, the sampling profiler
//    runs for the whole session and the folded profile is written to <file>
//    on exit (the tsdist_bench orchestrator sets a per-bench path and merges
//    them into its --profile-out; see docs/PROFILING.md)
//  * TSDIST_HEAP_PROFILE_OUT = <file>        same contract for the
//    allocation-sampling heap profiler: armed for the whole session, the
//    tsdist.heapprofile.v1 collapsed stacks land in <file> on exit (the
//    orchestrator's --heap-profile-out merge mirrors --profile-out; see
//    docs/MEMORY.md)

#ifndef TSDIST_BENCH_BENCH_COMMON_H_
#define TSDIST_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/pairwise_engine.h"
#include "src/data/archive.h"
#include "src/linalg/matrix.h"
#include "src/obs/runinfo.h"

namespace tsdist::bench {

/// RAII session for one bench binary: declare first in main(). Measures
/// wall-clock for the whole reproduction and, when TSDIST_BENCH_JSON names
/// a directory, writes <dir>/BENCH_<name>.json with the shared
/// tsdist.bench.v2 schema (manifest + per-case samples + peak RSS +
/// embedded metrics snapshot).
class ObsSession {
 public:
  explicit ObsSession(std::string bench_name);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Seconds since construction.
  double ElapsedSeconds() const;

  /// Runs `body` BenchWarmupFromEnv() times unmeasured, then
  /// BenchRepeatFromEnv() times measured, recording one wall-clock sample
  /// per measured iteration under case `name` in the v2 report. `body` must
  /// be idempotent (every bench computation here is deterministic, so
  /// re-running it reproduces the same tables). With the default
  /// repeat=1 / warmup=0 a case runs exactly once, like the v1 behavior.
  void RunCase(const std::string& name, const std::function<void()>& body);

  /// Cases recorded so far (exposed for tests and the session destructor).
  const std::vector<obs::BenchCaseResult>& cases() const { return cases_; }

 private:
  std::string name_;
  std::uint64_t start_ns_;
  std::string profile_out_;  ///< folded-profile path; empty = not profiling
  std::string heap_profile_out_;  ///< heap-profile path; empty = off
  std::vector<obs::BenchCaseResult> cases_;
};

/// Scale preset from TSDIST_SCALE (tiny/small/medium; default small).
ArchiveScale ScaleFromEnv();

/// The normalized TSDIST_SCALE name ("tiny"/"small"/"medium").
std::string ScaleNameFromEnv();

/// Thread count from TSDIST_THREADS (default 0 = hardware concurrency).
std::size_t ThreadsFromEnv();

/// Measured iterations per RunCase from TSDIST_BENCH_REPEAT (default 1,
/// floor 1).
int BenchRepeatFromEnv();

/// Warmup iterations per RunCase from TSDIST_BENCH_WARMUP (default 0).
int BenchWarmupFromEnv();

/// The benchmark archive: z-normalized synthetic suite at the environment
/// scale, fixed seed.
std::vector<Dataset> BenchArchive();

/// One measure/normalization combination evaluated across the archive.
struct ComboAccuracies {
  std::string measure;
  std::string normalization;  ///< per-series normalizer name or "adaptive"
  std::string label;          ///< display label, e.g. "lorentzian+meannorm"
  std::vector<double> accuracies;  ///< one test accuracy per dataset
};

/// Evaluates `measure_name` (fixed `params`) under `normalization` ("zscore",
/// ..., "adaptive", or "none") across the archive. "adaptive" wraps the
/// measure in the pairwise AdaptiveScalingMeasure; any other name re-applies
/// that per-series transform on top of the z-normalized base.
ComboAccuracies EvaluateCombo(const std::string& measure_name,
                              const ParamMap& params,
                              const std::string& normalization,
                              const std::vector<Dataset>& archive,
                              const PairwiseEngine& engine);

/// Evaluates with supervised LOOCV tuning over `grid` (z-normalized data).
ComboAccuracies EvaluateComboTuned(const std::string& measure_name,
                                   const std::vector<ParamMap>& grid,
                                   const std::vector<Dataset>& archive,
                                   const PairwiseEngine& engine);

/// Mean of a vector (0 for empty).
double MeanOf(const std::vector<double>& values);

/// Prints the header of a paper-style comparison table.
void PrintTableHeader(const std::string& title, const std::string& baseline);

/// Prints one row: Better? (Wilcoxon, 95%), average accuracy, >/=/< counts
/// against `baseline` accuracies. Follows Table 2/3/5/6/7 layout.
void PrintComparisonRow(const ComboAccuracies& combo,
                        const std::vector<double>& baseline);

/// Prints the baseline row.
void PrintBaselineRow(const std::string& label,
                      const std::vector<double>& accuracies);

/// Builds an N-datasets x k-combos accuracy matrix from combos.
Matrix AccuracyMatrix(const std::vector<ComboAccuracies>& combos);

/// Prints an ASCII critical-difference diagram (Friedman + Nemenyi at the
/// given alpha) for the combos — the paper's figure format.
void PrintCdDiagram(const std::string& title,
                    const std::vector<ComboAccuracies>& combos, double alpha);

}  // namespace tsdist::bench

#endif  // TSDIST_BENCH_BENCH_COMMON_H_
