// Figures 5 and 6 reproduction: critical-difference diagrams of elastic +
// sliding measures under supervised (Fig. 5) and unsupervised (Fig. 6)
// parameter tuning.
//
// Paper shape: supervised, MSM/TWE/DTW significantly outrank NCCc while
// LCSS/ERP/EDR/Swale do not; unsupervised, MSM and TWE clearly lead, DTW-10
// is comparable to NCCc, and several elastic measures rank below it.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;
using tsdist::bench::EvaluateComboTuned;

constexpr const char* kElastic[] = {"msm", "twe", "dtw", "edr",
                                    "swale", "erp", "lcss"};

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig5_fig6_elastic_ranks");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Figures 5/6: elastic + sliding measure rankings over "
            << archive.size() << " datasets\n";

  // Figure 5: supervised.
  {
    std::vector<ComboAccuracies> combos;
    obs_session.RunCase("supervised_ranks", [&] {
      combos.clear();
      for (const char* measure : kElastic) {
        combos.push_back(EvaluateComboTuned(
            measure, tsdist::ParamGridFor(measure), archive, engine));
      }
      combos.push_back(EvaluateCombo("nccc", {}, "zscore", archive, engine));
    });
    tsdist::bench::PrintCdDiagram(
        "Figure 5: supervised elastic measures + NCCc", combos, 0.10);
  }

  // Figure 6: unsupervised (paper's fixed parameters).
  {
    std::vector<ComboAccuracies> combos;
    obs_session.RunCase("unsupervised_ranks", [&] {
      combos.clear();
      for (const char* measure : kElastic) {
        ComboAccuracies combo =
            EvaluateCombo(measure, tsdist::UnsupervisedParamsFor(measure),
                          "zscore", archive, engine);
        combo.label = std::string(measure) + " (fixed)";
        combos.push_back(std::move(combo));
      }
      combos.push_back(EvaluateCombo("nccc", {}, "zscore", archive, engine));
    });
    tsdist::bench::PrintCdDiagram(
        "Figure 6: unsupervised elastic measures + NCCc", combos, 0.10);
  }

  std::cout << "(Paper shape: MSM and TWE outrank NCCc in both regimes; the\n"
            << " pre-2008 elastic measures do not, and DTW loses its crown\n"
            << " — the M4 debunking.)\n";
  return 0;
}
