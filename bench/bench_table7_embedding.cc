// Table 7 reproduction: embedding measures (ED over learned
// representations) vs NCCc. Representations have the same target length
// (paper: 100; here scaled with the archive preset) for fairness.
//
// Paper shape: GRAIL is the only embedding comparable to NCCc (no
// significant difference); RWS, SPIRAL, and SIDL are significantly worse,
// with SIDL far behind.

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/embedding/representation.h"

namespace {

using tsdist::bench::BenchArchive;
using tsdist::bench::ComboAccuracies;
using tsdist::bench::EvaluateCombo;

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_table7_embedding");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  // Paper uses 100-dimensional representations; cap by the smallest train
  // split so every dataset gets the same target dimension.
  std::size_t dimension = 100;
  for (const auto& d : archive) {
    dimension = std::min(dimension, d.train_size());
  }
  std::cout << "Table 7: embedding measures vs NCCc, " << archive.size()
            << " datasets, representation length " << dimension << "\n";

  ComboAccuracies baseline;
  std::vector<ComboAccuracies> rows;
  obs_session.RunCase("evaluate_embeddings", [&] {
    baseline = EvaluateCombo("nccc", {}, "zscore", archive, engine);
    rows.clear();
    for (const char* name : {"grail", "rws", "spiral", "sidl"}) {
      ComboAccuracies combo;
      combo.measure = name;
      combo.normalization = "zscore";
      combo.label = std::string(name) + " (ED on representations)";
      for (const auto& dataset : archive) {
        auto rep = tsdist::MakeRepresentation(name, {}, dimension, /*seed=*/7);
        combo.accuracies.push_back(
            tsdist::EvaluateEmbedding(rep.get(), dataset).test_accuracy);
      }
      rows.push_back(std::move(combo));
    }
  });

  tsdist::bench::PrintTableHeader("Embedding measures vs NCCc",
                                  "nccc+zscore");
  for (const auto& row : rows) {
    tsdist::bench::PrintComparisonRow(row, baseline.accuracies);
  }
  tsdist::bench::PrintBaselineRow("nccc+zscore", baseline.accuracies);

  std::cout << "\n(Paper shape: GRAIL comparable to NCCc; RWS/SPIRAL/SIDL\n"
            << " significantly worse; none beats DTW.)\n";
  return 0;
}
