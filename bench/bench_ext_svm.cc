// Extension experiment: kernel measures under the SVM evaluation framework.
//
// Section 9 of the paper: "embedding measures (as well as kernel methods)
// achieve much higher accuracy under different evaluation frameworks (e.g.,
// with SVM classifiers) ... We leave such extensive analysis for future
// work." This bench performs that analysis on the synthetic archive.
//
// Protocol: per dataset, the SVM's (gamma, C) are tuned on a held-out third
// of the training split (the SVM analogue of the paper's supervised LOOCV
// regime), the winner is retrained on the full training split, and test
// accuracy is compared against supervised 1-NN with the same kernel grid.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/param_grids.h"
#include "src/classify/svm.h"
#include "src/stats/wilcoxon.h"

namespace {

using tsdist::Dataset;
using tsdist::KernelPtr;
using tsdist::Matrix;
using tsdist::OneVsOneSvm;
using tsdist::ParamMap;
using tsdist::SvmOptions;
using tsdist::TimeSeries;
using tsdist::bench::BenchArchive;
using tsdist::bench::MeanOf;

// Gram matrix of normalized kernel similarities between two sets.
Matrix SimilarityMatrix(const tsdist::KernelFunction& kernel,
                        const std::vector<TimeSeries>& rows,
                        const std::vector<TimeSeries>& cols,
                        const tsdist::PairwiseEngine& engine) {
  const tsdist::KernelDistance distance(
      tsdist::MakeKernel(kernel.name(), kernel.params()));
  Matrix out = engine.Compute(rows, cols, distance);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(i, j) = 1.0 - out(i, j);
    }
  }
  return out;
}

// Tunes (gamma, C) on a 2/3-1/3 split of the training set, then evaluates
// the winner on the test split.
double TunedSvmAccuracy(const std::string& kernel_name, const Dataset& dataset,
                        const tsdist::PairwiseEngine& engine) {
  // Deterministic 2/3-1/3 split: every third series validates.
  std::vector<TimeSeries> fit_set, val_set;
  for (std::size_t i = 0; i < dataset.train_size(); ++i) {
    if (i % 3 == 2) {
      val_set.push_back(dataset.train()[i]);
    } else {
      fit_set.push_back(dataset.train()[i]);
    }
  }
  auto labels_of = [](const std::vector<TimeSeries>& set) {
    std::vector<int> out;
    for (const auto& s : set) out.push_back(s.label());
    return out;
  };
  const std::vector<int> fit_labels = labels_of(fit_set);
  const std::vector<int> val_labels = labels_of(val_set);

  const std::vector<ParamMap> grid = tsdist::ParamGridFor(kernel_name);
  const std::vector<double> c_grid = {1.0, 10.0, 100.0};

  ParamMap best_params = grid.front();
  double best_c = c_grid.front();
  double best_val = -1.0;
  for (const ParamMap& params : grid) {
    const KernelPtr kernel = tsdist::MakeKernel(kernel_name, params);
    const Matrix fit_gram = SimilarityMatrix(*kernel, fit_set, fit_set, engine);
    const Matrix val_rows = SimilarityMatrix(*kernel, val_set, fit_set, engine);
    for (double c : c_grid) {
      SvmOptions options;
      options.c = c;
      OneVsOneSvm svm;
      svm.Train(fit_gram, fit_labels, options);
      std::size_t correct = 0;
      for (std::size_t i = 0; i < val_set.size(); ++i) {
        if (svm.Predict(val_rows.row(i)) == val_labels[i]) ++correct;
      }
      const double val_acc =
          val_set.empty() ? 0.0
                          : static_cast<double>(correct) /
                                static_cast<double>(val_set.size());
      if (val_acc > best_val) {
        best_val = val_acc;
        best_params = params;
        best_c = c;
      }
    }
  }

  const KernelPtr kernel = tsdist::MakeKernel(kernel_name, best_params);
  SvmOptions options;
  options.c = best_c;
  return tsdist::EvaluateSvm(*kernel, dataset, options, engine.num_threads());
}

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_ext_svm");
  const auto archive = BenchArchive();
  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  std::cout << "Extension: 1-NN vs SVM evaluation frameworks for kernel "
            << "measures, " << archive.size() << " datasets\n"
            << "(both frameworks supervised: 1-NN tunes gamma by LOOCV, the\n"
            << " SVM tunes gamma and C on a held-out third of the train set)\n";
  std::cout << std::left << std::setw(10) << "Kernel" << std::setw(12)
            << "1NN-acc" << std::setw(12) << "SVM-acc" << std::setw(24)
            << "SVM better (Wilcoxon)?" << "\n";

  struct Row {
    const char* name;
    std::vector<double> nn_acc;
    std::vector<double> svm_acc;
  };
  std::vector<Row> rows;
  obs_session.RunCase("svm_vs_1nn", [&] {
    rows.clear();
    for (const char* name : {"sink", "gak", "kdtw", "rbf"}) {
      Row row;
      row.name = name;
      row.nn_acc = tsdist::bench::EvaluateComboTuned(
                       name, tsdist::ParamGridFor(name), archive, engine)
                       .accuracies;
      for (const auto& dataset : archive) {
        row.svm_acc.push_back(TunedSvmAccuracy(name, dataset, engine));
      }
      rows.push_back(std::move(row));
    }
  });
  for (const auto& row : rows) {
    const tsdist::WilcoxonResult w =
        tsdist::WilcoxonSignedRank(row.svm_acc, row.nn_acc);
    const bool better = w.p_value < 0.05 && w.w_plus > w.w_minus;
    const bool worse = w.p_value < 0.05 && w.w_plus < w.w_minus;
    std::cout << std::left << std::setw(10) << row.name << std::setw(12)
              << std::fixed << std::setprecision(4) << MeanOf(row.nn_acc)
              << std::setw(12) << MeanOf(row.svm_acc) << std::setw(24)
              << (better ? "yes" : (worse ? "WORSE" : "no")) << "\n";
  }
  std::cout << "\n(Paper context [109]: kernels gain under SVM evaluation;\n"
            << " the effect should be clearest for RBF, which lacks the\n"
            << " invariances 1-NN exploits through raw distance ordering.)\n";
  return 0;
}
