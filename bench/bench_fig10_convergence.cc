// Figure 10 reproduction: 1-NN error rates with increasingly larger
// training sets. The classic claim (Shieh & Keogh) is that ED's error
// converges to that of more accurate measures as data grows; the paper
// shows convergence "may not always happen, at least not always with the
// same speed".
//
// We grow the training split of a warped + shifted dataset and track error
// for ED, NCCc, DTW, and MSM.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "src/classify/one_nn.h"
#include "src/classify/param_grids.h"
#include "src/core/registry.h"
#include "src/data/generators.h"
#include "src/normalization/normalization.h"

namespace {

using tsdist::Dataset;
using tsdist::GeneratorOptions;
using tsdist::TimeSeries;

Dataset TruncatedTrain(const Dataset& full, std::size_t train_size) {
  std::vector<TimeSeries> train(full.train().begin(),
                                full.train().begin() +
                                    static_cast<std::ptrdiff_t>(train_size));
  return Dataset(full.name(), std::move(train),
                 std::vector<TimeSeries>(full.test()));
}

}  // namespace

int main() {
  tsdist::bench::ObsSession obs_session("bench_fig10_convergence");
  // A large warped dataset: the regime where elastic/sliding measures hold
  // a persistent edge.
  GeneratorOptions options;
  const bool tiny = tsdist::bench::ScaleFromEnv() == tsdist::ArchiveScale::kTiny;
  options.length = tiny ? 48 : 96;
  options.train_per_class = tiny ? 40 : 100;
  options.test_per_class = tiny ? 20 : 50;
  options.noise = 0.15;
  options.warp = 0.15;
  options.max_shift = options.length / 8;
  options.seed = 20200614;
  const Dataset full = tsdist::ZScoreNormalizer().Apply(
      tsdist::MakeWarpedPrototypes(options));

  const tsdist::PairwiseEngine engine(tsdist::bench::ThreadsFromEnv());
  const std::vector<std::pair<const char*, tsdist::ParamMap>> measures = {
      {"euclidean", {}},
      {"nccc", {}},
      {"dtw", tsdist::UnsupervisedParamsFor("dtw")},
      {"msm", tsdist::UnsupervisedParamsFor("msm")},
  };

  std::cout << "Figure 10: 1-NN error vs training-set size ("
            << full.name() << ", " << full.test_size() << " test series)\n";
  std::cout << std::left << std::setw(10) << "TrainN";
  for (const auto& [name, params] : measures) {
    std::cout << std::setw(12) << name;
  }
  std::cout << "\n";

  struct Row {
    std::size_t train_n;
    std::vector<double> errors;
  };
  std::vector<Row> rows;
  obs_session.RunCase("growing_train_sweep", [&] {
    rows.clear();
    for (double frac : {0.1, 0.2, 0.4, 0.6, 0.8, 1.0}) {
      const std::size_t n = static_cast<std::size_t>(
          frac * static_cast<double>(full.train_size()));
      if (n < 3) continue;
      const Dataset subset = TruncatedTrain(full, n);
      Row row;
      row.train_n = n;
      for (const auto& [name, params] : measures) {
        const auto measure = tsdist::Registry::Global().Create(name, params);
        const tsdist::Matrix e =
            engine.Compute(subset.test(), subset.train(), *measure);
        const double acc = tsdist::OneNnAccuracy(e, subset.test_labels(),
                                                 subset.train_labels());
        row.errors.push_back(1.0 - acc);
      }
      rows.push_back(std::move(row));
    }
  });
  for (const auto& row : rows) {
    std::cout << std::left << std::setw(10) << row.train_n;
    for (const double err : row.errors) {
      std::cout << std::setw(12) << std::fixed << std::setprecision(4) << err;
    }
    std::cout << "\n";
  }
  std::cout << "\n(Paper shape: ED's error falls with data but does NOT\n"
            << " close the gap to the invariant measures at the same rate.)\n";
  return 0;
}
