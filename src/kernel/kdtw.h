// KDTW: Dynamic Time Warping kernel (Marteau & Gibet, TNNLS'15).
//
// A regularized recursive edit-distance kernel. Two coupled DPs accumulate
// path products of the local kernel
//   lk(i, j) = (exp(-gamma (a_i - b_j)^2) + epsilon) / (3 (1 + epsilon)),
// one over all alignments (like GAK) and one restricted to index-synchronized
// paths, and the kernel is their sum. Evaluated in log space for the same
// underflow reason as GAK. The paper's strongest kernel: the first measure
// reported to significantly outperform DTW under both tuning regimes.

#ifndef TSDIST_KERNEL_KDTW_H_
#define TSDIST_KERNEL_KDTW_H_

#include "src/kernel/kernel_measure.h"

namespace tsdist {

/// KDTW with bandwidth `gamma` (Table 4: 2^-15 ... 2^0; unsupervised
/// default 0.125) and regularizer `epsilon`.
class KdtwKernel : public KernelFunction {
 public:
  explicit KdtwKernel(double gamma = 0.125, double epsilon = 1e-3);
  double LogSimilarity(std::span<const double> a,
                       std::span<const double> b) const override;
  std::string name() const override { return "kdtw"; }
  ParamMap params() const override {
    return {{"gamma", gamma_}, {"epsilon", epsilon_}};
  }
  CostClass cost_class() const override { return CostClass::kQuadratic; }

 private:
  double gamma_;
  double epsilon_;
};

}  // namespace tsdist

#endif  // TSDIST_KERNEL_KDTW_H_
