// Global Alignment Kernel (Cuturi, ICML'11).
//
// Sums the products of local similarities over *all* monotone alignment
// paths (where DTW keeps only the best one), which yields a p.s.d. kernel
// when the local kernel is geometrically divisible. We use Cuturi's
// recommended local kernel k/(2-k) with k = exp(-(a_i-b_j)^2 / (2 gamma^2)).
// The quadratic DP is evaluated entirely in log space: path products over
// hundreds of points underflow doubles otherwise.

#ifndef TSDIST_KERNEL_GAK_H_
#define TSDIST_KERNEL_GAK_H_

#include "src/kernel/kernel_measure.h"

namespace tsdist {

/// GAK with bandwidth `gamma` (Table 4: {0.01 ... 20}; unsupervised
/// default 0.1). When `scale_with_length` is true (default), the effective
/// bandwidth is gamma * sqrt(mean series length), following Cuturi's
/// recommendation that sigma grow with the alignment length; RWS disables
/// the scaling because its random warping series are deliberately short.
class GakKernel : public KernelFunction {
 public:
  explicit GakKernel(double gamma = 0.1, bool scale_with_length = true);
  double LogSimilarity(std::span<const double> a,
                       std::span<const double> b) const override;
  std::string name() const override { return "gak"; }
  ParamMap params() const override { return {{"gamma", gamma_}}; }
  CostClass cost_class() const override { return CostClass::kQuadratic; }

 private:
  double gamma_;
  bool scale_with_length_;
};

}  // namespace tsdist

#endif  // TSDIST_KERNEL_GAK_H_
