#include "src/kernel/sink.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/sliding/cross_correlation.h"

namespace tsdist {

namespace {

constexpr double kEps = 1e-12;

double Norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace

SinkKernel::SinkKernel(double gamma) : gamma_(gamma) {
  assert(gamma_ > 0.0);
}

double SinkKernel::LogSimilarity(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::vector<double> cc = CrossCorrelationSequence(a, b);
  double den = Norm2(a) * Norm2(b);
  if (den < kEps) den = kEps;
  // log sum_w exp(gamma * ncc_w), evaluated stably around the max exponent.
  double max_exp = -std::numeric_limits<double>::infinity();
  for (double v : cc) max_exp = std::max(max_exp, gamma_ * v / den);
  double acc = 0.0;
  for (double v : cc) acc += std::exp(gamma_ * v / den - max_exp);
  return max_exp + std::log(acc);
}

}  // namespace tsdist
