#include "src/kernel/rbf.h"

#include <cassert>

namespace tsdist {

RbfKernel::RbfKernel(double gamma) : gamma_(gamma) {
  assert(gamma_ > 0.0);
}

double RbfKernel::LogSimilarity(std::span<const double> a,
                                std::span<const double> b) const {
  assert(a.size() == b.size());
  double sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return -gamma_ * sq;
}

}  // namespace tsdist
