#include "src/kernel/kdtw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace tsdist {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Rescale threshold. Local kernels are <= 1/3, so DP values only shrink;
// overflow is impossible and only underflow needs guarding.
constexpr double kTiny = 1e-150;

}  // namespace

KdtwKernel::KdtwKernel(double gamma, double epsilon)
    : gamma_(gamma), epsilon_(epsilon) {
  assert(gamma_ > 0.0);
  assert(epsilon_ > 0.0);
}

double KdtwKernel::LogSimilarity(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;

  // Regularized local kernel, in (0, 1/3].
  const double norm = 3.0 * (1.0 + epsilon_);
  auto local = [&](double x, double y) {
    const double d = x - y;
    return (std::exp(-gamma_ * d * d) + epsilon_) / norm;
  };

  // Diagonal local kernels lk(a_h, b_h), used by the synchronized DP.
  std::vector<double> dpl(m + 1, 0.0);
  for (std::size_t h = 1; h <= m; ++h) {
    dpl[h] = local(a[h - 1], b[h - 1]);
  }

  // Two coupled DPs (Marteau & Gibet): Kdtw over all alignments, Kdtw1 over
  // index-synchronized ones. Both are linear recursions in the matrix
  // entries, so we keep them in linear space and rescale the *current pair
  // of rows* by a shared factor whenever values shrink below kTiny,
  // accumulating the log of the factors (exact, since row i+1 depends only
  // on row i).
  std::vector<double> k_prev(m + 1, 0.0), k_curr(m + 1, 0.0);
  std::vector<double> k1_prev(m + 1, 0.0), k1_curr(m + 1, 0.0);
  double log_scale = 0.0;

  // Row 0: running products. Chunk-rescale the prefix whenever the running
  // values underflow (a uniform factor over the whole row keeps it exact).
  k_prev[0] = 1.0;
  k1_prev[0] = 1.0;
  for (std::size_t j = 1; j <= m; ++j) {
    k_prev[j] = k_prev[j - 1] * local(a[0], b[j - 1]);
    k1_prev[j] = k1_prev[j - 1] * dpl[j];
    const double row_max = std::max(k_prev[j], k1_prev[j]);
    if (row_max > 0.0 && row_max < kTiny) {
      const double inv = 1.0 / row_max;
      for (std::size_t t = 0; t <= j; ++t) {
        k_prev[t] *= inv;
        k1_prev[t] *= inv;
      }
      log_scale += std::log(row_max);
    }
  }

  for (std::size_t i = 1; i <= m; ++i) {
    k_curr[0] = k_prev[0] * local(a[i - 1], b[0]);
    k1_curr[0] = k1_prev[0] * dpl[i];
    double row_max = std::max(k_curr[0], k1_curr[0]);
    for (std::size_t j = 1; j <= m; ++j) {
      const double lk = local(a[i - 1], b[j - 1]);
      k_curr[j] = lk * (k_prev[j] + k_curr[j - 1] + k_prev[j - 1]);
      if (i == j) {
        k1_curr[j] = k1_prev[j - 1] * lk + k1_prev[j] * dpl[i] +
                     k1_curr[j - 1] * dpl[j];
      } else {
        k1_curr[j] = k1_prev[j] * dpl[i] + k1_curr[j - 1] * dpl[j];
      }
      row_max = std::max({row_max, k_curr[j], k1_curr[j]});
    }
    if (row_max <= 0.0) return kNegInf;
    if (row_max < kTiny) {
      const double inv = 1.0 / row_max;
      for (std::size_t t = 0; t <= m; ++t) {
        k_curr[t] *= inv;
        k1_curr[t] *= inv;
      }
      log_scale += std::log(row_max);
    }
    std::swap(k_prev, k_curr);
    std::swap(k1_prev, k1_curr);
  }
  const double total = k_prev[m] + k1_prev[m];
  if (total <= 0.0) return kNegInf;
  return std::log(total) + log_scale;
}

}  // namespace tsdist
