#include "src/kernel/kernel_measure.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/kernel/gak.h"
#include "src/kernel/kdtw.h"
#include "src/kernel/rbf.h"
#include "src/kernel/sink.h"

namespace tsdist {

namespace kernel_internal {

double LogSumExp3(double a, double b, double c) {
  const double m = std::max({a, b, c});
  if (m == -std::numeric_limits<double>::infinity()) return m;
  return m + std::log(std::exp(a - m) + std::exp(b - m) + std::exp(c - m));
}

}  // namespace kernel_internal

KernelDistance::KernelDistance(KernelPtr kernel) : kernel_(std::move(kernel)) {
  assert(kernel_ != nullptr);
}

double KernelDistance::CachedSelfSimilarity(std::span<const double> x) const {
  const std::pair<const double*, std::size_t> key{x.data(), x.size()};
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto it = self_cache_.find(key);
    if (it != self_cache_.end()) return it->second;
  }
  const double value = kernel_->LogSimilarity(x, x);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  self_cache_.emplace(key, value);
  return value;
}

double KernelDistance::Distance(std::span<const double> a,
                                std::span<const double> b) const {
  const double log_ab = kernel_->LogSimilarity(a, b);
  const double log_aa = CachedSelfSimilarity(a);
  const double log_bb = CachedSelfSimilarity(b);
  const double normalized = std::exp(log_ab - 0.5 * (log_aa + log_bb));
  return 1.0 - normalized;
}

namespace {

double GetOr(const ParamMap& params, const std::string& key, double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

}  // namespace

KernelPtr MakeKernel(const std::string& name, const ParamMap& params) {
  if (name == "rbf") {
    return std::make_unique<RbfKernel>(GetOr(params, "gamma", 2.0));
  }
  if (name == "sink") {
    return std::make_unique<SinkKernel>(GetOr(params, "gamma", 5.0));
  }
  if (name == "gak") {
    return std::make_unique<GakKernel>(GetOr(params, "gamma", 0.1));
  }
  if (name == "kdtw") {
    return std::make_unique<KdtwKernel>(GetOr(params, "gamma", 0.125));
  }
  return nullptr;
}

void RegisterKernelMeasures(Registry* registry) {
  for (const std::string name : {"rbf", "sink", "gak", "kdtw"}) {
    registry->Register(name, [name](const ParamMap& params) -> MeasurePtr {
      return std::make_unique<KernelDistance>(MakeKernel(name, params));
    });
  }
}

const std::vector<std::string>& KernelMeasureNames() {
  static const std::vector<std::string> kNames = {"kdtw", "gak", "sink", "rbf"};
  return kNames;
}

}  // namespace tsdist
