// Kernel measures (paper Section 8).
//
// Kernel functions are positive semi-definite similarities. For 1-NN
// evaluation each kernel k is turned into the normalized distance
//   d(x, y) = 1 - k(x, y) / sqrt(k(x, x) * k(y, y)),
// which is invariant to per-pair scale. Alignment kernels (GAK, KDTW) sum
// exponentially many path products and underflow doubles for realistic
// series lengths, so every kernel exposes its *logarithm* and the
// normalization happens in log space.

#ifndef TSDIST_KERNEL_KERNEL_MEASURE_H_
#define TSDIST_KERNEL_KERNEL_MEASURE_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "src/core/distance_measure.h"
#include "src/core/registry.h"

namespace tsdist {

/// A p.s.d. similarity function exposed through its logarithm.
class KernelFunction {
 public:
  virtual ~KernelFunction() = default;

  /// log k(a, b). Must be finite for finite inputs.
  virtual double LogSimilarity(std::span<const double> a,
                               std::span<const double> b) const = 0;

  /// Registry name ("rbf", "sink", "gak", "kdtw").
  virtual std::string name() const = 0;

  /// Parameters of this instance.
  virtual ParamMap params() const { return {}; }

  /// Per-comparison asymptotic cost.
  virtual CostClass cost_class() const = 0;
};

using KernelPtr = std::unique_ptr<KernelFunction>;

/// Adapts a kernel into the DistanceMeasure interface via normalized
/// similarity: d = 1 - exp(log k(a,b) - (log k(a,a) + log k(b,b)) / 2).
///
/// Self-similarities k(x, x) are memoized keyed by the span's data pointer:
/// during a dissimilarity-matrix computation every series participates in
/// O(n) comparisons but its self-similarity is needed only once. The cache
/// is thread-safe and assumes the underlying buffers are not mutated while
/// this measure instance is in use (true for the evaluation pipeline, which
/// treats datasets as immutable).
class KernelDistance : public DistanceMeasure {
 public:
  explicit KernelDistance(KernelPtr kernel);

  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return kernel_->name(); }
  MeasureCategory category() const override { return MeasureCategory::kKernel; }
  CostClass cost_class() const override { return kernel_->cost_class(); }
  ParamMap params() const override { return kernel_->params(); }

  const KernelFunction& kernel() const { return *kernel_; }

 private:
  double CachedSelfSimilarity(std::span<const double> x) const;

  KernelPtr kernel_;
  mutable std::mutex cache_mutex_;
  mutable std::map<std::pair<const double*, std::size_t>, double> self_cache_;
};

/// Constructs a kernel by name with the given parameters; nullptr when
/// unknown. Names: "rbf", "sink", "gak", "kdtw"; all take {"gamma": value}.
KernelPtr MakeKernel(const std::string& name, const ParamMap& params = {});

/// Registers the kernel-induced distances under their kernel names.
void RegisterKernelMeasures(Registry* registry);

/// Names of the 4 kernel measures in paper order.
const std::vector<std::string>& KernelMeasureNames();

namespace kernel_internal {

/// Numerically stable log(exp(a) + exp(b) + exp(c)); tolerates -inf inputs.
double LogSumExp3(double a, double b, double c);

}  // namespace kernel_internal

}  // namespace tsdist

#endif  // TSDIST_KERNEL_KERNEL_MEASURE_H_
