// SINK: Shift-INvariant Kernel (Paparrizos & Franklin, VLDB'19).
//
// Sums exponentiated coefficient-normalized cross-correlations over all
// shifts: k(x, y) = sum_w exp(gamma * CC_w(x, y) / (||x|| ||y||)). The sum
// over every alignment (rather than the max that NCCc takes) makes the
// function p.s.d. Cost is O(m log m) via the FFT — the kernel the paper
// highlights as the efficient entry in the accuracy-to-runtime analysis.

#ifndef TSDIST_KERNEL_SINK_H_
#define TSDIST_KERNEL_SINK_H_

#include "src/kernel/kernel_measure.h"

namespace tsdist {

/// SINK kernel with scale `gamma` (Table 4: {1 ... 20}; unsupervised
/// default 5).
class SinkKernel : public KernelFunction {
 public:
  explicit SinkKernel(double gamma = 5.0);
  double LogSimilarity(std::span<const double> a,
                       std::span<const double> b) const override;
  std::string name() const override { return "sink"; }
  ParamMap params() const override { return {{"gamma", gamma_}}; }
  CostClass cost_class() const override { return CostClass::kLinearithmic; }

 private:
  double gamma_;
};

}  // namespace tsdist

#endif  // TSDIST_KERNEL_SINK_H_
