#include "src/kernel/gak.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace tsdist {

GakKernel::GakKernel(double gamma, bool scale_with_length)
    : gamma_(gamma), scale_with_length_(scale_with_length) {
  assert(gamma_ > 0.0);
}

double GakKernel::LogSimilarity(std::span<const double> a,
                                std::span<const double> b) const {
  // Unequal lengths are supported: the alignment DP is rectangular. (The
  // RWS embedding aligns full series against short random warping series.)
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m == 0 || n == 0) return 0.0;
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  // Cuturi's recommendation: the bandwidth should scale with sqrt(length)
  // (alignments sum ~m local terms). gamma is the user-facing scale of
  // Table 4; sigma = gamma * sqrt(mean length) is the actual bandwidth.
  const double sigma =
      scale_with_length_
          ? gamma_ * std::sqrt(0.5 * static_cast<double>(m + n))
          : gamma_;
  const double inv_two_gamma_sq = 1.0 / (2.0 * sigma * sigma);

  // Cuturi's geometrically divisible local kernel k/(2-k), in linear space.
  auto local = [&](double x, double y) {
    const double d = x - y;
    const double e = std::exp(-d * d * inv_two_gamma_sq);  // in (0, 1]
    return e / (2.0 - e);
  };

  // Rolling-row DP over M(i, j) = local(i, j) * (M(i-1, j-1) + M(i-1, j) +
  // M(i, j-1)), kept in linear space with per-row rescaling: path products
  // over hundreds of sub-unity local kernels underflow doubles otherwise.
  // The recursion is linear in M, so rescaling a whole row state by a
  // constant and accumulating its log is exact.
  std::vector<double> prev(n + 1, 0.0);
  std::vector<double> curr(n + 1, 0.0);
  prev[0] = 1.0;
  double log_scale = 0.0;

  for (std::size_t i = 1; i <= m; ++i) {
    curr[0] = 0.0;
    double row_max = 0.0;
    for (std::size_t j = 1; j <= n; ++j) {
      curr[j] = local(a[i - 1], b[j - 1]) *
                (prev[j - 1] + prev[j] + curr[j - 1]);
      row_max = std::max(row_max, curr[j]);
    }
    if (row_max <= 0.0) return kNegInf;  // fully underflowed local kernels
    if (row_max < 1e-150 || row_max > 1e150) {
      // Row i+1 depends only on row i, so rescaling the current row and
      // remembering the log factor is exact (the recursion is linear).
      const double inv = 1.0 / row_max;
      for (double& v : curr) v *= inv;
      log_scale += std::log(row_max);
    }
    std::swap(prev, curr);
  }
  if (prev[n] <= 0.0) return kNegInf;
  return std::log(prev[n]) + log_scale;
}

}  // namespace tsdist
