// Radial Basis Function kernel: k(a, b) = exp(-gamma * ||a - b||^2).
//
// The general-purpose lock-step kernel (Cristianini & Shawe-Taylor 2000).
// The paper includes it as the baseline kernel and finds it significantly
// *worse* than NCCc — shift and warping invariance matter for time series.

#ifndef TSDIST_KERNEL_RBF_H_
#define TSDIST_KERNEL_RBF_H_

#include "src/kernel/kernel_measure.h"

namespace tsdist {

/// RBF kernel with bandwidth `gamma` (Table 4: 2^-15 ... 2^0).
class RbfKernel : public KernelFunction {
 public:
  explicit RbfKernel(double gamma = 2.0);
  double LogSimilarity(std::span<const double> a,
                       std::span<const double> b) const override;
  std::string name() const override { return "rbf"; }
  ParamMap params() const override { return {{"gamma", gamma_}}; }
  CostClass cost_class() const override { return CostClass::kLinear; }

 private:
  double gamma_;
};

}  // namespace tsdist

#endif  // TSDIST_KERNEL_RBF_H_
