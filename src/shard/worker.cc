#include "src/shard/worker.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/classify/param_grids.h"
#include "src/classify/tuning.h"
#include "src/obs/health.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/obs/trace_spool.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault.h"
#include "src/shard/cell_log.h"
#include "src/shard/fleet.h"
#include "src/shard/lease.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tsdist::shard {

namespace {

void Bump(const char* name, std::uint64_t n = 1) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter(name).Add(n);
  }
}

std::uint32_t OwnPid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint32_t>(::getpid());
#else
  return 0;
#endif
}

/// How one shard looks to a scanning worker.
enum class ShardClass {
  kDone,
  kQuarantined,
  kClaimable,   ///< no lease, released lease, or stale lease
  kLive,        ///< fresh lease held by someone else
  kStealable,   ///< fresh lease, but held past the steal threshold
};

struct ShardView {
  ShardClass cls = ShardClass::kLive;
  std::uint32_t claim_epoch = 0;  ///< epoch to claim (kClaimable/kStealable)
  bool reclaim = false;           ///< claim follows a stale (not absent) lease
};

std::uint32_t MaxLeaseEpoch(const std::string& shard_dir) {
  std::uint32_t max_epoch = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(shard_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind("lease.e", 0) != 0) continue;
    const unsigned long epoch = std::strtoul(name.c_str() + 7, nullptr, 10);
    if (epoch > max_epoch) max_epoch = static_cast<std::uint32_t>(epoch);
  }
  return max_epoch;
}

ShardView ClassifyShard(const std::string& shard_dir, std::uint64_t now_ms,
                        std::uint64_t ttl_ms, std::uint64_t steal_ms) {
  ShardView view;
  if (std::filesystem::exists(QuarantinePath(shard_dir))) {
    view.cls = ShardClass::kQuarantined;
    return view;
  }
  std::uint32_t done_epoch = 0;
  if (ShardDone(shard_dir, &done_epoch)) {
    view.cls = ShardClass::kDone;
    return view;
  }
  const std::uint32_t epoch = MaxLeaseEpoch(shard_dir);
  if (epoch == 0) {
    view.cls = ShardClass::kClaimable;
    view.claim_epoch = 1;
    return view;
  }
  const std::string lease_path = shard_dir + "/" + LeaseFileName(epoch);
  LeaseInfo info;
  if (!ReadLease(lease_path, &info)) {
    // The lease file vanished between the directory scan and the read —
    // nothing ever deletes leases, so treat the epoch as occupied and let
    // the next scan settle it.
    view.cls = ShardClass::kLive;
    return view;
  }
  if (info.released) {
    // Clean handoff: the holder exited (e.g. interrupted) without finishing.
    view.cls = ShardClass::kClaimable;
    view.claim_epoch = epoch + 1;
    return view;
  }
  // Freshness: the newest valid record's wall time; a lease whose claim
  // record itself was torn (kill between O_EXCL create and the fsynced
  // claim write) falls back to the file mtime, so a torn claim still
  // occupies the epoch for one TTL instead of forever.
  const std::uint64_t last_ms =
      info.valid_records > 0 ? info.last_wall_ms : FileMtimeMs(lease_path);
  const std::uint64_t age_ms = now_ms > last_ms ? now_ms - last_ms : 0;
  if (age_ms > ttl_ms) {
    view.cls = ShardClass::kClaimable;
    view.claim_epoch = epoch + 1;
    view.reclaim = true;
    return view;
  }
  const std::uint64_t claim_ms =
      info.claim_wall_ms > 0 ? info.claim_wall_ms : FileMtimeMs(lease_path);
  const std::uint64_t held_ms = now_ms > claim_ms ? now_ms - claim_ms : 0;
  if (held_ms > steal_ms) {
    view.cls = ShardClass::kStealable;
    view.claim_epoch = epoch + 1;
    return view;
  }
  view.cls = ShardClass::kLive;
  return view;
}

void WriteQuarantine(const std::string& shard_dir, std::size_t shard,
                     std::uint32_t epochs_tried, const std::string& worker) {
  if (std::filesystem::exists(QuarantinePath(shard_dir))) return;
  std::ostringstream os;
  os << "{\"schema\": \"" << kQuarantineSchema << "\", \"shard\": " << shard
     << ", \"epochs_tried\": " << epochs_tried << ", \"worker\": \""
     << JsonEscape(worker) << "\", \"wall_ms\": " << WallMs() << "}\n";
  std::string error;
  AtomicWriteFile(QuarantinePath(shard_dir), os.str(), &error);
}

/// Outcome of one claimed shard execution.
enum class ShardRun {
  kDone,         ///< DONE marker written, lease released
  kLost,         ///< lease lost mid-run (heartbeat failure); abandoned
  kInterrupted,  ///< external interrupt; lease released without DONE
  kError,        ///< unrecoverable I/O error
};

CellOutcome ComputeCell(const ShardPlan& plan,
                        const std::vector<Dataset>& datasets,
                        const PairwiseEngine& engine, const PlanCell& cell,
                        const std::string& epoch_dir,
                        const CancellationToken* parent) {
  const Dataset& dataset = datasets[cell.dataset];
  const std::string& name = plan.measures[cell.measure];
  CellOutcome out;
  out.dataset = dataset.name();
  out.measure = name;
  // Same budget/options construction as the single-process driver: the plan
  // pins budget, pruning, and tile size, so a cell computed here is the
  // same pure function of the data as in a single-process sweep.
  CancellationToken budget(parent);
  if (plan.budget_sec > 0.0) budget.SetBudget(plan.budget_sec);
  EvalOptions eval_options;
  eval_options.pruned = plan.pruned;
  eval_options.cancel = &budget;
  eval_options.tile_rows = plan.tile_rows;
  eval_options.checkpoint_dir = epoch_dir + "/" + out.dataset + "/" + name;
  try {
    const EvalResult result =
        plan.supervised
            ? EvaluateTuned(name, ParamGridFor(name), dataset, engine,
                            Registry::Global(), eval_options)
            : EvaluateFixed(name, UnsupervisedParamsFor(name), dataset,
                            engine, Registry::Global(), eval_options);
    out.params = ToString(result.params);
    out.status = result.status;
    out.reason = result.reason;
    out.train_accuracy = result.train_accuracy;
    out.test_accuracy = result.test_accuracy;
  } catch (const std::exception& e) {
    out.status = EvalStatus::kFailed;
    out.reason = e.what();
  }
  if (out.status == EvalStatus::kOk && !std::isfinite(out.test_accuracy)) {
    out.status = EvalStatus::kFailed;
    out.reason = "non-finite test accuracy";
    out.test_accuracy = 0.0;
  }
  return out;
}

ShardRun RunShard(const ShardPlan& plan, const std::vector<Dataset>& datasets,
                  const PairwiseEngine& engine, const WorkerOptions& options,
                  std::size_t shard, LeaseHandle* lease,
                  std::uint64_t heartbeat_ms, WorkerStats* stats,
                  std::string* error) {
  const std::string shard_dir =
      ShardDirPath(options.checkpoint_dir, shard);
  const std::uint32_t epoch = lease->epoch();
  // The fencing epoch rides along in the trace context so spans recorded
  // from here on (and the spool header of a restarted worker) name it.
  obs::TraceRecorder::Global().set_context_epoch(epoch);
  obs::TraceSpan run_span("shard.run", "shard");
  run_span.Arg("shard", static_cast<std::uint64_t>(shard));
  run_span.Arg("epoch", static_cast<std::uint64_t>(epoch));
  run_span.Arg("worker", options.worker_id);
  const std::string epoch_dir = shard_dir + "/" + EpochDirName(epoch);
  std::error_code ec;
  std::filesystem::create_directories(epoch_dir, ec);
  if (ec) {
    *error = "cannot create " + epoch_dir + ": " + ec.message();
    return ShardRun::kError;
  }

  // Salvage: every prior epoch's durable ok-cells, via the read-only
  // valid-prefix reader — a paused zombie may still own its log, so prior
  // epochs are never truncated, only read.
  std::map<std::string, CellOutcome> salvaged;
  for (std::uint32_t prior = 1; prior < epoch; ++prior) {
    const std::string log =
        shard_dir + "/" + EpochDirName(prior) + "/results.jsonl";
    for (auto& entry : ReadFinishedCells(log)) {
      salvaged[entry.first] = std::move(entry.second);
    }
  }

  const std::vector<PlanCell>& cells = plan.shards[shard];
  std::atomic<bool> lease_lost{false};
  std::atomic<std::uint64_t> cells_done{0};

  // Heartbeat thread: renews the lease and republishes this worker's health
  // snapshot. A heartbeat failure (I/O error or an injected shard.heartbeat
  // fault) marks the lease lost; the cell loop aborts the shard at the next
  // cell boundary and another epoch finishes the work.
  std::mutex hb_mu;
  std::condition_variable hb_cv;
  bool hb_stop = false;
  std::thread heartbeat([&] {
    std::unique_lock<std::mutex> lock(hb_mu);
    while (!hb_stop) {
      hb_cv.wait_for(lock, std::chrono::milliseconds(heartbeat_ms),
                     [&] { return hb_stop; });
      if (hb_stop) break;
      lock.unlock();
      bool ok = false;
      std::string hb_error;
      try {
        ok = lease->AppendHeartbeat(&hb_error);
      } catch (const fault::FaultInjected& e) {
        hb_error = e.what();
      }
      if (!ok) {
        lease_lost.store(true, std::memory_order_relaxed);
        Bump("tsdist.shard.lease_lost");
        TSDIST_LOG(obs::LogLevel::kWarn, "shard lease lost",
                   obs::F("shard", static_cast<std::uint64_t>(shard)),
                   obs::F("epoch", static_cast<std::uint64_t>(epoch)),
                   obs::F("error", hb_error));
        lock.lock();
        break;
      }
      Bump("tsdist.shard.heartbeats");
      obs::TraceRecorder::Global().Instant(
          "shard.heartbeat", "shard",
          {{"shard", std::to_string(shard), false},
           {"epoch", std::to_string(epoch), false}});
      WorkerHealth health;
      health.worker = options.worker_id;
      health.pid = OwnPid();
      health.phase = "eval";
      health.shard = static_cast<long>(shard);
      health.epoch = epoch;
      health.cells_done = cells_done.load(std::memory_order_relaxed);
      health.cells_total = cells.size();
      health.spans_spooled = obs::TraceSpool::Global().status().spans_spooled;
      health.wall_ms = WallMs();
      WriteWorkerHealth(options.checkpoint_dir, health);
      lock.lock();
    }
  });
  const auto stop_heartbeat = [&] {
    {
      const std::lock_guard<std::mutex> lock(hb_mu);
      hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
  };

  const std::string log_path = epoch_dir + "/results.jsonl";
  std::size_t ok = 0, failed = 0, dnf = 0, salvage_count = 0;
  for (const PlanCell& cell : cells) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      stop_heartbeat();
      std::string release_error;
      lease->AppendRelease(&release_error);
      stats->interrupted = true;
      return ShardRun::kInterrupted;
    }
    if (lease_lost.load(std::memory_order_relaxed)) {
      stop_heartbeat();
      lease->Close();
      return ShardRun::kLost;
    }
    const std::string& dataset_name = datasets[cell.dataset].name();
    const std::string& measure_name = plan.measures[cell.measure];
    const std::string key = CellKey(dataset_name, measure_name);
    const auto it = salvaged.find(key);
    CellOutcome out;
    if (it != salvaged.end()) {
      // Re-rendering the salvaged cell through the shared formatter
      // reproduces the prior epoch's bytes exactly (%.17g round-trip), so
      // this epoch's log is self-contained — merge reads one epoch only.
      out = it->second;
      ++salvage_count;
      ++stats->cells_salvaged;
      Bump("tsdist.shard.cells_salvaged");
      obs::TraceRecorder::Global().Instant(
          "shard.salvage", "shard",
          {{"dataset", dataset_name}, {"measure", measure_name},
           {"shard", std::to_string(shard), false}});
    } else {
      obs::HealthState::Global().SetCurrentCell(dataset_name + "/" +
                                               measure_name);
      // The cell span is what trace_merge attributes busy time and
      // stragglers to; it covers the selftest sleep so smoke-scale sweeps
      // have honest per-cell durations.
      obs::TraceSpan cell_span(
          "shard.cell/" + dataset_name + "/" + measure_name, "shard");
      cell_span.Arg("dataset", dataset_name);
      cell_span.Arg("measure", measure_name);
      cell_span.Arg("shard", static_cast<std::uint64_t>(shard));
      cell_span.Arg("epoch", static_cast<std::uint64_t>(epoch));
      out = ComputeCell(plan, datasets, engine, cell, epoch_dir,
                        options.cancel);
      cell_span.Arg("ok", out.status == EvalStatus::kOk);
      if (out.status == EvalStatus::kInterrupted) {
        stop_heartbeat();
        std::string release_error;
        lease->AppendRelease(&release_error);
        stats->interrupted = true;
        return ShardRun::kInterrupted;
      }
      ++stats->cells_computed;
      Bump("tsdist.shard.cells_computed");
      if (options.selftest_cell_sleep_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.selftest_cell_sleep_ms));
      }
    }
    switch (out.status) {
      case EvalStatus::kOk: ++ok; break;
      case EvalStatus::kFailed: ++failed; ++stats->cells_failed; break;
      case EvalStatus::kDnf: ++dnf; ++stats->cells_dnf; break;
      case EvalStatus::kInterrupted: break;  // handled above
    }
    // Same persistence rule as the single-process driver: only terminal
    // ok/failed cells are logged; a DNF cell is retryable and must not
    // poison the merged log.
    if (out.status == EvalStatus::kOk || out.status == EvalStatus::kFailed) {
      AppendJsonLogLine(log_path, CellLogLine(out));
    }
    cells_done.fetch_add(1, std::memory_order_relaxed);
  }

  stop_heartbeat();
  if (lease_lost.load(std::memory_order_relaxed)) {
    lease->Close();
    return ShardRun::kLost;
  }

  // Every cell is terminal: publish the DONE marker, then release. The
  // marker is written atomically *before* the release so a reader that sees
  // a released lease with no DONE knows the shard genuinely needs another
  // epoch (interrupt), while DONE-then-crash just leaves an unreleased
  // stale lease on a finished shard — which the scan treats as done.
  std::ostringstream os;
  os << "{\"schema\": \"" << kDoneSchema << "\", \"shard\": " << shard
     << ", \"epoch\": " << epoch << ", \"worker\": \""
     << JsonEscape(options.worker_id) << "\", \"cells\": " << cells.size()
     << ", \"ok\": " << ok << ", \"failed\": " << failed
     << ", \"dnf\": " << dnf << ", \"salvaged\": " << salvage_count << "}\n";
  std::string write_error;
  if (!AtomicWriteFile(epoch_dir + "/DONE", os.str(), &write_error)) {
    *error = "cannot write DONE marker for shard " + std::to_string(shard) +
             ": " + write_error;
    return ShardRun::kError;
  }
  std::string release_error;
  lease->AppendRelease(&release_error);
  ++stats->shards_done;
  Bump("tsdist.shard.shards_done");
  TSDIST_LOG(obs::LogLevel::kInfo, "shard done",
             obs::F("shard", static_cast<std::uint64_t>(shard)),
             obs::F("epoch", static_cast<std::uint64_t>(epoch)),
             obs::F("ok", static_cast<std::uint64_t>(ok)),
             obs::F("failed", static_cast<std::uint64_t>(failed)),
             obs::F("dnf", static_cast<std::uint64_t>(dnf)),
             obs::F("salvaged", static_cast<std::uint64_t>(salvage_count)));
  return ShardRun::kDone;
}

}  // namespace

std::string QuarantinePath(const std::string& shard_dir) {
  return shard_dir + "/QUARANTINE";
}

bool ShardDone(const std::string& shard_dir, std::uint32_t* done_epoch) {
  std::uint32_t best = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(shard_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_directory(ec)) continue;
    const std::string name = it->path().filename().string();
    if (name.size() < 2 || name[0] != 'e' ||
        name.find_first_not_of("0123456789", 1) != std::string::npos) {
      continue;
    }
    if (!std::filesystem::exists(it->path() / "DONE")) continue;
    const unsigned long epoch = std::strtoul(name.c_str() + 1, nullptr, 10);
    if (epoch > best) best = static_cast<std::uint32_t>(epoch);
  }
  if (best == 0) return false;
  if (done_epoch != nullptr) *done_epoch = best;
  return true;
}

bool RunShardWorker(const ShardPlan& plan,
                    const std::vector<Dataset>& datasets,
                    const PairwiseEngine& engine, const WorkerOptions& options,
                    WorkerStats* stats, std::string* error) {
  const std::uint64_t ttl_ms =
      static_cast<std::uint64_t>(plan.lease_ttl_sec * 1000.0);
  const std::uint64_t heartbeat_ms =
      options.heartbeat_sec > 0.0
          ? static_cast<std::uint64_t>(options.heartbeat_sec * 1000.0)
          : std::max<std::uint64_t>(50, ttl_ms / 3);
  const std::uint64_t steal_ms =
      options.steal_after_sec > 0.0
          ? static_cast<std::uint64_t>(options.steal_after_sec * 1000.0)
          : 4 * ttl_ms;

  const auto publish_health = [&](const char* phase) {
    WorkerHealth health;
    health.worker = options.worker_id;
    health.pid = OwnPid();
    health.phase = phase;
    health.spans_spooled = obs::TraceSpool::Global().status().spans_spooled;
    health.wall_ms = WallMs();
    WriteWorkerHealth(options.checkpoint_dir, health);
    obs::HealthState::Global().SetFleetJson(AggregateFleetHealth(
        options.checkpoint_dir, WallMs(), plan.lease_ttl_sec));
  };

  obs::HealthState::Global().SetPhase("eval");
  while (true) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      stats->interrupted = true;
      break;
    }
    publish_health("scan");

    const std::uint64_t now_ms = WallMs();
    std::vector<ShardView> views(plan.shards.size());
    bool all_terminal = true;
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
      views[s] = ClassifyShard(ShardDirPath(options.checkpoint_dir, s),
                               now_ms, ttl_ms, steal_ms);
      if (views[s].cls != ShardClass::kDone &&
          views[s].cls != ShardClass::kQuarantined) {
        all_terminal = false;
      }
    }
    if (all_terminal) break;

    // Claim pass: fresh/reclaimable shards first, straggler steals only
    // when nothing else is available (stealing is speculative duplicate
    // work — correct, but a last resort).
    bool ran = false;
    for (const ShardClass want :
         {ShardClass::kClaimable, ShardClass::kStealable}) {
      for (std::size_t s = 0; s < views.size() && !ran; ++s) {
        if (views[s].cls != want) continue;
        const std::string shard_dir =
            ShardDirPath(options.checkpoint_dir, s);
        if (views[s].claim_epoch > plan.retry_max) {
          WriteQuarantine(shard_dir, s, plan.retry_max, options.worker_id);
          ++stats->shards_quarantined;
          Bump("tsdist.shard.quarantined");
          obs::TraceRecorder::Global().Instant(
              "shard.quarantine", "shard",
              {{"shard", std::to_string(s), false},
               {"epochs_tried", std::to_string(plan.retry_max), false}});
          TSDIST_LOG(obs::LogLevel::kError, "shard quarantined",
                     obs::F("shard", static_cast<std::uint64_t>(s)),
                     obs::F("epochs_tried",
                            static_cast<std::uint64_t>(plan.retry_max)));
          continue;
        }
        LeaseHandle lease;
        std::string acquire_error;
        const LeaseAcquire acquired =
            TryAcquireLease(shard_dir, views[s].claim_epoch,
                            options.worker_id, &lease, &acquire_error);
        if (acquired == LeaseAcquire::kConflict) {
          Bump("tsdist.shard.conflicts");
          obs::TraceRecorder::Global().Instant(
              "shard.conflict", "shard",
              {{"shard", std::to_string(s), false},
               {"epoch", std::to_string(views[s].claim_epoch), false}});
          continue;  // another worker won this epoch; move on
        }
        if (acquired == LeaseAcquire::kError) {
          *error = acquire_error;
          return false;
        }
        Bump("tsdist.shard.claims");
        obs::TraceRecorder::Global().Instant(
            "shard.claim", "shard",
            {{"shard", std::to_string(s), false},
             {"epoch", std::to_string(views[s].claim_epoch), false},
             {"stolen", want == ShardClass::kStealable ? "true" : "false",
              false},
             {"reclaimed", views[s].reclaim ? "true" : "false", false}});
        if (want == ShardClass::kStealable) {
          ++stats->shards_stolen;
          Bump("tsdist.shard.steals");
          obs::TraceRecorder::Global().Instant(
              "shard.steal", "shard",
              {{"shard", std::to_string(s), false},
               {"epoch", std::to_string(views[s].claim_epoch), false}});
        } else if (views[s].reclaim) {
          ++stats->shards_reclaimed;
          Bump("tsdist.shard.reclaims");
          obs::TraceRecorder::Global().Instant(
              "shard.reclaim", "shard",
              {{"shard", std::to_string(s), false},
               {"epoch", std::to_string(views[s].claim_epoch), false}});
        }
        TSDIST_LOG(obs::LogLevel::kInfo, "shard claimed",
                   obs::F("shard", static_cast<std::uint64_t>(s)),
                   obs::F("epoch",
                          static_cast<std::uint64_t>(views[s].claim_epoch)),
                   obs::F("stolen", want == ShardClass::kStealable),
                   obs::F("reclaimed", views[s].reclaim));
        const ShardRun run =
            RunShard(plan, datasets, engine, options, s, &lease,
                     heartbeat_ms, stats, error);
        if (run == ShardRun::kError) return false;
        if (run == ShardRun::kInterrupted) {
          publish_health("done");
          return true;
        }
        ran = true;  // kDone or kLost: rescan either way
      }
      if (ran) break;
    }
    if (ran) continue;

    // Nothing claimable: other workers hold every remaining shard. Wait a
    // beat (bounded, so a newly-stale lease is noticed promptly) and rescan.
    publish_health("idle");
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min<std::uint64_t>(heartbeat_ms, 200)));
  }

  publish_health("done");
  obs::HealthState::Global().SetCurrentCell("");
  return true;
}

}  // namespace tsdist::shard
