#include "src/shard/cell_log.h"

#include <cstdio>

#include "src/obs/json.h"
#include "src/resilience/checkpoint.h"

namespace tsdist::shard {

std::string CellKey(const std::string& dataset, const std::string& measure) {
  return dataset + "\x1f" + measure;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string FormatG17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string CellLogLine(const CellOutcome& cell) {
  return "{\"schema\": \"tsdist.cell.v1\", \"dataset\": \"" +
         JsonEscape(cell.dataset) + "\", \"measure\": \"" +
         JsonEscape(cell.measure) + "\", \"params\": \"" +
         JsonEscape(cell.params) + "\", \"status\": \"" +
         ToString(cell.status) + "\", \"reason\": \"" +
         JsonEscape(cell.reason) + "\", \"train_accuracy\": " +
         FormatG17(cell.train_accuracy) + ", \"test_accuracy\": " +
         FormatG17(cell.test_accuracy) + "}";
}

bool ParseCellLogLine(const std::string& line, CellOutcome* cell) {
  try {
    const obs::JsonValue v = obs::ParseJson(line);
    if (v.GetString("schema", "") != "tsdist.cell.v1") return false;
    cell->dataset = v.GetString("dataset", "");
    cell->measure = v.GetString("measure", "");
    if (cell->dataset.empty() || cell->measure.empty()) return false;
    cell->params = v.GetString("params", "");
    const std::string status = v.GetString("status", "");
    if (status == "ok") {
      cell->status = EvalStatus::kOk;
    } else if (status == "failed") {
      cell->status = EvalStatus::kFailed;
    } else if (status == "dnf") {
      cell->status = EvalStatus::kDnf;
    } else if (status == "interrupted") {
      cell->status = EvalStatus::kInterrupted;
    } else {
      return false;
    }
    cell->reason = v.GetString("reason", "");
    cell->train_accuracy = v.GetDouble("train_accuracy", 0.0);
    cell->test_accuracy = v.GetDouble("test_accuracy", 0.0);
    cell->resumed = false;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

namespace {

std::map<std::string, CellOutcome> CellsFromLines(
    const std::vector<std::string>& lines) {
  std::map<std::string, CellOutcome> finished;
  for (const std::string& line : lines) {
    CellOutcome cell;
    if (!ParseCellLogLine(line, &cell)) continue;
    if (cell.status != EvalStatus::kOk) continue;
    cell.resumed = true;
    finished[CellKey(cell.dataset, cell.measure)] = cell;
  }
  return finished;
}

}  // namespace

std::map<std::string, CellOutcome> LoadFinishedCells(const std::string& path) {
  return CellsFromLines(LoadJsonLog(path));
}

std::map<std::string, CellOutcome> ReadFinishedCells(const std::string& path) {
  return CellsFromLines(ReadJsonLogPrefix(path));
}

}  // namespace tsdist::shard
