#include "src/shard/merge.h"

#include <filesystem>
#include <map>

#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/obs/trace.h"
#include "src/resilience/checkpoint.h"
#include "src/resilience/fault.h"
#include "src/shard/lease.h"
#include "src/shard/worker.h"

namespace tsdist::shard {

namespace {

void Bump(const char* name, std::uint64_t n = 1) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetCounter(name).Add(n);
  }
}

}  // namespace

bool MergeShards(const std::string& checkpoint_dir, const ShardPlan& plan,
                 MergeReport* report, std::string* error) {
  *report = MergeReport{};
  report->shards = plan.shards.size();
  obs::TraceSpan merge_span("shard.merge", "shard");
  merge_span.Arg("shards", static_cast<std::uint64_t>(plan.shards.size()));

  // Canonical index -> (raw line, parsed outcome). The raw line is reused
  // verbatim so the merged bytes are exactly the worker's bytes (which are
  // exactly the single-process driver's bytes, by the shared formatter).
  std::map<std::size_t, std::pair<std::string, CellOutcome>> merged;

  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    const std::string shard_dir = ShardDirPath(checkpoint_dir, s);
    if (std::filesystem::exists(QuarantinePath(shard_dir))) {
      *error = "shard " + std::to_string(s) +
               " is quarantined (exhausted its retry budget) — inspect " +
               QuarantinePath(shard_dir) + ", fix the cause, remove the "
               "marker, and rerun workers before merging";
      return false;
    }
    std::uint32_t done_epoch = 0;
    if (!ShardDone(shard_dir, &done_epoch)) {
      *error = "shard " + std::to_string(s) +
               " has no finished epoch — workers are still running (or all "
               "died); rerun workers, then merge";
      return false;
    }
    const std::string epoch_dir =
        shard_dir + "/" + EpochDirName(done_epoch);

    std::size_t done_ok = 0, done_failed = 0, done_dnf = 0;
    try {
      const obs::JsonValue done = obs::ParseJsonFile(epoch_dir + "/DONE");
      if (done.GetString("schema", "") != kDoneSchema) {
        *error = "shard " + std::to_string(s) + " DONE marker has wrong "
                 "schema";
        return false;
      }
      done_ok = static_cast<std::size_t>(done.GetDouble("ok", 0));
      done_failed = static_cast<std::size_t>(done.GetDouble("failed", 0));
      done_dnf = static_cast<std::size_t>(done.GetDouble("dnf", 0));
    } catch (const std::exception& e) {
      *error = "shard " + std::to_string(s) + " DONE marker unreadable: " +
               e.what();
      return false;
    }
    report->ok += done_ok;
    report->failed += done_failed;
    report->dnf += done_dnf;

    std::size_t shard_lines = 0;
    for (const std::string& line :
         ReadJsonLogPrefix(epoch_dir + "/results.jsonl")) {
      CellOutcome cell;
      if (!ParseCellLogLine(line, &cell)) {
        *error = "shard " + std::to_string(s) + " epoch " +
                 std::to_string(done_epoch) +
                 " has a malformed cell line in results.jsonl";
        return false;
      }
      // Map the (dataset, measure) names back to canonical indices via the
      // manifest — the log itself carries names, not indices.
      std::size_t di = plan.datasets.size();
      for (std::size_t i = 0; i < plan.datasets.size(); ++i) {
        if (plan.datasets[i].name == cell.dataset) { di = i; break; }
      }
      std::size_t mj = plan.measures.size();
      for (std::size_t j = 0; j < plan.measures.size(); ++j) {
        if (plan.measures[j] == cell.measure) { mj = j; break; }
      }
      if (di == plan.datasets.size() || mj == plan.measures.size()) {
        *error = "shard " + std::to_string(s) + " logged cell '" +
                 cell.dataset + "/" + cell.measure +
                 "' that is not in the manifest";
        return false;
      }
      const std::size_t index = di * plan.measures.size() + mj;
      const auto it = merged.find(index);
      if (it != merged.end()) {
        if (it->second.first != line) {
          *error = "cell '" + cell.dataset + "/" + cell.measure +
                   "' was merged twice with different bytes — shard state "
                   "is inconsistent (mixed sweeps in one directory?)";
          return false;
        }
        continue;  // bit-identical duplicate (stolen shard); keep one
      }
      merged.emplace(index, std::make_pair(line, std::move(cell)));
      ++shard_lines;
    }
    if (shard_lines != done_ok + done_failed) {
      *error = "shard " + std::to_string(s) + " epoch " +
               std::to_string(done_epoch) + " log has " +
               std::to_string(shard_lines) + " cells but its DONE marker "
               "promises " + std::to_string(done_ok + done_failed) +
               " — torn or foreign log";
      return false;
    }
  }

  // All inputs read and validated. The fault site sits exactly at the
  // read/write boundary: an injected shard.merge fault aborts with every
  // shard input untouched, and a rerun merges cleanly.
  fault::Hit(fault::sites::kShardMerge);

  std::string payload;
  report->cells.reserve(merged.size());
  for (auto& entry : merged) {
    payload += entry.second.first;
    payload += '\n';
    report->cells.push_back(std::move(entry.second.second));
  }
  report->lines = merged.size();
  if (!AtomicWriteFile(checkpoint_dir + "/results.jsonl", payload, error)) {
    return false;
  }
  Bump("tsdist.shard.merges");
  Bump("tsdist.shard.merged_cells", report->lines);
  merge_span.Arg("lines", static_cast<std::uint64_t>(report->lines));
  return true;
}

}  // namespace tsdist::shard
