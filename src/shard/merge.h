// Bit-identical merge of per-shard result logs.
//
// Each finished shard has exactly one DONE epoch whose results.jsonl holds
// the shard's terminal ok/failed cells, rendered by the shared
// tsdist.cell.v1 formatter. Because every cell is a pure computation over
// fingerprint-checked inputs, those lines are byte-for-byte what a
// single-process sweep would have appended — the merge step therefore only
// *reorders*: it maps every line to its canonical sweep index
// (dataset-major, then measure, from the manifest) and writes the
// checkpoint root's results.jsonl in that order, atomically.
//
// The merged file is indistinguishable from a single-process run's resume
// log, which buys two properties for free: the smoke test's memcmp against
// a single-process baseline, and the ability to point a plain
// `--checkpoint-dir` run at the merged directory and have it resume every
// merged cell.
//
// Merge is read-only over shard state (a fault or crash mid-merge corrupts
// nothing; rerun it) and refuses to run while any shard is incomplete or
// quarantined — partial merges would silently drop cells.

#ifndef TSDIST_SHARD_MERGE_H_
#define TSDIST_SHARD_MERGE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/shard/cell_log.h"
#include "src/shard/manifest.h"

namespace tsdist::shard {

struct MergeReport {
  std::size_t shards = 0;
  std::size_t lines = 0;        ///< cell lines written to the merged log
  std::size_t ok = 0;           ///< from the shards' DONE markers
  std::size_t failed = 0;
  std::size_t dnf = 0;          ///< terminal-but-unlogged cells (absent lines)
  /// Parsed outcome of every merged line, in canonical order — for report
  /// generation (tsdist.results.v1) without re-reading the merged file.
  std::vector<CellOutcome> cells;
};

/// Merges every shard's DONE-epoch log into `<checkpoint_dir>/results.jsonl`.
/// Fails (false + `error`, inputs untouched) when any shard lacks a DONE
/// epoch, is quarantined, or has an inconsistent log. Hits the `shard.merge`
/// fault site after reading inputs and before writing the merged file.
bool MergeShards(const std::string& checkpoint_dir, const ShardPlan& plan,
                 MergeReport* report, std::string* error);

}  // namespace tsdist::shard

#endif  // TSDIST_SHARD_MERGE_H_
