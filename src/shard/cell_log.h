// Shared wire format for sweep-cell result logs (`tsdist.cell.v1`).
//
// One (dataset, measure) evaluation cell serializes to exactly one JSON
// line. The single-process driver appends these lines to the checkpoint's
// results.jsonl as cells finish; shard workers append the same lines to
// their per-epoch shard logs; the merge step reorders worker lines into the
// canonical sweep order. Byte-identity of a merged sweep against a
// single-process run rests on every writer using this one formatter: the
// %.17g accuracy round-trip plus a fixed field order make the line a pure
// function of the cell outcome, which is itself bit-identical across
// processes (each cell is a pure computation over fingerprint-checked
// inputs).

#ifndef TSDIST_SHARD_CELL_LOG_H_
#define TSDIST_SHARD_CELL_LOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/classify/tuning.h"

namespace tsdist::shard {

/// One evaluated (dataset, measure) cell of the sweep.
struct CellOutcome {
  std::string dataset;
  std::string measure;
  std::string params;  ///< rendered ParamMap of the evaluated instance
  EvalStatus status = EvalStatus::kOk;
  std::string reason;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
  bool resumed = false;  ///< restored from a results log, not recomputed
};

/// Map key for a cell: dataset and measure joined on a separator that can
/// appear in neither.
std::string CellKey(const std::string& dataset, const std::string& measure);

/// JSON escaping for the minimal set the cell log needs (quotes, backslash;
/// control bytes become spaces).
std::string JsonEscape(const std::string& s);

/// %.17g: round-trips a double exactly through strtod, so resumed and
/// merged cells report bit-identical accuracies.
std::string FormatG17(double v);

/// Serializes one finished cell as its tsdist.cell.v1 JSON line (no
/// trailing newline).
std::string CellLogLine(const CellOutcome& cell);

/// Parses one tsdist.cell.v1 line. Returns false when the line is not a
/// cell record (wrong schema, missing dataset/measure).
bool ParseCellLogLine(const std::string& line, CellOutcome* cell);

/// Loads finished cells from a results log, truncating any torn tail (the
/// caller owns the file). Only status "ok" cells are returned: failed cells
/// are retried on resume, DNF cells get another chance at the budget.
std::map<std::string, CellOutcome> LoadFinishedCells(const std::string& path);

/// Read-only variant of LoadFinishedCells for logs another process may
/// still own (e.g. a fenced zombie's epoch log): reads the valid prefix,
/// never truncates.
std::map<std::string, CellOutcome> ReadFinishedCells(const std::string& path);

}  // namespace tsdist::shard

#endif  // TSDIST_SHARD_CELL_LOG_H_
