#include "src/shard/fleet.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/obs/json.h"
#include "src/resilience/checkpoint.h"
#include "src/shard/cell_log.h"

namespace tsdist::shard {

std::string WorkerHealthToJson(const WorkerHealth& health) {
  std::ostringstream os;
  os << "{\"schema\": \"" << kWorkerHealthSchema << "\", \"worker\": \""
     << JsonEscape(health.worker) << "\", \"pid\": " << health.pid
     << ", \"phase\": \"" << JsonEscape(health.phase)
     << "\", \"shard\": " << health.shard << ", \"epoch\": " << health.epoch
     << ", \"cells\": {\"done\": " << health.cells_done
     << ", \"total\": " << health.cells_total
     << "}, \"spans_spooled\": " << health.spans_spooled
     << ", \"wall_ms\": " << health.wall_ms << "}\n";
  return os.str();
}

bool WriteWorkerHealth(const std::string& checkpoint_dir,
                       const WorkerHealth& health) {
  const std::string dir = checkpoint_dir + "/health";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  std::string error;
  return AtomicWriteFile(dir + "/" + health.worker + ".json",
                         WorkerHealthToJson(health), &error);
}

std::string AggregateFleetHealth(const std::string& checkpoint_dir,
                                 std::uint64_t now_ms, double stale_sec) {
  std::vector<std::string> files;
  const std::string dir = checkpoint_dir + "/health";
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec) && it->path().extension() == ".json") {
      files.push_back(it->path().string());
    }
  }
  std::sort(files.begin(), files.end());

  std::size_t live = 0, stale = 0, spooling = 0;
  std::uint64_t spooled_spans = 0;
  std::ostringstream workers;
  bool first = true;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream content;
    content << in.rdbuf();
    WorkerHealth h;
    try {
      const obs::JsonValue v = obs::ParseJson(content.str());
      if (v.GetString("schema", "") != kWorkerHealthSchema) continue;
      h.worker = v.GetString("worker", "");
      if (h.worker.empty()) continue;
      h.pid = static_cast<std::uint32_t>(v.GetDouble("pid", 0));
      h.phase = v.GetString("phase", "");
      h.shard = static_cast<long>(v.GetDouble("shard", -1));
      h.epoch = static_cast<std::uint32_t>(v.GetDouble("epoch", 0));
      if (const obs::JsonValue* cells = v.Find("cells")) {
        h.cells_done =
            static_cast<std::uint64_t>(cells->GetDouble("done", 0));
        h.cells_total =
            static_cast<std::uint64_t>(cells->GetDouble("total", 0));
      }
      h.spans_spooled =
          static_cast<std::uint64_t>(v.GetDouble("spans_spooled", 0));
      h.wall_ms = static_cast<std::uint64_t>(v.GetDouble("wall_ms", 0));
    } catch (const std::exception&) {
      continue;  // torn or foreign file; the fleet view skips it
    }
    const double age_sec =
        now_ms > h.wall_ms ? (now_ms - h.wall_ms) / 1000.0 : 0.0;
    const bool is_stale = age_sec > stale_sec;
    if (is_stale) {
      ++stale;
    } else {
      ++live;
    }
    if (h.spans_spooled > 0) ++spooling;
    spooled_spans += h.spans_spooled;
    workers << (first ? "\n" : ",\n") << "    {\"worker\": \""
            << JsonEscape(h.worker) << "\", \"pid\": " << h.pid
            << ", \"phase\": \"" << JsonEscape(h.phase)
            << "\", \"shard\": " << h.shard << ", \"epoch\": " << h.epoch
            << ", \"cells\": {\"done\": " << h.cells_done
            << ", \"total\": " << h.cells_total
            << "}, \"spans_spooled\": " << h.spans_spooled
            << ", \"age_sec\": " << FormatG17(age_sec) << ", \"stale\": "
            << (is_stale ? "true" : "false") << "}";
    first = false;
  }

  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kFleetHealthSchema << "\",\n"
     << "  \"stale_after_sec\": " << FormatG17(stale_sec) << ",\n"
     << "  \"summary\": {\"workers\": " << (live + stale)
     << ", \"live\": " << live << ", \"stale\": " << stale << "},\n"
     << "  \"trace\": {\"spooling_workers\": " << spooling
     << ", \"spooled_spans\": " << spooled_spans << "},\n"
     << "  \"workers\": [" << workers.str() << (first ? "" : "\n  ")
     << "]\n}\n";
  return os.str();
}

}  // namespace tsdist::shard
