// Autonomous shard worker: claim, compute, heartbeat, reclaim, steal.
//
// A worker is a peer, not a subordinate — after the coordinator publishes
// the manifest, any number of workers run this loop against the shared
// checkpoint directory with no further coordination:
//
//   scan    classify every shard (done / quarantined / claimable at some
//           epoch / live / stealable straggler) from its lease files and
//           DONE markers alone;
//   claim   win `lease.e<E>` via O_EXCL (the filesystem arbitrates);
//   run     evaluate the shard's cells in canonical order into the
//           epoch-scoped directory `e<E>/`, salvaging finished cells from
//           prior epochs' logs (read-only) and appending every ok/failed
//           cell to the epoch's results.jsonl with the shared formatter;
//   mark    write the epoch's DONE marker (tsdist.sharddone.v1) and release
//           the lease.
//
// Crash tolerance falls out of the scan rules: a SIGKILLed worker stops
// heartbeating, its lease goes stale after the TTL, and the next scanning
// worker reclaims the shard at epoch E+1 — salvaging the dead epoch's
// durable cells so no finished work is recomputed. A straggler still
// heartbeating can be *stolen* the same way after `steal_after_sec`
// (speculative duplicate execution is safe: cells are pure and outputs are
// epoch-scoped, so the merge step just takes the first epoch to finish). A
// shard whose next epoch would exceed `retry_max` is quarantined instead of
// retried forever — the poison-shard brake.
//
// Counters: tsdist.shard.{claims,conflicts,reclaims,steals,shards_done,
// quarantined,cells_computed,cells_salvaged,heartbeats,lease_lost}.

#ifndef TSDIST_SHARD_WORKER_H_
#define TSDIST_SHARD_WORKER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/pairwise_engine.h"
#include "src/resilience/cancellation.h"
#include "src/shard/manifest.h"

namespace tsdist::shard {

inline constexpr const char kDoneSchema[] = "tsdist.sharddone.v1";
inline constexpr const char kQuarantineSchema[] = "tsdist.quarantine.v1";

struct WorkerOptions {
  std::string checkpoint_dir;
  std::string worker_id;          ///< unique per process (e.g. "w0")
  double heartbeat_sec = 0.0;     ///< 0 = lease_ttl / 3, floored at 50 ms
  double steal_after_sec = 0.0;   ///< 0 = 4 * lease_ttl
  std::size_t selftest_cell_sleep_ms = 0;  ///< post-cell sleep (kill window)
  const CancellationToken* cancel = nullptr;  ///< process interrupt token
};

struct WorkerStats {
  std::size_t shards_done = 0;
  std::size_t shards_reclaimed = 0;
  std::size_t shards_stolen = 0;
  std::size_t shards_quarantined = 0;  ///< quarantines written by this worker
  std::size_t cells_computed = 0;
  std::size_t cells_salvaged = 0;
  std::size_t cells_failed = 0;
  std::size_t cells_dnf = 0;
  bool interrupted = false;
};

/// Runs the worker loop until every shard is done or quarantined, the
/// process is interrupted, or an unrecoverable I/O error occurs. `datasets`
/// must already be fingerprint-validated against `plan`
/// (ValidatePlanDatasets). Returns false with `error` only on unrecoverable
/// errors; interruption returns true with stats.interrupted set.
bool RunShardWorker(const ShardPlan& plan,
                    const std::vector<Dataset>& datasets,
                    const PairwiseEngine& engine, const WorkerOptions& options,
                    WorkerStats* stats, std::string* error);

/// Path of a shard's quarantine marker.
std::string QuarantinePath(const std::string& shard_dir);

/// True when some epoch of `shard_dir` has a DONE marker; fills
/// `*done_epoch` with the highest such epoch.
bool ShardDone(const std::string& shard_dir, std::uint32_t* done_epoch);

}  // namespace tsdist::shard

#endif  // TSDIST_SHARD_WORKER_H_
