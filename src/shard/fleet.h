// Federated worker health (`tsdist.workerhealth.v1` / `tsdist.fleethealth.v1`).
//
// Every shard worker publishes a small JSON snapshot of its own state to
// `<checkpoint>/health/<worker>.json` on each heartbeat (atomic write, so a
// reader never sees a torn snapshot). Any process — another worker serving
// /healthz, an operator's shell, the merge step — can aggregate those
// snapshots into one fleet document without talking to the workers: the
// shared checkpoint directory doubles as the federation bus, which is the
// same trick the leases use and needs no extra ports or discovery.
//
// A worker whose snapshot has not been refreshed within the staleness
// window is flagged stale (crashed, wedged, or SIGSTOPped — exactly the
// population whose leases will expire next), so the fleet view predicts
// upcoming reclaims.

#ifndef TSDIST_SHARD_FLEET_H_
#define TSDIST_SHARD_FLEET_H_

#include <cstdint>
#include <string>

namespace tsdist::shard {

inline constexpr const char kWorkerHealthSchema[] = "tsdist.workerhealth.v1";
inline constexpr const char kFleetHealthSchema[] = "tsdist.fleethealth.v1";

/// One worker's self-reported state.
struct WorkerHealth {
  std::string worker;
  std::uint32_t pid = 0;
  std::string phase;            ///< "scan", "eval", "idle", "done"
  long shard = -1;              ///< shard being executed; -1 = none
  std::uint32_t epoch = 0;      ///< lease epoch of that shard; 0 = none
  std::uint64_t cells_done = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t spans_spooled = 0;  ///< spans durably spooled (0 = no spool)
  std::uint64_t wall_ms = 0;    ///< snapshot wall time (WallMs())
};

/// Renders one snapshot as its tsdist.workerhealth.v1 JSON document.
std::string WorkerHealthToJson(const WorkerHealth& health);

/// Atomically publishes `health` to `<checkpoint_dir>/health/<worker>.json`.
/// Best-effort (returns false on I/O failure); a worker keeps computing even
/// when its health snapshots cannot be written.
bool WriteWorkerHealth(const std::string& checkpoint_dir,
                       const WorkerHealth& health);

/// Reads every snapshot under `<checkpoint_dir>/health/` (sorted by worker
/// name, so output is deterministic for a fixed set of snapshots) and
/// renders the tsdist.fleethealth.v1 aggregate. `now_ms` is the reference
/// wall clock; a snapshot older than `stale_sec` is flagged stale.
/// Unparseable snapshot files are skipped. An absent directory yields an
/// empty-fleet document.
std::string AggregateFleetHealth(const std::string& checkpoint_dir,
                                 std::uint64_t now_ms, double stale_sec);

}  // namespace tsdist::shard

#endif  // TSDIST_SHARD_FLEET_H_
