#include "src/shard/lease.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "src/resilience/checkpoint.h"
#include "src/resilience/crc32.h"
#include "src/resilience/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tsdist::shard {

namespace {

constexpr std::uint32_t kLeaseMagic = 0x54534C31;  // "TSL1"
constexpr std::size_t kWorkerBytes = 28;           // zero-padded, NUL-capped

// Fixed-size on-disk record: 52 header/payload bytes + trailing CRC over
// them. Fixed size keeps the valid-prefix scan trivial (a torn append is
// any trailing fragment shorter than one record, or one failing the CRC).
// The worker field is sized so the struct is naturally packed (56 bytes, a
// multiple of the 8-byte alignment with no padding holes), making the
// in-memory layout the wire layout on every ABI this builds on.
struct WireRecord {
  std::uint32_t magic;
  std::uint32_t type;
  std::uint32_t epoch;
  std::uint32_t pid;
  std::uint64_t wall_ms;
  char worker[kWorkerBytes];
  std::uint32_t crc;
};
static_assert(sizeof(WireRecord) == 56);
static_assert(offsetof(WireRecord, crc) == 52);

WireRecord EncodeRecord(LeaseRecordType type, std::uint32_t epoch,
                        std::uint64_t wall_ms, const std::string& worker) {
  WireRecord record{};
  record.magic = kLeaseMagic;
  record.type = static_cast<std::uint32_t>(type);
  record.epoch = epoch;
#if defined(__unix__) || defined(__APPLE__)
  record.pid = static_cast<std::uint32_t>(::getpid());
#endif
  record.wall_ms = wall_ms;
  std::memset(record.worker, 0, kWorkerBytes);
  std::memcpy(record.worker, worker.data(),
              std::min(worker.size(), kWorkerBytes - 1));
  record.crc = Crc32(&record, sizeof(WireRecord) - sizeof(std::uint32_t));
  return record;
}

#if defined(__unix__) || defined(__APPLE__)
bool WriteRecordFd(int fd, const WireRecord& record, std::string* error) {
  const char* bytes = reinterpret_cast<const char*>(&record);
  std::size_t written = 0;
  while (written < sizeof(WireRecord)) {
    const ssize_t n =
        ::write(fd, bytes + written, sizeof(WireRecord) - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("lease write failed: ") + std::strerror(errno);
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    if (error != nullptr) {
      *error = std::string("lease fsync failed: ") + std::strerror(errno);
    }
    return false;
  }
  return true;
}
#endif

}  // namespace

std::uint64_t WallMs() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

std::string LeaseFileName(std::uint32_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "lease.e%06u", epoch);
  return buf;
}

std::string EpochDirName(std::uint32_t epoch) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "e%06u", epoch);
  return buf;
}

std::uint64_t FileMtimeMs(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) return 0;
  // file_clock -> system_clock via the C++20 clock_cast would be exact;
  // duration arithmetic against the epoch difference is the portable
  // pre-cast form and exact enough for a TTL measured in seconds.
  const auto sys = std::chrono::file_clock::to_sys(mtime).time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(sys);
  return ms.count() > 0 ? static_cast<std::uint64_t>(ms.count()) : 0;
}

LeaseHandle::~LeaseHandle() { Close(); }

LeaseHandle::LeaseHandle(LeaseHandle&& other) noexcept
    : fd_(other.fd_), epoch_(other.epoch_), path_(std::move(other.path_)),
      worker_(std::move(other.worker_)) {
  other.fd_ = -1;
}

LeaseHandle& LeaseHandle::operator=(LeaseHandle&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    epoch_ = other.epoch_;
    path_ = std::move(other.path_);
    worker_ = std::move(other.worker_);
    other.fd_ = -1;
  }
  return *this;
}

void LeaseHandle::Close() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

bool LeaseHandle::AppendHeartbeat(std::string* error) {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ < 0) {
    if (error != nullptr) *error = "lease not held";
    return false;
  }
  fault::Hit(fault::sites::kShardHeartbeat);
  return WriteRecordFd(
      fd_, EncodeRecord(LeaseRecordType::kHeartbeat, epoch_, WallMs(), worker_),
      error);
#else
  (void)error;
  return false;
#endif
}

bool LeaseHandle::AppendRelease(std::string* error) {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ < 0) {
    if (error != nullptr) *error = "lease not held";
    return false;
  }
  const bool ok = WriteRecordFd(
      fd_, EncodeRecord(LeaseRecordType::kRelease, epoch_, WallMs(), worker_),
      error);
  Close();
  return ok;
#else
  (void)error;
  return false;
#endif
}

// Out-of-class worker so LeaseHandle can befriend one named function.
LeaseAcquire TryAcquireLeaseImpl(const std::string& shard_dir,
                                 std::uint32_t epoch,
                                 const std::string& worker,
                                 LeaseHandle* handle, std::string* error) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string path = shard_dir + "/" + LeaseFileName(epoch);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_APPEND,
                        0644);
  if (fd < 0) {
    if (errno == EEXIST) return LeaseAcquire::kConflict;
    if (error != nullptr) {
      *error = "cannot create " + path + ": " + std::strerror(errno);
    }
    return LeaseAcquire::kError;
  }
  if (!WriteRecordFd(
          fd, EncodeRecord(LeaseRecordType::kClaim, epoch, WallMs(), worker),
          error)) {
    ::close(fd);
    return LeaseAcquire::kError;
  }
  handle->fd_ = fd;
  handle->epoch_ = epoch;
  handle->path_ = path;
  handle->worker_ = worker;
  // The O_EXCL creation is the arbitration point, so the directory entry
  // must survive a crash: without this, a power loss could let a second
  // worker "win" an epoch a first worker already produced output under.
  SyncParentDirectory(path);
  return LeaseAcquire::kAcquired;
#else
  (void)shard_dir;
  (void)epoch;
  (void)worker;
  (void)handle;
  if (error != nullptr) *error = "shard leases require a POSIX filesystem";
  return LeaseAcquire::kError;
#endif
}

LeaseAcquire TryAcquireLease(const std::string& shard_dir, std::uint32_t epoch,
                             const std::string& worker, LeaseHandle* handle,
                             std::string* error) {
  // The fault site fires before any filesystem effect, so an injected
  // `shard.lease_acquire:<n>:exit` models a worker dying at the claim
  // boundary — the next worker must find the shard claimable.
  fault::Hit(fault::sites::kShardLeaseAcquire);
  return TryAcquireLeaseImpl(shard_dir, epoch, worker, handle, error);
}

bool ReadLease(const std::string& path, LeaseInfo* info) {
  *info = LeaseInfo{};
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  info->exists = true;

  std::vector<char> content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    content.insert(content.end(), buf, buf + n);
  }
  std::fclose(file);

  std::size_t pos = 0;
  while (pos + sizeof(WireRecord) <= content.size()) {
    WireRecord record{};
    std::memcpy(&record, content.data() + pos, sizeof(WireRecord));
    if (record.magic != kLeaseMagic ||
        record.crc !=
            Crc32(&record, sizeof(WireRecord) - sizeof(std::uint32_t)) ||
        record.type < static_cast<std::uint32_t>(LeaseRecordType::kClaim) ||
        record.type > static_cast<std::uint32_t>(LeaseRecordType::kRelease)) {
      break;
    }
    if (info->valid_records == 0) {
      // First record carries the claim identity; a non-claim first record
      // means the file is not a lease we understand — stop.
      if (record.type != static_cast<std::uint32_t>(LeaseRecordType::kClaim)) {
        break;
      }
      info->epoch = record.epoch;
      info->pid = record.pid;
      info->claim_wall_ms = record.wall_ms;
      char worker[kWorkerBytes];
      std::memcpy(worker, record.worker, kWorkerBytes);
      worker[kWorkerBytes - 1] = '\0';
      info->worker = worker;
    }
    info->last_wall_ms = record.wall_ms;
    if (record.type == static_cast<std::uint32_t>(LeaseRecordType::kRelease)) {
      info->released = true;
    }
    ++info->valid_records;
    pos += sizeof(WireRecord);
  }
  info->torn_bytes = content.size() - pos;
  return true;
}

}  // namespace tsdist::shard
