// Shard plan manifest (`tsdist.shardplan.v1`).
//
// The coordinator partitions the sweep's (dataset x measure) cell grid into
// M shards and publishes the partition — together with everything that
// pins the sweep's identity (measure list and order, dataset names and
// fingerprints, normalization, supervision, budget, tile size) — as one
// atomically-written JSON manifest in the shared checkpoint directory.
// Workers refuse to run against a manifest whose identity fields do not
// match their own command line and data (bit-identity cannot be promised
// across different grids), and the merge step reconstructs the canonical
// sweep order from the same manifest, so every process derives the cell
// ordering from one durable source of truth.
//
// Cells are partitioned round-robin by canonical cell index
// (i * |measures| + j): neighboring cells of one dataset land on different
// shards, which balances elastic-measure-heavy cells across workers better
// than contiguous blocks would.

#ifndef TSDIST_SHARD_MANIFEST_H_
#define TSDIST_SHARD_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/dataset.h"

namespace tsdist::shard {

inline constexpr const char kPlanSchema[] = "tsdist.shardplan.v1";

/// One cell of the sweep grid, as indices into the plan's dataset and
/// measure lists.
struct PlanCell {
  std::size_t dataset = 0;
  std::size_t measure = 0;
};

/// Identity of one dataset in the plan: name plus split fingerprints, so a
/// worker pointing at a different archive (or a different seed) is rejected
/// instead of silently merging incompatible results.
struct PlanDataset {
  std::string name;
  std::uint64_t train_fp = 0;
  std::uint64_t test_fp = 0;
};

/// The whole partition plus the sweep identity it was built for.
struct ShardPlan {
  bool supervised = false;
  bool pruned = false;
  std::string norm = "zscore";
  std::string scale;            ///< archive scale name, or "ucr"
  double budget_sec = 0.0;
  std::size_t tile_rows = 32;
  double lease_ttl_sec = 10.0;
  std::uint32_t retry_max = 5;
  std::vector<std::string> measures;
  std::vector<PlanDataset> datasets;
  std::vector<std::vector<PlanCell>> shards;

  std::size_t total_cells() const {
    return datasets.size() * measures.size();
  }
};

/// Canonical sweep-order index of a cell (dataset-major, then measure).
inline std::size_t CellIndex(const ShardPlan& plan, const PlanCell& cell) {
  return cell.dataset * plan.measures.size() + cell.measure;
}

/// Partitions the full grid over `num_shards` shards round-robin by cell
/// index. `plan` must already carry the identity fields and the dataset /
/// measure lists; shards are filled in. Within each shard, cells stay in
/// canonical sweep order.
void PartitionCells(ShardPlan* plan, std::size_t num_shards);

/// Renders the plan as its tsdist.shardplan.v1 JSON document. Deterministic
/// (field order fixed, %.17g numbers), so re-running the coordinator over
/// an unchanged configuration reproduces the manifest byte for byte —
/// which is what makes coordinator restarts idempotent.
std::string PlanToJson(const ShardPlan& plan);

/// Parses a manifest document. Returns false with `error` on a malformed or
/// wrong-schema document.
bool PlanFromJson(const std::string& text, ShardPlan* plan,
                  std::string* error);

/// Manifest path inside a checkpoint directory.
std::string PlanPath(const std::string& checkpoint_dir);

/// Shard subdirectory ("shards/s%04zu") under the checkpoint directory.
std::string ShardDirPath(const std::string& checkpoint_dir, std::size_t id);

/// Publishes the plan into `checkpoint_dir` (atomic write + directory
/// fsync) and pre-creates the shard directories. Idempotent: when a
/// manifest already exists it must match byte for byte; a mismatch returns
/// false with `error` (the operator mixed incompatible sweeps into one
/// directory), leaving the existing manifest untouched.
bool WriteShardPlan(const std::string& checkpoint_dir, const ShardPlan& plan,
                    std::string* error);

/// Loads the manifest from `checkpoint_dir`. Returns false with `error`
/// when absent or malformed.
bool LoadShardPlan(const std::string& checkpoint_dir, ShardPlan* plan,
                   std::string* error);

/// Validates that `datasets` (as loaded by this process) match the plan's
/// dataset names and fingerprints, in order. Returns false with `error`
/// naming the first divergence.
bool ValidatePlanDatasets(const ShardPlan& plan,
                          const std::vector<Dataset>& datasets,
                          std::string* error);

/// Builds the PlanDataset identity list from loaded datasets.
std::vector<PlanDataset> FingerprintDatasets(
    const std::vector<Dataset>& datasets);

}  // namespace tsdist::shard

#endif  // TSDIST_SHARD_MANIFEST_H_
