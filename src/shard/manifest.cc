#include "src/shard/manifest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/json.h"
#include "src/obs/trace.h"
#include "src/resilience/checkpoint.h"
#include "src/shard/cell_log.h"
#include "src/shard/lease.h"

namespace tsdist::shard {

namespace {

std::string HexU64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::string();
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

void PartitionCells(ShardPlan* plan, std::size_t num_shards) {
  const std::size_t total = plan->total_cells();
  if (num_shards == 0) num_shards = 1;
  // More shards than cells would leave permanently-empty shards; clamp so
  // every shard has at least one cell (workers treat an empty shard list as
  // a configuration error).
  num_shards = std::min(num_shards, total == 0 ? 1 : total);
  plan->shards.assign(num_shards, {});
  const std::size_t measures = plan->measures.size();
  for (std::size_t index = 0; index < total; ++index) {
    plan->shards[index % num_shards].push_back(
        PlanCell{index / measures, index % measures});
  }
}

std::string PlanToJson(const ShardPlan& plan) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kPlanSchema << "\",\n"
     << "  \"supervised\": " << (plan.supervised ? "true" : "false") << ",\n"
     << "  \"pruned\": " << (plan.pruned ? "true" : "false") << ",\n"
     << "  \"norm\": \"" << JsonEscape(plan.norm) << "\",\n"
     << "  \"scale\": \"" << JsonEscape(plan.scale) << "\",\n"
     << "  \"budget_sec\": " << FormatG17(plan.budget_sec) << ",\n"
     << "  \"tile_rows\": " << plan.tile_rows << ",\n"
     << "  \"lease_ttl_sec\": " << FormatG17(plan.lease_ttl_sec) << ",\n"
     << "  \"retry_max\": " << plan.retry_max << ",\n"
     << "  \"measures\": [";
  for (std::size_t j = 0; j < plan.measures.size(); ++j) {
    os << (j == 0 ? "" : ", ") << "\"" << JsonEscape(plan.measures[j]) << "\"";
  }
  os << "],\n  \"datasets\": [";
  for (std::size_t i = 0; i < plan.datasets.size(); ++i) {
    const PlanDataset& d = plan.datasets[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << JsonEscape(d.name) << "\", \"train_fp\": \"" << HexU64(d.train_fp)
       << "\", \"test_fp\": \"" << HexU64(d.test_fp) << "\"}";
  }
  os << "\n  ],\n  \"shards\": [";
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    os << (s == 0 ? "\n" : ",\n") << "    {\"id\": " << s << ", \"cells\": [";
    for (std::size_t c = 0; c < plan.shards[s].size(); ++c) {
      const PlanCell& cell = plan.shards[s][c];
      os << (c == 0 ? "" : ", ") << "[" << cell.dataset << ", "
         << cell.measure << "]";
    }
    os << "]}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool PlanFromJson(const std::string& text, ShardPlan* plan,
                  std::string* error) {
  try {
    const obs::JsonValue doc = obs::ParseJson(text);
    if (doc.GetString("schema", "") != kPlanSchema) {
      *error = "manifest schema is not " + std::string(kPlanSchema);
      return false;
    }
    plan->supervised = doc.GetBool("supervised", false);
    plan->pruned = doc.GetBool("pruned", false);
    plan->norm = doc.GetString("norm", "");
    plan->scale = doc.GetString("scale", "");
    plan->budget_sec = doc.GetDouble("budget_sec", 0.0);
    plan->tile_rows =
        static_cast<std::size_t>(doc.GetDouble("tile_rows", 32.0));
    plan->lease_ttl_sec = doc.GetDouble("lease_ttl_sec", 10.0);
    plan->retry_max =
        static_cast<std::uint32_t>(doc.GetDouble("retry_max", 5.0));
    plan->measures.clear();
    const obs::JsonValue* measures = doc.Find("measures");
    if (measures == nullptr || !measures->is_array()) {
      *error = "manifest has no measures array";
      return false;
    }
    for (const obs::JsonValue& m : measures->AsArray()) {
      plan->measures.push_back(m.AsString());
    }
    plan->datasets.clear();
    const obs::JsonValue* datasets = doc.Find("datasets");
    if (datasets == nullptr || !datasets->is_array()) {
      *error = "manifest has no datasets array";
      return false;
    }
    for (const obs::JsonValue& d : datasets->AsArray()) {
      PlanDataset entry;
      entry.name = d.GetString("name", "");
      if (entry.name.empty() ||
          !ParseHexU64(d.GetString("train_fp", ""), &entry.train_fp) ||
          !ParseHexU64(d.GetString("test_fp", ""), &entry.test_fp)) {
        *error = "manifest dataset entry malformed";
        return false;
      }
      plan->datasets.push_back(std::move(entry));
    }
    plan->shards.clear();
    const obs::JsonValue* shards = doc.Find("shards");
    if (shards == nullptr || !shards->is_array() ||
        shards->AsArray().empty()) {
      *error = "manifest has no shards array";
      return false;
    }
    for (const obs::JsonValue& s : shards->AsArray()) {
      const obs::JsonValue* cells = s.Find("cells");
      if (cells == nullptr || !cells->is_array()) {
        *error = "manifest shard entry has no cells array";
        return false;
      }
      std::vector<PlanCell> shard;
      for (const obs::JsonValue& c : cells->AsArray()) {
        if (!c.is_array() || c.AsArray().size() != 2) {
          *error = "manifest cell entry malformed";
          return false;
        }
        PlanCell cell;
        cell.dataset = static_cast<std::size_t>(c.AsArray()[0].AsInt());
        cell.measure = static_cast<std::size_t>(c.AsArray()[1].AsInt());
        if (cell.dataset >= plan->datasets.size() ||
            cell.measure >= plan->measures.size()) {
          *error = "manifest cell indexes out of range";
          return false;
        }
        shard.push_back(cell);
      }
      plan->shards.push_back(std::move(shard));
    }
    return true;
  } catch (const std::exception& e) {
    *error = std::string("manifest parse failed: ") + e.what();
    return false;
  }
}

std::string PlanPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/shard_manifest.json";
}

std::string ShardDirPath(const std::string& checkpoint_dir, std::size_t id) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "/shards/s%04zu", id);
  return checkpoint_dir + buf;
}

bool WriteShardPlan(const std::string& checkpoint_dir, const ShardPlan& plan,
                    std::string* error) {
  obs::TraceSpan publish_span("shard.plan_publish", "shard");
  publish_span.Arg("shards", static_cast<std::uint64_t>(plan.shards.size()));
  const std::string rendered = PlanToJson(plan);
  const std::string path = PlanPath(checkpoint_dir);
  if (std::filesystem::exists(path)) {
    const std::string existing = ReadWholeFile(path);
    if (existing == rendered) return true;  // idempotent restart
    *error = "an incompatible shard manifest already exists at " + path +
             " — one checkpoint directory holds exactly one sweep";
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(checkpoint_dir + "/shards", ec);
  std::filesystem::create_directories(checkpoint_dir + "/health", ec);
  for (std::size_t s = 0; s < plan.shards.size(); ++s) {
    std::filesystem::create_directories(ShardDirPath(checkpoint_dir, s), ec);
    if (ec) {
      *error = "cannot create shard directory: " + ec.message();
      return false;
    }
  }
  // Shard directories are published before the manifest: a worker that sees
  // the manifest is guaranteed to see every shard directory (same-dir
  // rename ordering), so a coordinator killed mid-publish leaves either no
  // manifest (workers wait/fail cleanly) or a complete layout.
  return AtomicWriteFile(path, rendered, error);
}

bool LoadShardPlan(const std::string& checkpoint_dir, ShardPlan* plan,
                   std::string* error) {
  const std::string path = PlanPath(checkpoint_dir);
  if (!std::filesystem::exists(path)) {
    *error = "no shard manifest at " + path +
             " (run --shard-coordinator first)";
    return false;
  }
  const std::string text = ReadWholeFile(path);
  if (text.empty()) {
    *error = "shard manifest " + path + " is empty or unreadable";
    return false;
  }
  return PlanFromJson(text, plan, error);
}

std::vector<PlanDataset> FingerprintDatasets(
    const std::vector<Dataset>& datasets) {
  std::vector<PlanDataset> out;
  out.reserve(datasets.size());
  for (const Dataset& d : datasets) {
    PlanDataset entry;
    entry.name = d.name();
    entry.train_fp = FingerprintSeries(d.train());
    entry.test_fp = FingerprintSeries(d.test());
    out.push_back(std::move(entry));
  }
  return out;
}

bool ValidatePlanDatasets(const ShardPlan& plan,
                          const std::vector<Dataset>& datasets,
                          std::string* error) {
  if (plan.datasets.size() != datasets.size()) {
    *error = "manifest lists " + std::to_string(plan.datasets.size()) +
             " datasets but this process loaded " +
             std::to_string(datasets.size());
    return false;
  }
  const std::vector<PlanDataset> mine = FingerprintDatasets(datasets);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].name != plan.datasets[i].name ||
        mine[i].train_fp != plan.datasets[i].train_fp ||
        mine[i].test_fp != plan.datasets[i].test_fp) {
      *error = "dataset '" + mine[i].name + "' (index " + std::to_string(i) +
               ") does not match the manifest (name or fingerprint) — "
               "different archive, seed, or normalization";
      return false;
    }
  }
  return true;
}

}  // namespace tsdist::shard
