// Crash-tolerant shard leases (`tsdist.lease.v1`).
//
// A lease is what lets N cooperating worker processes split one sweep over
// a shared checkpoint directory without a coordinator in the loop: to work
// on shard S at epoch E, a worker must create `<shard-dir>/lease.e<E>` with
// O_CREAT|O_EXCL — the filesystem arbitrates every race, including two
// workers reclaiming the same expired shard at the same instant. The file
// then becomes an append-only log of fixed-size, CRC-framed records
// (claim, then heartbeats, optionally a release), each fsynced before it
// counts, mirroring the checkpoint tile log's write-ahead discipline.
//
// Fencing epochs are the zombie defense. A worker that stops heartbeating
// (SIGKILL, OOM, or a multi-minute SIGSTOP) has its lease expire after the
// TTL; a reclaiming worker claims epoch E+1 and writes all of its output
// under the *epoch-scoped* directory `e<E+1>/`. If the original worker was
// merely paused and resumes, it keeps appending to its own `lease.e<E>` and
// its own `e<E>/` outputs — it can never touch the reclaimer's files, so a
// zombie is fenced by construction rather than by delicate time checks.
// (Because every cell is a pure computation over fingerprint-checked
// inputs, even a zombie that *finishes* produces bit-identical results; the
// fence exists so two processes never append to the same file.)
//
// Readers use the valid-prefix rule: records are consumed until the first
// bad magic or CRC (a torn tail from a kill mid-append), and readers never
// truncate — the file may still be owned by a live writer.

#ifndef TSDIST_SHARD_LEASE_H_
#define TSDIST_SHARD_LEASE_H_

#include <cstdint>
#include <string>

namespace tsdist::shard {

inline constexpr const char kLeaseSchema[] = "tsdist.lease.v1";

/// Record kinds, in file order: exactly one claim first, then heartbeats,
/// optionally a final release (clean handoff; absence of a release is what
/// a crash looks like).
enum class LeaseRecordType : std::uint32_t {
  kClaim = 1,
  kHeartbeat = 2,
  kRelease = 3,
};

/// One decoded lease record.
struct LeaseRecord {
  LeaseRecordType type = LeaseRecordType::kClaim;
  std::uint32_t epoch = 0;
  std::uint32_t pid = 0;
  std::uint64_t wall_ms = 0;      ///< CLOCK_REALTIME milliseconds
  std::string worker;             ///< claiming worker id (<= 27 bytes kept)
};

/// Decoded state of one lease file: the valid record prefix, summarized.
struct LeaseInfo {
  bool exists = false;
  std::uint32_t epoch = 0;
  std::string worker;             ///< from the claim record
  std::uint32_t pid = 0;
  std::uint64_t claim_wall_ms = 0;
  std::uint64_t last_wall_ms = 0;  ///< newest valid record's timestamp
  std::size_t valid_records = 0;
  std::size_t torn_bytes = 0;      ///< bytes past the valid prefix
  bool released = false;           ///< a release record closed the lease
};

/// Wall-clock milliseconds (CLOCK_REALTIME). Lease freshness is compared
/// across processes on one shared filesystem, so wall time — not the
/// per-process steady clock — is the common ruler.
std::uint64_t WallMs();

enum class LeaseAcquire {
  kAcquired,  ///< this process now holds the epoch's lease
  kConflict,  ///< another process created the epoch's lease first
  kError,     ///< I/O failure (error string filled)
};

/// Append handle for a held lease. Obtained only through TryAcquireLease,
/// so holding one implies having won the O_EXCL race for this epoch.
class LeaseHandle {
 public:
  LeaseHandle() = default;
  ~LeaseHandle();
  LeaseHandle(LeaseHandle&& other) noexcept;
  LeaseHandle& operator=(LeaseHandle&& other) noexcept;
  LeaseHandle(const LeaseHandle&) = delete;
  LeaseHandle& operator=(const LeaseHandle&) = delete;

  bool held() const { return fd_ >= 0; }
  std::uint32_t epoch() const { return epoch_; }
  const std::string& path() const { return path_; }

  /// Appends one heartbeat record and fsyncs it. Returns false on I/O
  /// failure (the caller should treat the lease as lost). Hits the
  /// `shard.heartbeat` fault site.
  bool AppendHeartbeat(std::string* error);

  /// Appends a release record (clean handoff marker) and closes the handle.
  bool AppendRelease(std::string* error);

  /// Closes without releasing (what a crash leaves behind).
  void Close();

 private:
  friend LeaseAcquire TryAcquireLeaseImpl(const std::string&, std::uint32_t,
                                          const std::string&, LeaseHandle*,
                                          std::string*);
  int fd_ = -1;
  std::uint32_t epoch_ = 0;
  std::string path_;
  std::string worker_;
};

/// Attempts to claim `epoch` of the shard rooted at `shard_dir` for
/// `worker`: O_CREAT|O_EXCL on `<shard_dir>/lease.e<epoch>`, then the claim
/// record is written and fsynced and the directory entry synced. Hits the
/// `shard.lease_acquire` fault site before touching the filesystem.
LeaseAcquire TryAcquireLease(const std::string& shard_dir, std::uint32_t epoch,
                             const std::string& worker, LeaseHandle* handle,
                             std::string* error);

/// Decodes the valid record prefix of one lease file (read-only; never
/// truncates). Returns false when the file does not exist. A file with zero
/// valid records (torn claim) still reports exists=true so the epoch stays
/// occupied; its freshness falls back to the file mtime.
bool ReadLease(const std::string& path, LeaseInfo* info);

/// Lease file name for an epoch: "lease.e%06u".
std::string LeaseFileName(std::uint32_t epoch);

/// Epoch-scoped output directory name: "e%06u".
std::string EpochDirName(std::uint32_t epoch);

/// File modification time in wall milliseconds (0 when unreadable) — the
/// freshness fallback for lease files whose claim record was torn.
std::uint64_t FileMtimeMs(const std::string& path);

}  // namespace tsdist::shard

#endif  // TSDIST_SHARD_LEASE_H_
