// 64-byte-aligned allocation for series storage.
//
// The SIMD lock-step kernels (src/simd/lockstep_kernels.h) read series
// buffers with vector loads. They tolerate arbitrary alignment (loads are
// unaligned-safe), but 64-byte alignment keeps every 8-double block within a
// single cache line and lets the compiler emit aligned stores for
// accumulator spills, so TimeSeries (src/core/time_series.h) stores its
// observations in an AlignedVector<double>. The alignment is a performance
// contract, not a correctness one: kernels never read past `size()` and
// never require padding.

#ifndef TSDIST_SIMD_ALIGNED_H_
#define TSDIST_SIMD_ALIGNED_H_

#include <cstddef>
#include <limits>
#include <new>
#include <vector>

namespace tsdist::simd {

/// Alignment (bytes) of every series buffer: one x86 cache line, and the
/// natural alignment of a 512-bit vector register.
inline constexpr std::size_t kSeriesAlignment = 64;

/// Minimal C++17 allocator handing out storage aligned to `Alignment`.
template <typename T, std::size_t Alignment = kSeriesAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return true;
}
template <typename T, typename U, std::size_t A>
bool operator!=(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return false;
}

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace tsdist::simd

#endif  // TSDIST_SIMD_ALIGNED_H_
