// Runtime SIMD dispatch for the lock-step distance kernels.
//
// The same kernel source (lockstep_kernels_impl.inl) is compiled three times
// — without vector flags, with -mavx2, and with -mavx512f/dq/vl — and the
// level actually executed is chosen once at runtime from CPUID. Because all
// three translation units share one accumulation order (8 independent lanes,
// fixed reduction tree, -ffp-contract=off), every level returns bit-identical
// results; the dispatcher only decides how fast they arrive. See
// docs/KERNELS.md for the full contract.
//
// Override: the TSDIST_SIMD environment variable pins the level —
// `scalar`, `avx2`, `avx512`, or `native` (best supported; the default).
// A request above what the CPU supports is clamped down with a warning.
// Bit-identity checks run the same binary twice with TSDIST_SIMD=scalar vs
// native and diff the output.
//
// Observability: the resolved level is published as the `tsdist.simd.level`
// gauge (0 = scalar, 1 = avx2, 2 = avx512) and a one-shot
// `tsdist.simd.dispatch.<level>` counter; batch usage counters are emitted
// by PairwiseEngine (see docs/OBSERVABILITY.md).

#ifndef TSDIST_SIMD_DISPATCH_H_
#define TSDIST_SIMD_DISPATCH_H_

#include <string>

namespace tsdist::simd {

/// Instruction-set level of a kernel build. Order matters: higher enum
/// values are wider ISAs, and a level is usable only when the CPU supports
/// it and every lower level too.
enum class SimdLevel {
  kScalar = 0,  ///< no vector flags; the bit-identity reference path
  kAvx2 = 1,    ///< 256-bit vectors (AVX2)
  kAvx512 = 2,  ///< 512-bit vectors (AVX-512 F+DQ+VL)
};

/// Human-readable level name: "scalar", "avx2", "avx512".
std::string ToString(SimdLevel level);

/// Best level this CPU can execute, from CPUID. Always at least kScalar;
/// non-x86 builds report kScalar.
SimdLevel DetectBestSimdLevel();

/// True when `level` can execute on this CPU.
bool SimdLevelSupported(SimdLevel level);

/// The level the kernels dispatch to. Resolved once on first use:
/// DetectBestSimdLevel() clamped by the TSDIST_SIMD override; cached
/// afterwards. Publishes the tsdist.simd.level gauge and the
/// tsdist.simd.dispatch.<level> counter on resolution.
SimdLevel ActiveSimdLevel();

/// Test hooks: pin the active level (must be supported), or drop the cache
/// so the next ActiveSimdLevel() re-reads TSDIST_SIMD. Not thread-safe
/// against concurrent kernel calls; tests only.
void SetActiveSimdLevelForTest(SimdLevel level);
void ResetActiveSimdLevelForTest();

/// Parses a TSDIST_SIMD value. Returns true and sets `*out` for
/// "scalar" / "avx2" / "avx512" / "native" (native maps to
/// DetectBestSimdLevel()); returns false for anything else.
bool ParseSimdLevel(const std::string& text, SimdLevel* out);

}  // namespace tsdist::simd

#endif  // TSDIST_SIMD_DISPATCH_H_
