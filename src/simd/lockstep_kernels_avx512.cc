// AVX-512 build of the lock-step kernels: same source as the scalar build,
// compiled with -mavx512f/dq/vl and -mprefer-vector-width=512 so the 8-lane
// loops map onto single 512-bit registers. Selected at runtime only when
// CPUID reports F+DQ+VL support. See docs/KERNELS.md.
#define TSDIST_KERNEL_NS avx512_kernels
#define TSDIST_KERNEL_TABLE kAvx512KernelTable
#include "src/simd/lockstep_kernels_impl.inl"
