// Generic lock-step kernel bodies, compiled once per dispatch level.
//
// This file is #included by lockstep_kernels_{scalar,avx2,avx512}.cc with
// TSDIST_KERNEL_NS set to a per-level namespace and TSDIST_KERNEL_TABLE set
// to the table symbol the translation unit must define. Each TU is compiled
// with different ISA flags (none / -mavx2 / -mavx512f,dq,vl) but ALL of them
// with -ffp-contract=off, so the compiler may vectorize the lane loops but
// must perform the identical sequence of IEEE-754 operations per lane.
//
// The accumulation contract that makes every level bit-identical:
//  * kLanes = 8 independent accumulators; element i feeds lane (i mod 8);
//  * the main loop walks full 8-element blocks; the tail (< 8 elements)
//    feeds lanes 0.. in order, leaving the rest untouched;
//  * lanes combine through the fixed tree ((l0+l1)+(l2+l3))+((l4+l5)+(l6+l7)).
// A scalar build executes the lanes one at a time, an AVX2 build as two
// 4-wide halves, an AVX-512 build as one 8-wide register — all three are the
// same per-lane operation sequence, so the results match to the last bit.
//
// Early-abandon variants compare the tree-reduced partial accumulator
// against a cutoff already transformed into accumulator domain once by the
// caller — never re-applying sqrt/pow per block — every kAbandonBlock = 16
// elements (matching the scalar seed cadence), and accumulate in exactly
// the order above so completed scans are bit-identical to the plain kernel.
//
// NaN semantics: sum kernels propagate NaN through IEEE addition. The max
// kernel tracks NaN terms in dedicated lanes (a comparison-select max drops
// NaN — the historical Chebyshev bug), returns a quiet NaN when any term was
// NaN, and never abandons once a NaN has been seen (an abandon would mask
// the NaN with +inf).

#if !defined(TSDIST_KERNEL_NS) || !defined(TSDIST_KERNEL_TABLE)
#error "define TSDIST_KERNEL_NS and TSDIST_KERNEL_TABLE before including"
#endif

#include <cmath>
#include <cstddef>
#include <limits>

#include "src/simd/lockstep_kernels.h"

namespace tsdist::simd {
namespace TSDIST_KERNEL_NS {
namespace {

constexpr std::size_t kLanes = 8;
/// Elements between early-abandon cutoff checks (two 8-lane blocks),
/// matching the scalar seed's kAbandonCheckEvery.
constexpr std::size_t kAbandonBlock = 16;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Domain clamp, bit-compatible with lockstep_internal::SafeDiv but written
/// branchless so the select lowers to a vector blend.
constexpr double kEps = 1e-10;
inline double SafeDiv(double x, double y) {
  const bool small = (y > -kEps) && (y < kEps);
  const double clamped = (y < 0.0) ? -kEps : kEps;
  return x / (small ? clamped : y);
}

// Per-point term policies. d = x - y throughout; formulas mirror the
// lock-step measure definitions in src/lockstep/.
struct SqDiffTerm {
  static double Eval(double x, double y) {
    const double d = x - y;
    return d * d;
  }
};
struct AbsDiffTerm {
  static double Eval(double x, double y) { return std::fabs(x - y); }
};
struct PearsonTerm {  // d^2 / safe(y)
  static double Eval(double x, double y) {
    const double d = x - y;
    return SafeDiv(d * d, y);
  }
};
struct NeymanTerm {  // d^2 / safe(x)
  static double Eval(double x, double y) {
    const double d = x - y;
    return SafeDiv(d * d, x);
  }
};
struct SqChiTerm {  // d^2 / safe(x + y)
  static double Eval(double x, double y) {
    const double d = x - y;
    return SafeDiv(d * d, x + y);
  }
};
struct DivergenceTerm {  // d^2 / safe((x + y)^2)
  static double Eval(double x, double y) {
    const double d = x - y;
    const double s = x + y;
    return SafeDiv(d * d, s * s);
  }
};
struct ClarkTerm {  // (|d| / safe(x + y))^2
  static double Eval(double x, double y) {
    const double t = SafeDiv(std::fabs(x - y), x + y);
    return t * t;
  }
};
struct AddSymTerm {  // d^2 * (x + y) / safe(x * y)
  static double Eval(double x, double y) {
    const double d = x - y;
    return SafeDiv(d * d * (x + y), x * y);
  }
};

/// The fixed lane-combination tree shared by every kernel and level.
inline double ReduceSum(const double acc[kLanes]) {
  const double s01 = acc[0] + acc[1];
  const double s23 = acc[2] + acc[3];
  const double s45 = acc[4] + acc[5];
  const double s67 = acc[6] + acc[7];
  return (s01 + s23) + (s45 + s67);
}

template <typename Term>
double Sum(const double* a, const double* b, std::size_t m) {
  double acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= m; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc[k] += Term::Eval(a[i + k], b[i + k]);
    }
  }
  for (std::size_t k = 0; i < m; ++i, ++k) {
    acc[k] += Term::Eval(a[i], b[i]);
  }
  return ReduceSum(acc);
}

template <typename Term>
double SumEa(const double* a, const double* b, std::size_t m,
             double raw_cutoff) {
  double acc[kLanes] = {};
  std::size_t i = 0;
  // Full 16-element superblocks, cutoff check after each except the one
  // that completes the scan (the final value is returned regardless, per
  // the EarlyAbandonDistance contract).
  while (i + kAbandonBlock <= m) {
    const std::size_t stop = i + kAbandonBlock;
    for (; i < stop; i += kLanes) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        acc[k] += Term::Eval(a[i + k], b[i + k]);
      }
    }
    if (i < m && ReduceSum(acc) >= raw_cutoff) return kInf;
  }
  for (; i + kLanes <= m; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc[k] += Term::Eval(a[i + k], b[i + k]);
    }
  }
  for (std::size_t k = 0; i < m; ++i, ++k) {
    acc[k] += Term::Eval(a[i], b[i]);
  }
  return ReduceSum(acc);
}

/// NaN-propagating max |a - b|. Lanes hold comparison-select maxima (which
/// never become NaN); NaN terms are counted in separate lanes, and any
/// count > 0 turns the result into a quiet NaN.
inline double ReduceMax(const double acc[kLanes]) {
  const double m01 = acc[0] > acc[1] ? acc[0] : acc[1];
  const double m23 = acc[2] > acc[3] ? acc[2] : acc[3];
  const double m45 = acc[4] > acc[5] ? acc[4] : acc[5];
  const double m67 = acc[6] > acc[7] ? acc[6] : acc[7];
  const double lo = m01 > m23 ? m01 : m23;
  const double hi = m45 > m67 ? m45 : m67;
  return lo > hi ? lo : hi;
}

double MaxAbs(const double* a, const double* b, std::size_t m) {
  double acc[kLanes] = {};
  double nan_count[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= m; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      const double t = std::fabs(a[i + k] - b[i + k]);
      nan_count[k] += (t != t) ? 1.0 : 0.0;
      acc[k] = t > acc[k] ? t : acc[k];
    }
  }
  for (std::size_t k = 0; i < m; ++i, ++k) {
    const double t = std::fabs(a[i] - b[i]);
    nan_count[k] += (t != t) ? 1.0 : 0.0;
    acc[k] = t > acc[k] ? t : acc[k];
  }
  if (ReduceSum(nan_count) > 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return ReduceMax(acc);
}

double MaxAbsEa(const double* a, const double* b, std::size_t m,
                double raw_cutoff) {
  double acc[kLanes] = {};
  double nan_count[kLanes] = {};
  std::size_t i = 0;
  while (i + kAbandonBlock <= m) {
    const std::size_t stop = i + kAbandonBlock;
    for (; i < stop; i += kLanes) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        const double t = std::fabs(a[i + k] - b[i + k]);
        nan_count[k] += (t != t) ? 1.0 : 0.0;
        acc[k] = t > acc[k] ? t : acc[k];
      }
    }
    // Never abandon after a NaN term: the result must be NaN, not +inf.
    if (i < m && ReduceSum(nan_count) == 0.0 &&
        ReduceMax(acc) >= raw_cutoff) {
      return kInf;
    }
  }
  for (; i + kLanes <= m; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      const double t = std::fabs(a[i + k] - b[i + k]);
      nan_count[k] += (t != t) ? 1.0 : 0.0;
      acc[k] = t > acc[k] ? t : acc[k];
    }
  }
  for (std::size_t k = 0; i < m; ++i, ++k) {
    const double t = std::fabs(a[i] - b[i]);
    nan_count[k] += (t != t) ? 1.0 : 0.0;
    acc[k] = t > acc[k] ? t : acc[k];
  }
  if (ReduceSum(nan_count) > 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return ReduceMax(acc);
}

}  // namespace
}  // namespace TSDIST_KERNEL_NS

// The dispatch table for this level. constinit: function pointers are
// constant-initialized, so there is no static-init-order hazard when the
// dispatcher reads the table from another translation unit.
constinit const KernelTable TSDIST_KERNEL_TABLE = {
    /*sum_sq=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::SqDiffTerm>,
    /*sum_abs=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::AbsDiffTerm>,
    /*max_abs=*/&TSDIST_KERNEL_NS::MaxAbs,
    /*sum_pearson=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::PearsonTerm>,
    /*sum_neyman=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::NeymanTerm>,
    /*sum_sqchi=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::SqChiTerm>,
    /*sum_divergence=*/
    &TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::DivergenceTerm>,
    /*sum_clark=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::ClarkTerm>,
    /*sum_addsym=*/&TSDIST_KERNEL_NS::Sum<TSDIST_KERNEL_NS::AddSymTerm>,
    /*sum_sq_ea=*/&TSDIST_KERNEL_NS::SumEa<TSDIST_KERNEL_NS::SqDiffTerm>,
    /*sum_abs_ea=*/&TSDIST_KERNEL_NS::SumEa<TSDIST_KERNEL_NS::AbsDiffTerm>,
    /*max_abs_ea=*/&TSDIST_KERNEL_NS::MaxAbsEa,
    /*sum_divergence_ea=*/
    &TSDIST_KERNEL_NS::SumEa<TSDIST_KERNEL_NS::DivergenceTerm>,
    /*sum_clark_ea=*/&TSDIST_KERNEL_NS::SumEa<TSDIST_KERNEL_NS::ClarkTerm>,
};

}  // namespace tsdist::simd
