// Runtime-dispatched SIMD kernels for the lock-step distance hot loops.
//
// One generic implementation (lockstep_kernels_impl.inl) is compiled three
// times — scalar, AVX2, AVX-512 — and selected at runtime through the
// KernelTable for simd::ActiveSimdLevel(). All levels share one accumulation
// contract, which is what makes them interchangeable:
//
//  * 8 independent accumulator lanes; element i accumulates into lane
//    (i mod 8);
//  * lanes are combined with a fixed binary tree
//    ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7));
//  * kernels are built with -ffp-contract=off (no FMA contraction), so
//    every level performs the identical sequence of IEEE-754 operations per
//    lane and returns bit-identical results — including NaN/inf/denormal
//    inputs. See docs/KERNELS.md.
//
// Kernels return the *raw accumulator* (e.g. the sum of squares, not its
// square root); the measure classes apply the final transform. Early-abandon
// variants take the cutoff already transformed into accumulator domain
// (cutoff^2 for Euclidean, cutoff^p for Minkowski, ...), compare raw
// partial sums every 16 elements, and return +infinity on abandon — the
// fix for the per-block sqrt/pow re-transformation the scalar seed code
// performed. A completed scan accumulates in exactly the same order as the
// plain kernel, so its value is bit-identical.
//
// NaN semantics (the lock-step family contract, see docs/KERNELS.md): a NaN
// anywhere in either input propagates to the result. Sum kernels get this
// from IEEE addition; the max kernel tracks NaN terms explicitly (a bare
// comparison-select max would silently drop them — the Chebyshev bug) and
// never abandons once a NaN has been seen.

#ifndef TSDIST_SIMD_LOCKSTEP_KERNELS_H_
#define TSDIST_SIMD_LOCKSTEP_KERNELS_H_

#include <cstddef>

#include "src/simd/dispatch.h"

namespace tsdist::simd {

/// Pairwise kernel: raw accumulator over two equal-length buffers.
using PairKernel = double (*)(const double* a, const double* b,
                              std::size_t m);

/// Early-abandoning pairwise kernel. `raw_cutoff` lives in accumulator
/// domain; returns +infinity once a partial raw sum reaches it (checked
/// every 16 elements), otherwise the exact raw accumulator, bit-identical
/// to the plain kernel.
using PairEaKernel = double (*)(const double* a, const double* b,
                                std::size_t m, double raw_cutoff);

/// Kernel entry points for one dispatch level. Raw-accumulator semantics
/// per slot (d = a[i] - b[i], s = a[i] + b[i], SafeDiv/kEps as in
/// src/lockstep/lockstep.h):
struct KernelTable {
  PairKernel sum_sq;          ///< sum d^2            (euclidean, sq_euclidean)
  PairKernel sum_abs;         ///< sum |d|            (manhattan)
  PairKernel max_abs;         ///< max |d|, NaN-propagating (chebyshev)
  PairKernel sum_pearson;     ///< sum SafeDiv(d^2, b[i])
  PairKernel sum_neyman;      ///< sum SafeDiv(d^2, a[i])
  PairKernel sum_sqchi;       ///< sum SafeDiv(d^2, s)
  PairKernel sum_divergence;  ///< sum SafeDiv(d^2, s*s)
  PairKernel sum_clark;       ///< sum SafeDiv(|d|, s)^2
  PairKernel sum_addsym;      ///< sum SafeDiv(d^2 * s, a[i]*b[i])
  PairEaKernel sum_sq_ea;
  PairEaKernel sum_abs_ea;
  PairEaKernel max_abs_ea;    ///< cutoff in max domain (no transform)
  PairEaKernel sum_divergence_ea;
  PairEaKernel sum_clark_ea;
};

/// Table for the active dispatch level (cheap: one atomic load + index).
const KernelTable& Kernels();

/// Table for an explicit level, for bit-identity tests and benchmarks.
/// Requires SimdLevelSupported(level); throws std::invalid_argument
/// otherwise (calling an unsupported table would fault).
const KernelTable& KernelsForLevel(SimdLevel level);

/// Generic Minkowski power sum: sum |a[i]-b[i]|^p via std::pow, using the
/// same 8-lane blocked accumulation as the table kernels. libm pow has no
/// vector form here, so this path is shared by all dispatch levels and is
/// trivially level-identical; p == 1 and p == 2 are special-cased by the
/// measure onto sum_abs / sum_sq before reaching this.
double SumPowAbsDiff(const double* a, const double* b, std::size_t m,
                     double p);

/// Early-abandoning SumPowAbsDiff; `raw_cutoff` = cutoff^p.
double SumPowAbsDiffEa(const double* a, const double* b, std::size_t m,
                       double p, double raw_cutoff);

/// Per-level tables, defined by lockstep_kernels_{scalar,avx2,avx512}.cc.
/// Prefer KernelsForLevel(): calling into a table whose ISA the CPU lacks
/// faults. The AVX tables exist in every build; on non-x86 targets they are
/// compiled without vector flags and never selected.
extern const KernelTable kScalarKernelTable;
extern const KernelTable kAvx2KernelTable;
extern const KernelTable kAvx512KernelTable;

}  // namespace tsdist::simd

#endif  // TSDIST_SIMD_LOCKSTEP_KERNELS_H_
