// AVX2 build of the lock-step kernels: same source as the scalar build,
// compiled with -mavx2 (and -ffp-contract=off, like every level) so the
// 8-lane loops vectorize to two 256-bit halves. See src/CMakeLists.txt for
// the flags and docs/KERNELS.md for the bit-identity argument.
#define TSDIST_KERNEL_NS avx2_kernels
#define TSDIST_KERNEL_TABLE kAvx2KernelTable
#include "src/simd/lockstep_kernels_impl.inl"
