#include "src/simd/dispatch.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"
#include "src/simd/lockstep_kernels.h"

namespace tsdist::simd {

namespace {

// Active level cache: -1 = not yet resolved. Resolution is idempotent (every
// racer computes the same value), and compare_exchange makes the gauge /
// counter publication happen exactly once.
std::atomic<int> g_active_level{-1};

void PublishResolution(SimdLevel level) {
  if (!obs::Enabled()) return;
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("tsdist.simd.level").Set(static_cast<double>(level));
  registry.GetCounter("tsdist.simd.dispatch." + ToString(level)).Add(1);
}

SimdLevel ResolveLevel() {
  const SimdLevel best = DetectBestSimdLevel();
  const char* env = std::getenv("TSDIST_SIMD");
  if (env == nullptr || *env == '\0') return best;
  SimdLevel requested;
  if (!ParseSimdLevel(env, &requested)) {
    TSDIST_LOG(obs::LogLevel::kWarn, "ignoring invalid TSDIST_SIMD",
               obs::F("value", env),
               obs::F("expected", "scalar|avx2|avx512|native"));
    return best;
  }
  if (requested > best) {
    TSDIST_LOG(obs::LogLevel::kWarn,
               "TSDIST_SIMD requests an unsupported level; clamping",
               obs::F("requested", ToString(requested)),
               obs::F("using", ToString(best)));
    return best;
  }
  return requested;
}

}  // namespace

std::string ToString(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel DetectBestSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

bool SimdLevelSupported(SimdLevel level) {
  return level <= DetectBestSimdLevel();
}

SimdLevel ActiveSimdLevel() {
  int v = g_active_level.load(std::memory_order_acquire);
  if (v < 0) {
    const SimdLevel resolved = ResolveLevel();
    int expected = -1;
    if (g_active_level.compare_exchange_strong(expected,
                                               static_cast<int>(resolved),
                                               std::memory_order_acq_rel)) {
      PublishResolution(resolved);
    }
    v = g_active_level.load(std::memory_order_acquire);
  }
  return static_cast<SimdLevel>(v);
}

void SetActiveSimdLevelForTest(SimdLevel level) {
  if (!SimdLevelSupported(level)) {
    throw std::invalid_argument("SetActiveSimdLevelForTest: level " +
                                ToString(level) +
                                " is not supported by this CPU");
  }
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
}

void ResetActiveSimdLevelForTest() {
  g_active_level.store(-1, std::memory_order_release);
}

bool ParseSimdLevel(const std::string& text, SimdLevel* out) {
  if (text == "scalar") {
    *out = SimdLevel::kScalar;
  } else if (text == "avx2") {
    *out = SimdLevel::kAvx2;
  } else if (text == "avx512") {
    *out = SimdLevel::kAvx512;
  } else if (text == "native") {
    *out = DetectBestSimdLevel();
  } else {
    return false;
  }
  return true;
}

const KernelTable& KernelsForLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) {
    throw std::invalid_argument("KernelsForLevel: level " + ToString(level) +
                                " is not supported by this CPU");
  }
  switch (level) {
    case SimdLevel::kAvx512:
      return kAvx512KernelTable;
    case SimdLevel::kAvx2:
      return kAvx2KernelTable;
    case SimdLevel::kScalar:
      break;
  }
  return kScalarKernelTable;
}

const KernelTable& Kernels() { return KernelsForLevel(ActiveSimdLevel()); }

// --- Generic Minkowski power sums -----------------------------------------
//
// libm std::pow has no vector form in this build, so the generic-p path is
// one shared implementation (all dispatch levels run this exact code, making
// cross-level bit-identity trivial). It still uses the 8-lane blocked
// accumulation and 16-element abandon cadence of the table kernels so the
// documented accumulation-order contract holds family-wide.

namespace {
constexpr std::size_t kLanes = 8;
constexpr std::size_t kAbandonBlock = 16;

inline double PowTerm(double x, double y, double p) {
  return std::pow(std::fabs(x - y), p);
}

inline double ReduceSum(const double acc[kLanes]) {
  const double s01 = acc[0] + acc[1];
  const double s23 = acc[2] + acc[3];
  const double s45 = acc[4] + acc[5];
  const double s67 = acc[6] + acc[7];
  return (s01 + s23) + (s45 + s67);
}
}  // namespace

double SumPowAbsDiff(const double* a, const double* b, std::size_t m,
                     double p) {
  double acc[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= m; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc[k] += PowTerm(a[i + k], b[i + k], p);
    }
  }
  for (std::size_t k = 0; i < m; ++i, ++k) {
    acc[k] += PowTerm(a[i], b[i], p);
  }
  return ReduceSum(acc);
}

double SumPowAbsDiffEa(const double* a, const double* b, std::size_t m,
                       double p, double raw_cutoff) {
  double acc[kLanes] = {};
  std::size_t i = 0;
  while (i + kAbandonBlock <= m) {
    const std::size_t stop = i + kAbandonBlock;
    for (; i < stop; i += kLanes) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        acc[k] += PowTerm(a[i + k], b[i + k], p);
      }
    }
    if (i < m && ReduceSum(acc) >= raw_cutoff) {
      return std::numeric_limits<double>::infinity();
    }
  }
  for (; i + kLanes <= m; i += kLanes) {
    for (std::size_t k = 0; k < kLanes; ++k) {
      acc[k] += PowTerm(a[i + k], b[i + k], p);
    }
  }
  for (std::size_t k = 0; i < m; ++i, ++k) {
    acc[k] += PowTerm(a[i], b[i], p);
  }
  return ReduceSum(acc);
}

}  // namespace tsdist::simd
