// Scalar (reference) build of the lock-step kernels: compiled with
// vectorization disabled (see src/CMakeLists.txt), so TSDIST_SIMD=scalar is
// a true scalar baseline for bit-identity checks and speedup measurements.
#define TSDIST_KERNEL_NS scalar_kernels
#define TSDIST_KERNEL_TABLE kScalarKernelTable
#include "src/simd/lockstep_kernels_impl.inl"
