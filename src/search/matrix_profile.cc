#include "src/search/matrix_profile.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/search/mass.h"

namespace tsdist {

MatrixProfile ComputeMatrixProfile(std::span<const double> series,
                                   std::size_t m) {
  const std::size_t n = series.size();
  assert(m >= 2);
  assert(n >= 2 * m && "series must fit at least two non-trivial windows");
  const std::size_t windows = n - m + 1;
  const std::size_t exclusion = std::max<std::size_t>(1, m / 2);

  MatrixProfile mp;
  mp.window = m;
  mp.profile.assign(windows, std::numeric_limits<double>::infinity());
  mp.index.assign(windows, 0);

  for (std::size_t i = 0; i < windows; ++i) {
    const std::span<const double> query = series.subspan(i, m);
    const std::vector<double> distances = MassDistanceProfile(query, series);
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = i;
    for (std::size_t j = 0; j < windows; ++j) {
      // Trivial-match exclusion: windows overlapping i by more than half
      // the window length match themselves, not structure.
      const std::size_t gap = i > j ? i - j : j - i;
      if (gap < exclusion) continue;
      if (distances[j] < best) {
        best = distances[j];
        best_j = j;
      }
    }
    mp.profile[i] = best;
    mp.index[i] = best_j;
  }
  return mp;
}

MotifPair TopMotif(const MatrixProfile& mp) {
  assert(!mp.profile.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < mp.profile.size(); ++i) {
    if (mp.profile[i] < mp.profile[best]) best = i;
  }
  MotifPair motif;
  motif.first = std::min(best, mp.index[best]);
  motif.second = std::max(best, mp.index[best]);
  motif.distance = mp.profile[best];
  return motif;
}

std::vector<std::size_t> TopDiscords(const MatrixProfile& mp, std::size_t k) {
  const std::size_t exclusion = std::max<std::size_t>(1, mp.window / 2);
  std::vector<double> profile = mp.profile;
  std::vector<std::size_t> discords;
  while (discords.size() < k) {
    std::size_t best = 0;
    double best_v = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < profile.size(); ++i) {
      if (std::isfinite(profile[i]) && profile[i] > best_v) {
        best_v = profile[i];
        best = i;
      }
    }
    if (best_v == -std::numeric_limits<double>::infinity()) break;
    discords.push_back(best);
    const std::size_t lo = best > exclusion ? best - exclusion : 0;
    const std::size_t hi = std::min(profile.size(), best + exclusion + 1);
    for (std::size_t i = lo; i < hi; ++i) {
      profile[i] = -std::numeric_limits<double>::infinity();
    }
  }
  return discords;
}

}  // namespace tsdist
