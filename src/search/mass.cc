#include "src/search/mass.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <limits>

#include "src/linalg/fft.h"

namespace tsdist {

namespace {

constexpr double kEps = 1e-12;

// Running mean and population stddev of every length-m window of `series`.
void WindowStats(std::span<const double> series, std::size_t m,
                 std::vector<double>* means, std::vector<double>* stds) {
  const std::size_t n = series.size();
  const std::size_t windows = n - m + 1;
  means->resize(windows);
  stds->resize(windows);
  // Prefix sums of x and x^2 for O(1) window statistics.
  std::vector<double> sum(n + 1, 0.0), sum_sq(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i + 1] = sum[i] + series[i];
    sum_sq[i + 1] = sum_sq[i] + series[i] * series[i];
  }
  const double dm = static_cast<double>(m);
  for (std::size_t i = 0; i < windows; ++i) {
    const double s = sum[i + m] - sum[i];
    const double sq = sum_sq[i + m] - sum_sq[i];
    const double mean = s / dm;
    const double var = std::max(sq / dm - mean * mean, 0.0);
    (*means)[i] = mean;
    (*stds)[i] = std::sqrt(var);
  }
}

}  // namespace

std::vector<double> SlidingDotProduct(std::span<const double> query,
                                      std::span<const double> series) {
  const std::size_t m = query.size();
  const std::size_t n = series.size();
  assert(m >= 1 && m <= n);
  const std::size_t size = NextPowerOfTwo(n + m);
  std::vector<std::complex<double>> fs(size, {0.0, 0.0});
  std::vector<std::complex<double>> fq(size, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) fs[i] = {series[i], 0.0};
  for (std::size_t i = 0; i < m; ++i) fq[i] = {query[i], 0.0};
  Fft(fs, /*inverse=*/false);
  Fft(fq, /*inverse=*/false);
  for (std::size_t i = 0; i < size; ++i) fs[i] *= std::conj(fq[i]);
  Fft(fs, /*inverse=*/true);
  std::vector<double> out(n - m + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = fs[i].real();
  return out;
}

std::vector<double> MassDistanceProfile(std::span<const double> query,
                                        std::span<const double> series) {
  const std::size_t m = query.size();
  assert(m >= 1 && m <= series.size());

  double q_mean = 0.0;
  for (double v : query) q_mean += v;
  q_mean /= static_cast<double>(m);
  double q_var = 0.0;
  for (double v : query) q_var += (v - q_mean) * (v - q_mean);
  const double q_std = std::sqrt(q_var / static_cast<double>(m));

  std::vector<double> means, stds;
  WindowStats(series, m, &means, &stds);
  const std::vector<double> qs = SlidingDotProduct(query, series);

  const double dm = static_cast<double>(m);
  std::vector<double> profile(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    const bool q_flat = q_std < kEps;
    const bool w_flat = stds[i] < kEps;
    if (q_flat && w_flat) {
      profile[i] = 0.0;  // both normalize to all-zeros
    } else if (q_flat || w_flat) {
      // One side is all-zeros after z-normalization; the other has
      // squared norm m.
      profile[i] = std::sqrt(dm);
    } else {
      const double corr =
          (qs[i] - dm * q_mean * means[i]) / (dm * q_std * stds[i]);
      const double sq = 2.0 * dm * (1.0 - corr);
      profile[i] = std::sqrt(std::max(sq, 0.0));
    }
  }
  return profile;
}

std::vector<double> NaiveDistanceProfile(std::span<const double> query,
                                         std::span<const double> series) {
  const std::size_t m = query.size();
  const std::size_t n = series.size();
  assert(m >= 1 && m <= n);

  auto znorm = [](std::vector<double> v) {
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    const double stddev = std::sqrt(var / static_cast<double>(v.size()));
    for (double& x : v) {
      x = stddev < kEps ? 0.0 : (x - mean) / stddev;
    }
    return v;
  };
  const std::vector<double> q = znorm({query.begin(), query.end()});

  std::vector<double> profile(n - m + 1);
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const std::vector<double> w =
        znorm({series.begin() + static_cast<std::ptrdiff_t>(i),
               series.begin() + static_cast<std::ptrdiff_t>(i + m)});
    double acc = 0.0;
    for (std::size_t t = 0; t < m; ++t) {
      const double d = q[t] - w[t];
      acc += d * d;
    }
    profile[i] = std::sqrt(acc);
  }
  return profile;
}

std::vector<SubsequenceMatch> TopKMatches(std::span<const double> query,
                                          std::span<const double> series,
                                          std::size_t k) {
  std::vector<double> profile = MassDistanceProfile(query, series);
  const std::size_t m = query.size();
  const std::size_t exclusion = std::max<std::size_t>(1, m / 2);

  std::vector<SubsequenceMatch> matches;
  while (matches.size() < k) {
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < profile.size(); ++i) {
      if (profile[i] < best_d) {
        best_d = profile[i];
        best = i;
      }
    }
    if (!std::isfinite(best_d)) break;  // everything excluded
    matches.push_back({best, best_d});
    // Exclude the neighbourhood so matches do not trivially overlap.
    const std::size_t lo = best > exclusion ? best - exclusion : 0;
    const std::size_t hi = std::min(profile.size(), best + exclusion + 1);
    for (std::size_t i = lo; i < hi; ++i) {
      profile[i] = std::numeric_limits<double>::infinity();
    }
  }
  return matches;
}

}  // namespace tsdist
