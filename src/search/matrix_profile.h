// Matrix profile (Yeh et al., ICDM'16 — refs [157, 158] of the paper).
//
// The self-join distance profile: for every length-m window of a series,
// the z-normalized ED to its nearest *non-trivial* neighbour elsewhere in
// the series. Its minima are motifs (repeated structure) and its maxima
// are discords (anomalies) — two of the intro's headline tasks ("motif
// discovery", "anomaly detection") driven purely by a distance measure.
// Computed with one MASS pass per window (O(n^2 log n) total), which is
// ample at library scale and keeps the implementation transparent.

#ifndef TSDIST_SEARCH_MATRIX_PROFILE_H_
#define TSDIST_SEARCH_MATRIX_PROFILE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// The matrix profile of `series` for window length `m`.
struct MatrixProfile {
  /// profile[i] = z-normalized ED from window i to its nearest non-trivial
  /// neighbour (exclusion zone m/2 around i).
  std::vector<double> profile;
  /// index[i] = start of that nearest neighbour.
  std::vector<std::size_t> index;
  std::size_t window = 0;
};

/// Computes the matrix profile. Requires 2 <= m and n >= 2m (so every
/// window has at least one non-trivial neighbour).
MatrixProfile ComputeMatrixProfile(std::span<const double> series,
                                   std::size_t m);

/// The top motif: the pair of windows at minimum profile value.
struct MotifPair {
  std::size_t first = 0;
  std::size_t second = 0;
  double distance = 0.0;
};
MotifPair TopMotif(const MatrixProfile& mp);

/// Top-k discords: windows with the largest profile values, separated by
/// at least one exclusion zone (m/2).
std::vector<std::size_t> TopDiscords(const MatrixProfile& mp, std::size_t k);

}  // namespace tsdist

#endif  // TSDIST_SEARCH_MATRIX_PROFILE_H_
