// MASS: Mueen's Algorithm for Similarity Search (ref [103] of the paper).
//
// Computes the *distance profile* — the z-normalized Euclidean distance
// between a query and every subsequence of a long series — in O(n log n)
// using the FFT cross-correlation identity
//   ED_znorm^2(q, s_i) = 2 m (1 - (QS_i - m mu_q mu_i) / (m sigma_q sigma_i)),
// where QS is the sliding dot product. This is the engine behind
// subsequence matching [51], motif discovery, and the similarity-search
// workloads the paper's 1-NN evaluation stands in for.

#ifndef TSDIST_SEARCH_MASS_H_
#define TSDIST_SEARCH_MASS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// Sliding dot products of `query` against every length-|query| window of
/// `series`; result[i] = sum_t query[t] * series[i + t]. Computed via FFT
/// in O(n log n). Requires |query| <= |series|.
std::vector<double> SlidingDotProduct(std::span<const double> query,
                                      std::span<const double> series);

/// Distance profile: z-normalized ED between `query` and every window of
/// `series`. result[i] corresponds to the window starting at i
/// (|series| - |query| + 1 entries). Constant windows are treated as
/// all-zero after normalization.
std::vector<double> MassDistanceProfile(std::span<const double> query,
                                        std::span<const double> series);

/// Reference O(n m) implementation of MassDistanceProfile (per-window
/// z-normalization + ED), used as the correctness oracle.
std::vector<double> NaiveDistanceProfile(std::span<const double> query,
                                         std::span<const double> series);

/// Top-k non-overlapping matches (smallest profile values, excluding
/// windows overlapping an already-reported match by more than half the
/// query length).
struct SubsequenceMatch {
  std::size_t position = 0;
  double distance = 0.0;
};
std::vector<SubsequenceMatch> TopKMatches(std::span<const double> query,
                                          std::span<const double> series,
                                          std::size_t k);

}  // namespace tsdist

#endif  // TSDIST_SEARCH_MASS_H_
