#include "src/embedding/spiral.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/elastic/dtw.h"
#include "src/linalg/eigen.h"
#include "src/linalg/rng.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"

namespace tsdist {

namespace {

constexpr double kEigenvalueCutoff = 1e-8;
// Warping window used for the similarity (10%, the paper's unsupervised DTW).
constexpr double kDtwWindowPct = 10.0;

}  // namespace

SpiralRepresentation::SpiralRepresentation(std::size_t dimension,
                                           std::uint64_t seed)
    : target_dimension_(dimension), seed_(seed) {}

double SpiralRepresentation::Similarity(std::span<const double> a,
                                        std::span<const double> b) const {
  const DtwDistance dtw(kDtwWindowPct);
  return std::exp(-dtw.Distance(a, b) / sigma_);
}

void SpiralRepresentation::Fit(const std::vector<TimeSeries>& train) {
  assert(!train.empty());
  const std::size_t k = std::min(target_dimension_, train.size());

  Rng rng(seed_);
  const std::vector<std::size_t> perm = rng.Permutation(train.size());
  landmarks_.clear();
  landmarks_.reserve(k);
  for (std::size_t i = 0; i < k; ++i) landmarks_.push_back(train[perm[i]]);

  // Auto-scale sigma to the median pairwise landmark DTW so that the
  // similarity matrix is well conditioned regardless of series scale.
  const DtwDistance dtw(kDtwWindowPct);
  std::vector<double> dists;
  Matrix raw(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      const double d =
          dtw.Distance(landmarks_[i].values(), landmarks_[j].values());
      raw(i, j) = d;
      raw(j, i) = d;
      dists.push_back(d);
    }
  }
  if (!dists.empty()) {
    std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                     dists.end());
    sigma_ = std::max(dists[dists.size() / 2], 1e-9);
  }

  Matrix w(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    w(i, i) = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double s = std::exp(-raw(i, j) / sigma_);
      w(i, j) = s;
      w(j, i) = s;
    }
  }

  // Same degradation contract as GRAIL: a failed eigensolve fails this
  // dataset's SPIRAL cell with context instead of poisoning the sweep.
  EigenDecomposition eig;
  try {
    eig = SymmetricEigen(w);
  } catch (const std::exception& e) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("tsdist.embedding.fit_failures")
          .Add(1);
    }
    TSDIST_LOG(obs::LogLevel::kWarn, "SPIRAL fit failed",
               obs::F("landmarks", static_cast<std::uint64_t>(k)),
               obs::F("reason", e.what()));
    throw std::runtime_error(
        "SpiralRepresentation::Fit: eigendecomposition of the " +
        std::to_string(k) + "x" + std::to_string(k) +
        " similarity matrix failed: " + e.what());
  }
  const double lead = std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0);
  rank_ = 0;
  while (rank_ < k && eig.values[rank_] > kEigenvalueCutoff * lead &&
         eig.values[rank_] > 0.0) {
    ++rank_;
  }
  if (rank_ == 0) rank_ = 1;

  projection_ = Matrix(k, rank_);
  for (std::size_t j = 0; j < rank_; ++j) {
    const double inv_sqrt = 1.0 / std::sqrt(std::max(eig.values[j], 1e-12));
    for (std::size_t i = 0; i < k; ++i) {
      projection_(i, j) = eig.vectors(i, j) * inv_sqrt;
    }
  }
}

std::vector<double> SpiralRepresentation::Transform(
    const TimeSeries& series) const {
  assert(!landmarks_.empty() && "Fit must be called before Transform");
  const std::size_t k = landmarks_.size();
  std::vector<double> sims(k);
  for (std::size_t i = 0; i < k; ++i) {
    sims[i] = Similarity(series.values(), landmarks_[i].values());
  }
  std::vector<double> out(rank_, 0.0);
  for (std::size_t j = 0; j < rank_; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += sims[i] * projection_(i, j);
    out[j] = acc;
  }
  return out;
}

}  // namespace tsdist
