// GRAIL: Generic RepresentAtIon Learning (Paparrizos & Franklin, VLDB'19).
//
// Nystrom-style representation preserving the SINK kernel:
//  1. select k diverse landmark series from the training split (we use
//     deterministic farthest-point selection under the SBD distance — a
//     simplification of the paper's k-Shape centroids that preserves the
//     "diverse landmarks" role),
//  2. eigendecompose the k x k landmark SINK matrix W = U L U^T,
//  3. embed any series x as  Z(x) = [sink(x, l_1) ... sink(x, l_k)] U L^-1/2.
// ED between embeddings then approximates the SINK-induced geometry.

#ifndef TSDIST_EMBEDDING_GRAIL_H_
#define TSDIST_EMBEDDING_GRAIL_H_

#include <cstdint>

#include "src/embedding/representation.h"
#include "src/kernel/sink.h"
#include "src/linalg/matrix.h"

namespace tsdist {

/// GRAIL representation with SINK scale `gamma` and target dimension `k`.
class GrailRepresentation : public Representation {
 public:
  GrailRepresentation(double gamma, std::size_t dimension, std::uint64_t seed);

  void Fit(const std::vector<TimeSeries>& train) override;
  std::vector<double> Transform(const TimeSeries& series) const override;
  std::string name() const override { return "grail"; }
  std::size_t dimension() const override { return rank_; }
  ParamMap params() const override { return {{"gamma", gamma_}}; }

 private:
  double NormalizedSink(std::span<const double> a, std::span<const double> b,
                        double log_self_a, double log_self_b) const;

  double gamma_;
  std::size_t target_dimension_;
  std::uint64_t seed_;
  SinkKernel kernel_;
  std::vector<TimeSeries> landmarks_;
  std::vector<double> landmark_log_self_;  ///< log k(l_i, l_i)
  Matrix projection_;                      ///< k x rank
  std::size_t rank_ = 0;
};

}  // namespace tsdist

#endif  // TSDIST_EMBEDDING_GRAIL_H_
