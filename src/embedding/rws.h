// RWS: Random Warping Series (Wu et al., AISTATS'18).
//
// A random-features method for alignment kernels: draw R short random series
// ("warping series") with values ~ N(0, 1) scaled by 1/gamma and random
// lengths up to Dmax, and embed a series x as the vector of its normalized
// global-alignment (GAK) similarities to the R random series, scaled by
// 1/sqrt(R). Inner products of embeddings then approximate the GAK kernel.

#ifndef TSDIST_EMBEDDING_RWS_H_
#define TSDIST_EMBEDDING_RWS_H_

#include <cstdint>

#include "src/embedding/representation.h"
#include "src/kernel/gak.h"

namespace tsdist {

/// RWS representation: `dimension` = R random series, lengths in [1, dmax]
/// (Table 4: Dmax = 25), GAK bandwidth derived from `gamma`.
class RwsRepresentation : public Representation {
 public:
  RwsRepresentation(double gamma, std::size_t dmax, std::size_t dimension,
                    std::uint64_t seed);

  void Fit(const std::vector<TimeSeries>& train) override;
  std::vector<double> Transform(const TimeSeries& series) const override;
  std::string name() const override { return "rws"; }
  std::size_t dimension() const override { return random_series_.size(); }
  ParamMap params() const override {
    return {{"gamma", gamma_}, {"dmax", static_cast<double>(dmax_)}};
  }

 private:
  double gamma_;
  std::size_t dmax_;
  std::size_t target_dimension_;
  std::uint64_t seed_;
  GakKernel kernel_;
  std::vector<std::vector<double>> random_series_;
  std::vector<double> random_log_self_;  ///< log k(w_i, w_i)
};

}  // namespace tsdist

#endif  // TSDIST_EMBEDDING_RWS_H_
