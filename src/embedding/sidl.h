// SIDL: Shift-Invariant Dictionary Learning (Zheng, Yang & Carbonell,
// KDD'16).
//
// Learns K short atoms such that every series is approximated by a sparse
// set of shifted atom activations. We implement the standard alternating
// scheme: (1) sparse coding by greedy shift-invariant matching pursuit —
// repeatedly pick the (atom, shift) pair with the largest correlation to the
// residual and subtract it; (2) dictionary update — each atom becomes the
// normalized mean of the residual-corrected segments it matched. The
// representation of a series is per-atom max-pooled activation magnitude
// (shift-invariant by construction).

#ifndef TSDIST_EMBEDDING_SIDL_H_
#define TSDIST_EMBEDDING_SIDL_H_

#include <cstdint>

#include "src/embedding/representation.h"

namespace tsdist {

/// SIDL representation: `dimension` atoms of length r * m, sparsity
/// threshold scaled by `lambda` (Table 4: lambda in {0.1, 1, 10},
/// r in {0.1, 0.25, 0.5}).
class SidlRepresentation : public Representation {
 public:
  SidlRepresentation(double lambda, double atom_fraction,
                     std::size_t dimension, std::uint64_t seed);

  void Fit(const std::vector<TimeSeries>& train) override;
  std::vector<double> Transform(const TimeSeries& series) const override;
  std::string name() const override { return "sidl"; }
  std::size_t dimension() const override { return atoms_.size(); }
  ParamMap params() const override {
    return {{"lambda", lambda_}, {"r", atom_fraction_}};
  }

 private:
  struct Activation {
    std::size_t atom = 0;
    std::size_t shift = 0;
    double coefficient = 0.0;
  };

  /// Greedy shift-invariant matching pursuit on one series; returns up to
  /// `max_activations` activations and updates `residual` in place.
  std::vector<Activation> SparseCode(std::vector<double>* residual,
                                     std::size_t max_activations) const;

  double lambda_;
  double atom_fraction_;
  std::size_t target_dimension_;
  std::uint64_t seed_;
  std::size_t atom_length_ = 0;
  std::vector<std::vector<double>> atoms_;  ///< unit-norm atoms
};

}  // namespace tsdist

#endif  // TSDIST_EMBEDDING_SIDL_H_
