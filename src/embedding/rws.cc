#include "src/embedding/rws.h"

#include <cassert>
#include <cmath>

#include "src/linalg/rng.h"

namespace tsdist {

RwsRepresentation::RwsRepresentation(double gamma, std::size_t dmax,
                                     std::size_t dimension, std::uint64_t seed)
    : gamma_(gamma), dmax_(dmax == 0 ? 1 : dmax),
      target_dimension_(dimension), seed_(seed),
      // The GAK bandwidth plays the role of sigma = 1/gamma in the RWS
      // construction: larger gamma = narrower alignment kernel. The random
      // warping series are short by design, so the length-based bandwidth
      // scaling is disabled.
      kernel_(1.0 / std::max(gamma, 1e-6), /*scale_with_length=*/false) {
  assert(dimension > 0);
}

void RwsRepresentation::Fit(const std::vector<TimeSeries>& train) {
  // RWS is data-independent: the random series depend only on the seed and
  // hyper-parameters. The training split is accepted for interface
  // uniformity.
  (void)train;
  Rng rng(seed_);
  random_series_.clear();
  random_series_.reserve(target_dimension_);
  random_log_self_.clear();
  random_log_self_.reserve(target_dimension_);
  for (std::size_t r = 0; r < target_dimension_; ++r) {
    const std::size_t len = 1 + rng.UniformInt(dmax_);
    std::vector<double> w(len);
    for (double& v : w) v = rng.Gaussian();
    random_log_self_.push_back(kernel_.LogSimilarity(w, w));
    random_series_.push_back(std::move(w));
  }
}

std::vector<double> RwsRepresentation::Transform(
    const TimeSeries& series) const {
  assert(!random_series_.empty() && "Fit must be called before Transform");
  const std::size_t r = random_series_.size();
  const double inv_sqrt_r = 1.0 / std::sqrt(static_cast<double>(r));
  const double log_self =
      kernel_.LogSimilarity(series.values(), series.values());
  std::vector<double> out(r);
  for (std::size_t i = 0; i < r; ++i) {
    const double log_sim = kernel_.LogSimilarity(series.values(),
                                                 random_series_[i]);
    out[i] = inv_sqrt_r *
             std::exp(log_sim - 0.5 * (log_self + random_log_self_[i]));
  }
  return out;
}

}  // namespace tsdist
