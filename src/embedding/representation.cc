#include "src/embedding/representation.h"

#include <cassert>

#include "src/classify/one_nn.h"
#include "src/embedding/grail.h"
#include "src/embedding/rws.h"
#include "src/embedding/sidl.h"
#include "src/embedding/spiral.h"
#include "src/lockstep/minkowski_family.h"
#include "src/linalg/matrix.h"

namespace tsdist {

EmbeddingEvalResult EvaluateEmbedding(Representation* representation,
                                      const Dataset& dataset) {
  assert(representation != nullptr);
  representation->Fit(dataset.train());

  auto transform_all = [&](const std::vector<TimeSeries>& series) {
    std::vector<std::vector<double>> out;
    out.reserve(series.size());
    for (const auto& s : series) out.push_back(representation->Transform(s));
    return out;
  };
  const auto train_reps = transform_all(dataset.train());
  const auto test_reps = transform_all(dataset.test());

  const EuclideanDistance ed;
  Matrix e(test_reps.size(), train_reps.size());
  for (std::size_t i = 0; i < test_reps.size(); ++i) {
    for (std::size_t j = 0; j < train_reps.size(); ++j) {
      e(i, j) = ed.Distance(test_reps[i], train_reps[j]);
    }
  }

  EmbeddingEvalResult result;
  result.name = representation->name();
  result.test_accuracy =
      OneNnAccuracy(e, dataset.test_labels(), dataset.train_labels());
  return result;
}

namespace {

double GetOr(const ParamMap& params, const std::string& key, double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

}  // namespace

RepresentationPtr MakeRepresentation(const std::string& name,
                                     const ParamMap& params,
                                     std::size_t dimension,
                                     std::uint64_t seed) {
  if (name == "grail") {
    return std::make_unique<GrailRepresentation>(
        GetOr(params, "gamma", 5.0), dimension, seed);
  }
  if (name == "spiral") {
    return std::make_unique<SpiralRepresentation>(dimension, seed);
  }
  if (name == "rws") {
    return std::make_unique<RwsRepresentation>(
        GetOr(params, "gamma", 1.0),
        static_cast<std::size_t>(GetOr(params, "dmax", 25.0)), dimension, seed);
  }
  if (name == "sidl") {
    return std::make_unique<SidlRepresentation>(
        GetOr(params, "lambda", 1.0), GetOr(params, "r", 0.25), dimension,
        seed);
  }
  return nullptr;
}

}  // namespace tsdist
