#include "src/embedding/grail.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "src/linalg/eigen.h"
#include "src/linalg/rng.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/sliding/ncc_measures.h"

namespace tsdist {

namespace {

// Smallest eigenvalue (relative to the largest) kept in the projection.
constexpr double kEigenvalueCutoff = 1e-8;

// Deterministic farthest-point landmark selection under SBD.
std::vector<std::size_t> SelectLandmarks(const std::vector<TimeSeries>& train,
                                         std::size_t k, std::uint64_t seed) {
  const std::size_t n = train.size();
  assert(k >= 1 && k <= n);
  const NccCoefficientDistance sbd;
  Rng rng(seed);
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  chosen.push_back(rng.UniformInt(n));

  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (chosen.size() < k) {
    const auto& last = train[chosen.back()];
    for (std::size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i],
                             sbd.Distance(train[i].values(), last.values()));
    }
    std::size_t best = 0;
    double best_dist = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (min_dist[i] > best_dist) {
        best_dist = min_dist[i];
        best = i;
      }
    }
    chosen.push_back(best);
  }
  return chosen;
}

}  // namespace

GrailRepresentation::GrailRepresentation(double gamma, std::size_t dimension,
                                         std::uint64_t seed)
    : gamma_(gamma), target_dimension_(dimension), seed_(seed),
      kernel_(gamma) {}

double GrailRepresentation::NormalizedSink(std::span<const double> a,
                                           std::span<const double> b,
                                           double log_self_a,
                                           double log_self_b) const {
  return std::exp(kernel_.LogSimilarity(a, b) -
                  0.5 * (log_self_a + log_self_b));
}

void GrailRepresentation::Fit(const std::vector<TimeSeries>& train) {
  assert(!train.empty());
  const obs::TraceSpan span("embedding.grail_fit");
  obs::ScopedTimer timer(
      obs::Enabled() ? &obs::MetricsRegistry::Global().GetHistogram(
                           "tsdist.embedding.grail_fit_ns")
                     : nullptr);
  const std::size_t k = std::min(target_dimension_, train.size());

  const std::vector<std::size_t> indices = SelectLandmarks(train, k, seed_);
  landmarks_.clear();
  landmarks_.reserve(k);
  for (std::size_t idx : indices) landmarks_.push_back(train[idx]);

  landmark_log_self_.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    landmark_log_self_[i] =
        kernel_.LogSimilarity(landmarks_[i].values(), landmarks_[i].values());
  }

  Matrix w(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    w(i, i) = 1.0;
    for (std::size_t j = i + 1; j < k; ++j) {
      const double s =
          NormalizedSink(landmarks_[i].values(), landmarks_[j].values(),
                         landmark_log_self_[i], landmark_log_self_[j]);
      w(i, j) = s;
      w(j, i) = s;
    }
  }

  // A degenerate landmark kernel (NaN similarities, non-convergence) must
  // fail this dataset's GRAIL cell with a recognizable reason, not poison the
  // whole sweep; the evaluation loop records the reason and moves on.
  EigenDecomposition eig;
  try {
    eig = SymmetricEigen(w);
  } catch (const std::exception& e) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("tsdist.embedding.fit_failures")
          .Add(1);
    }
    TSDIST_LOG(obs::LogLevel::kWarn, "GRAIL fit failed",
               obs::F("landmarks", static_cast<std::uint64_t>(k)),
               obs::F("reason", e.what()));
    throw std::runtime_error(
        "GrailRepresentation::Fit: eigendecomposition of the " +
        std::to_string(k) + "x" + std::to_string(k) +
        " landmark kernel failed: " + e.what());
  }
  const double lead = std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0);
  rank_ = 0;
  while (rank_ < k && eig.values[rank_] > kEigenvalueCutoff * lead &&
         eig.values[rank_] > 0.0) {
    ++rank_;
  }
  if (rank_ == 0) rank_ = 1;

  // projection_ = U_r * diag(lambda_r^{-1/2}).
  projection_ = Matrix(k, rank_);
  for (std::size_t j = 0; j < rank_; ++j) {
    const double inv_sqrt = 1.0 / std::sqrt(std::max(eig.values[j], 1e-12));
    for (std::size_t i = 0; i < k; ++i) {
      projection_(i, j) = eig.vectors(i, j) * inv_sqrt;
    }
  }
}

std::vector<double> GrailRepresentation::Transform(
    const TimeSeries& series) const {
  assert(!landmarks_.empty() && "Fit must be called before Transform");
  const std::size_t k = landmarks_.size();
  const double log_self =
      kernel_.LogSimilarity(series.values(), series.values());
  std::vector<double> sims(k);
  for (std::size_t i = 0; i < k; ++i) {
    sims[i] = NormalizedSink(series.values(), landmarks_[i].values(), log_self,
                             landmark_log_self_[i]);
  }
  std::vector<double> out(rank_, 0.0);
  for (std::size_t j = 0; j < rank_; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += sims[i] * projection_(i, j);
    out[j] = acc;
  }
  return out;
}

}  // namespace tsdist
