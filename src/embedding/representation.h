// Embedding measures (paper Section 9).
//
// An embedding measure uses a similarity function only to *construct* a new
// fixed-length representation; the induced distance is plain ED over the
// learned representations, which approximates the original similarity
// ("similarity-preserving"). The paper compares four frameworks — GRAIL
// (SINK), SPIRAL (DTW), RWS (GAK), SIDL (shift-invariant dictionary) — all
// producing representations of the same length (100) for fairness.

#ifndef TSDIST_EMBEDDING_REPRESENTATION_H_
#define TSDIST_EMBEDDING_REPRESENTATION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/distance_measure.h"
#include "src/core/time_series.h"

namespace tsdist {

/// A learned, similarity-preserving fixed-length representation.
class Representation {
 public:
  virtual ~Representation() = default;

  /// Learns the representation from the training split. Must be called
  /// before Transform.
  virtual void Fit(const std::vector<TimeSeries>& train) = 0;

  /// Maps a series to its learned representation.
  virtual std::vector<double> Transform(const TimeSeries& series) const = 0;

  /// Registry name ("grail", "spiral", "rws", "sidl").
  virtual std::string name() const = 0;

  /// Output dimensionality (valid after Fit).
  virtual std::size_t dimension() const = 0;

  /// Parameters of this instance.
  virtual ParamMap params() const { return {}; }
};

using RepresentationPtr = std::unique_ptr<Representation>;

/// Result of evaluating an embedding measure on one dataset.
struct EmbeddingEvalResult {
  std::string name;
  double test_accuracy = 0.0;
};

/// Fits `representation` on the training split, transforms both splits, and
/// reports 1-NN accuracy under ED over the representations.
EmbeddingEvalResult EvaluateEmbedding(Representation* representation,
                                      const Dataset& dataset);

/// Constructs a representation by name with the given parameters and target
/// dimension (paper default 100); nullptr for unknown names. All
/// constructions are deterministic given `seed`.
RepresentationPtr MakeRepresentation(const std::string& name,
                                     const ParamMap& params = {},
                                     std::size_t dimension = 100,
                                     std::uint64_t seed = 7);

}  // namespace tsdist

#endif  // TSDIST_EMBEDDING_REPRESENTATION_H_
