// SPIRAL: Similarity-Preserving Representation Learning (Lei et al., 2017).
//
// Learns embeddings whose inner products approximate a DTW-derived
// similarity. We implement the landmark (Nystrom) form: random landmarks,
// similarity s(x, y) = exp(-DTW(x, y) / sigma) with sigma auto-scaled to the
// median landmark DTW, eigendecomposition of the landmark similarity matrix,
// and out-of-sample extension exactly as in GRAIL. This preserves the
// framework's structure (DTW-based similarity + low-rank factorization)
// while remaining deterministic.

#ifndef TSDIST_EMBEDDING_SPIRAL_H_
#define TSDIST_EMBEDDING_SPIRAL_H_

#include <cstdint>

#include "src/embedding/representation.h"
#include "src/linalg/matrix.h"

namespace tsdist {

/// SPIRAL representation with target dimension `dimension`.
class SpiralRepresentation : public Representation {
 public:
  SpiralRepresentation(std::size_t dimension, std::uint64_t seed);

  void Fit(const std::vector<TimeSeries>& train) override;
  std::vector<double> Transform(const TimeSeries& series) const override;
  std::string name() const override { return "spiral"; }
  std::size_t dimension() const override { return rank_; }

 private:
  double Similarity(std::span<const double> a, std::span<const double> b) const;

  std::size_t target_dimension_;
  std::uint64_t seed_;
  double sigma_ = 1.0;
  std::vector<TimeSeries> landmarks_;
  Matrix projection_;  ///< k x rank
  std::size_t rank_ = 0;
};

}  // namespace tsdist

#endif  // TSDIST_EMBEDDING_SPIRAL_H_
