#include "src/embedding/sidl.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/linalg/rng.h"

namespace tsdist {

namespace {

constexpr int kLearningIterations = 4;
constexpr std::size_t kActivationsPerSeries = 3;

// Normalizes a vector to unit L2 norm (no-op for near-zero vectors).
void NormalizeAtom(std::vector<double>* atom) {
  double norm = 0.0;
  for (double v : *atom) norm += v * v;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (double& v : *atom) v /= norm;
}

}  // namespace

SidlRepresentation::SidlRepresentation(double lambda, double atom_fraction,
                                       std::size_t dimension,
                                       std::uint64_t seed)
    : lambda_(lambda), atom_fraction_(atom_fraction),
      target_dimension_(dimension), seed_(seed) {
  assert(atom_fraction_ > 0.0 && atom_fraction_ <= 1.0);
  assert(dimension > 0);
}

std::vector<SidlRepresentation::Activation> SidlRepresentation::SparseCode(
    std::vector<double>* residual, std::size_t max_activations) const {
  const std::size_t m = residual->size();
  const std::size_t q = atom_length_;
  std::vector<Activation> activations;
  if (q == 0 || q > m) return activations;
  const std::size_t num_shifts = m - q + 1;

  // Activation threshold: lambda scaled by the residual energy per point.
  for (std::size_t step = 0; step < max_activations; ++step) {
    Activation best;
    double best_abs = 0.0;
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      const auto& atom = atoms_[a];
      for (std::size_t s = 0; s < num_shifts; ++s) {
        double corr = 0.0;
        for (std::size_t t = 0; t < q; ++t) {
          corr += (*residual)[s + t] * atom[t];
        }
        if (std::fabs(corr) > best_abs) {
          best_abs = std::fabs(corr);
          best.atom = a;
          best.shift = s;
          best.coefficient = corr;
        }
      }
    }
    // Stop once the best activation is below the sparsity threshold.
    if (best_abs < lambda_ * 1e-2) break;
    for (std::size_t t = 0; t < q; ++t) {
      (*residual)[best.shift + t] -= best.coefficient * atoms_[best.atom][t];
    }
    activations.push_back(best);
  }
  return activations;
}

void SidlRepresentation::Fit(const std::vector<TimeSeries>& train) {
  assert(!train.empty());
  const std::size_t m = train.front().size();
  atom_length_ = std::max<std::size_t>(
      2, static_cast<std::size_t>(atom_fraction_ * static_cast<double>(m)));
  atom_length_ = std::min(atom_length_, m);

  // Initialize atoms from random training subsequences.
  Rng rng(seed_);
  atoms_.clear();
  atoms_.reserve(target_dimension_);
  for (std::size_t a = 0; a < target_dimension_; ++a) {
    const auto& src = train[rng.UniformInt(train.size())];
    const std::size_t max_start = src.size() - atom_length_;
    const std::size_t start =
        max_start == 0 ? 0 : rng.UniformInt(max_start + 1);
    std::vector<double> atom(atom_length_);
    for (std::size_t t = 0; t < atom_length_; ++t) {
      atom[t] = src[start + t];
    }
    NormalizeAtom(&atom);
    atoms_.push_back(std::move(atom));
  }

  // Alternating minimization: sparse-code all series, then refresh each atom
  // as the normalized mean of the segments it explained.
  for (int iter = 0; iter < kLearningIterations; ++iter) {
    std::vector<std::vector<double>> sums(atoms_.size(),
                                          std::vector<double>(atom_length_, 0.0));
    std::vector<double> weights(atoms_.size(), 0.0);
    for (const auto& series : train) {
      std::vector<double> residual(series.values().begin(),
                                   series.values().end());
      const auto activations = SparseCode(&residual, kActivationsPerSeries);
      for (const Activation& act : activations) {
        // The segment this activation explained = residual contribution plus
        // the subtracted reconstruction.
        for (std::size_t t = 0; t < atom_length_; ++t) {
          const double segment = residual[act.shift + t] +
                                 act.coefficient * atoms_[act.atom][t];
          sums[act.atom][t] += act.coefficient * segment;
        }
        weights[act.atom] += std::fabs(act.coefficient);
      }
    }
    for (std::size_t a = 0; a < atoms_.size(); ++a) {
      if (weights[a] < 1e-9) continue;  // unused atom: keep as-is
      std::vector<double> updated = sums[a];
      NormalizeAtom(&updated);
      atoms_[a] = std::move(updated);
    }
  }
}

std::vector<double> SidlRepresentation::Transform(
    const TimeSeries& series) const {
  assert(!atoms_.empty() && "Fit must be called before Transform");
  const std::size_t m = series.size();
  const std::size_t q = atom_length_;
  std::vector<double> out(atoms_.size(), 0.0);
  if (q > m) return out;
  const std::size_t num_shifts = m - q + 1;
  // Max-pooled absolute activation per atom: shift-invariant feature.
  for (std::size_t a = 0; a < atoms_.size(); ++a) {
    double best = 0.0;
    for (std::size_t s = 0; s < num_shifts; ++s) {
      double corr = 0.0;
      for (std::size_t t = 0; t < q; ++t) {
        corr += series[s + t] * atoms_[a][t];
      }
      best = std::max(best, std::fabs(corr));
    }
    out[a] = best;
  }
  return out;
}

}  // namespace tsdist
