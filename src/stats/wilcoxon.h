// Wilcoxon signed-rank test (Wilcoxon 1945).
//
// The paper's pairwise significance test, following Demsar's methodology for
// comparing two classifiers over multiple datasets: differences in accuracy
// per dataset are ranked by magnitude (midranks for ties, zeros dropped) and
// the smaller signed-rank sum is the statistic. Exact null distribution for
// small samples, normal approximation with tie and continuity corrections
// otherwise. The paper uses a 95% confidence level.

#ifndef TSDIST_STATS_WILCOXON_H_
#define TSDIST_STATS_WILCOXON_H_

#include <cstddef>
#include <vector>

namespace tsdist {

/// Outcome of a Wilcoxon signed-rank test.
struct WilcoxonResult {
  double statistic = 0.0;     ///< T = min(W+, W-)
  double w_plus = 0.0;        ///< signed-rank sum of positive differences
  double w_minus = 0.0;       ///< signed-rank sum of negative differences
  double p_value = 1.0;       ///< two-sided
  std::size_t n_nonzero = 0;  ///< pairs remaining after dropping zero diffs
};

/// Two-sided test of the hypothesis that paired samples `a` and `b` come
/// from the same distribution. Vectors must have equal length.
WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Convenience: true when `a` is significantly better (larger) than `b` at
/// the given significance level, i.e. two-sided p < alpha and W+ > W-.
bool SignificantlyGreater(const std::vector<double>& a,
                          const std::vector<double>& b, double alpha = 0.05);

/// Standard normal CDF.
double NormalCdf(double z);

/// Midranks of `values` (1-based average ranks, ties share the mean rank).
std::vector<double> MidRanks(const std::vector<double>& values);

}  // namespace tsdist

#endif  // TSDIST_STATS_WILCOXON_H_
