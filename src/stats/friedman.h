// Friedman test (Friedman 1937) for comparing k measures over N datasets.
//
// The paper's multi-measure significance test, again following Demsar: per
// dataset, measures are ranked by accuracy (rank 1 = best, midranks for
// ties); the test statistic aggregates squared deviations of the average
// ranks from their expectation under the null of no difference. We report
// both the chi-square form and Iman-Davenport's F form, and the p-value from
// the chi-square approximation.

#ifndef TSDIST_STATS_FRIEDMAN_H_
#define TSDIST_STATS_FRIEDMAN_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace tsdist {

/// Outcome of a Friedman test over an N-datasets x k-measures accuracy
/// matrix.
struct FriedmanResult {
  std::vector<double> average_ranks;  ///< length k, rank 1 = best
  double chi_square = 0.0;            ///< chi-square-form statistic
  double f_statistic = 0.0;           ///< Iman-Davenport improvement
  double p_value = 1.0;               ///< from the chi-square approximation
  std::size_t n_datasets = 0;
  std::size_t n_measures = 0;
};

/// Runs the Friedman test on `accuracies` (rows = datasets, columns =
/// measures; higher accuracy = better = lower rank).
FriedmanResult FriedmanTest(const Matrix& accuracies);

/// Survival function of the chi-square distribution: P(X > x) with `df`
/// degrees of freedom (regularized upper incomplete gamma).
double ChiSquareSurvival(double x, double df);

}  // namespace tsdist

#endif  // TSDIST_STATS_FRIEDMAN_H_
