// Holm-Bonferroni step-down correction for multiple pairwise comparisons.
//
// Demsar 2006 (the methodology the paper follows) recommends Holm's
// procedure when one baseline is compared against k measures with k
// Wilcoxon tests: sort p-values ascending and compare p_(i) against
// alpha / (k - i); reject hypotheses until the first failure. Controls the
// family-wise error rate without the Nemenyi test's conservatism.

#ifndef TSDIST_STATS_HOLM_H_
#define TSDIST_STATS_HOLM_H_

#include <cstddef>
#include <vector>

namespace tsdist {

/// Outcome of the Holm procedure for one hypothesis.
struct HolmOutcome {
  std::size_t original_index = 0;  ///< position in the input vector
  double p_value = 0.0;
  double adjusted_threshold = 0.0;  ///< alpha / (k - rank)
  bool rejected = false;            ///< null rejected (difference significant)
};

/// Runs Holm's step-down procedure on `p_values` at level `alpha`.
/// Returns outcomes sorted by ascending p-value.
std::vector<HolmOutcome> HolmCorrection(const std::vector<double>& p_values,
                                        double alpha);

/// Holm-adjusted p-values in the original input order:
/// p_adj_(i) = max over j <= i of min(1, (k - j) * p_(j)) (monotone).
std::vector<double> HolmAdjustedPValues(const std::vector<double>& p_values);

}  // namespace tsdist

#endif  // TSDIST_STATS_HOLM_H_
