#include "src/stats/friedman.h"

#include <cassert>
#include <cmath>

#include "src/stats/wilcoxon.h"

namespace tsdist {

namespace {

// Regularized lower incomplete gamma P(a, x) by series expansion (x < a+1).
double GammaPSeries(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Regularized upper incomplete gamma Q(a, x) by continued fraction (x >= a+1).
double GammaQContinuedFraction(double a, double x) {
  const double gln = std::lgamma(a);
  const double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

// Regularized upper incomplete gamma Q(a, x).
double GammaQ(double a, double x) {
  assert(a > 0.0);
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

}  // namespace

double ChiSquareSurvival(double x, double df) {
  return GammaQ(0.5 * df, 0.5 * x);
}

FriedmanResult FriedmanTest(const Matrix& accuracies) {
  const std::size_t n = accuracies.rows();
  const std::size_t k = accuracies.cols();
  FriedmanResult result;
  result.n_datasets = n;
  result.n_measures = k;
  result.average_ranks.assign(k, 0.0);
  if (n == 0 || k < 2) return result;

  // Per dataset: rank 1 = highest accuracy. MidRanks ranks ascending, so we
  // rank the negated accuracies.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> negated(k);
    for (std::size_t j = 0; j < k; ++j) negated[j] = -accuracies(i, j);
    const std::vector<double> ranks = MidRanks(negated);
    for (std::size_t j = 0; j < k; ++j) result.average_ranks[j] += ranks[j];
  }
  for (double& r : result.average_ranks) r /= static_cast<double>(n);

  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  double sum_r_sq = 0.0;
  for (double r : result.average_ranks) sum_r_sq += r * r;
  result.chi_square = 12.0 * dn / (dk * (dk + 1.0)) *
                      (sum_r_sq - dk * (dk + 1.0) * (dk + 1.0) / 4.0);
  const double denom = dn * (dk - 1.0) - result.chi_square;
  result.f_statistic =
      denom > 0.0 ? (dn - 1.0) * result.chi_square / denom : 0.0;
  result.p_value = ChiSquareSurvival(result.chi_square, dk - 1.0);
  return result;
}

}  // namespace tsdist
