#include "src/stats/holm.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace tsdist {

std::vector<HolmOutcome> HolmCorrection(const std::vector<double>& p_values,
                                        double alpha) {
  const std::size_t k = p_values.size();
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&p_values](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });

  std::vector<HolmOutcome> outcomes(k);
  bool still_rejecting = true;
  for (std::size_t rank = 0; rank < k; ++rank) {
    HolmOutcome& outcome = outcomes[rank];
    outcome.original_index = order[rank];
    outcome.p_value = p_values[order[rank]];
    outcome.adjusted_threshold = alpha / static_cast<double>(k - rank);
    if (still_rejecting && outcome.p_value < outcome.adjusted_threshold) {
      outcome.rejected = true;
    } else {
      still_rejecting = false;  // step-down: stop at the first failure
      outcome.rejected = false;
    }
  }
  return outcomes;
}

std::vector<double> HolmAdjustedPValues(const std::vector<double>& p_values) {
  const std::size_t k = p_values.size();
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&p_values](std::size_t a, std::size_t b) {
    return p_values[a] < p_values[b];
  });

  std::vector<double> adjusted(k, 0.0);
  double running_max = 0.0;
  for (std::size_t rank = 0; rank < k; ++rank) {
    const double scaled =
        std::min(1.0, static_cast<double>(k - rank) * p_values[order[rank]]);
    running_max = std::max(running_max, scaled);
    adjusted[order[rank]] = running_max;
  }
  return adjusted;
}

}  // namespace tsdist
