#include "src/stats/ranking.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "src/stats/friedman.h"
#include "src/stats/nemenyi.h"

namespace tsdist {

CdAnalysis AnalyzeRanks(const Matrix& accuracies,
                        const std::vector<std::string>& names, double alpha) {
  assert(accuracies.cols() == names.size());
  CdAnalysis out;
  const FriedmanResult friedman = FriedmanTest(accuracies);
  out.friedman_p_value = friedman.p_value;
  if (names.size() >= 2 && accuracies.rows() > 0) {
    out.critical_difference =
        NemenyiCriticalDifference(names.size(), accuracies.rows(), alpha);
  }

  out.ranking.resize(names.size());
  for (std::size_t j = 0; j < names.size(); ++j) {
    out.ranking[j].name = names[j];
    out.ranking[j].average_rank = friedman.average_ranks[j];
  }
  std::sort(out.ranking.begin(), out.ranking.end(),
            [](const RankedMeasure& a, const RankedMeasure& b) {
              return a.average_rank < b.average_rank;
            });

  // Maximal runs of consecutive measures whose extreme ranks differ by less
  // than CD (the bars of a critical-difference diagram).
  const std::size_t k = out.ranking.size();
  std::size_t group_start = 0;
  for (std::size_t i = 0; i < k; ++i) {
    // Extend the group that starts at group_start while within CD.
    if (out.ranking[i].average_rank - out.ranking[group_start].average_rank >
        out.critical_difference) {
      // Emit [group_start, i-1] if it is maximal (not nested in previous).
      if (out.groups.empty() || out.groups.back().back() < i - 1) {
        std::vector<std::size_t> group;
        for (std::size_t g = group_start; g < i; ++g) group.push_back(g);
        out.groups.push_back(std::move(group));
      }
      // Advance group_start to the first measure within CD of measure i.
      while (out.ranking[i].average_rank -
                 out.ranking[group_start].average_rank >
             out.critical_difference) {
        ++group_start;
      }
    }
  }
  if (out.groups.empty() || out.groups.back().back() < k - 1) {
    std::vector<std::size_t> group;
    for (std::size_t g = group_start; g < k; ++g) group.push_back(g);
    out.groups.push_back(std::move(group));
  }
  return out;
}

std::string RenderCdDiagram(const CdAnalysis& analysis) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "Friedman p-value: " << analysis.friedman_p_value
     << "   Nemenyi CD: " << analysis.critical_difference << "\n";
  std::size_t width = 0;
  for (const auto& m : analysis.ranking) {
    width = std::max(width, m.name.size());
  }
  for (std::size_t i = 0; i < analysis.ranking.size(); ++i) {
    const auto& m = analysis.ranking[i];
    os << "  " << std::setw(static_cast<int>(width)) << std::left << m.name
       << "  avg rank " << std::setw(8) << std::right << m.average_rank << "  ";
    // Mark group membership with bars, one column per group.
    for (const auto& group : analysis.groups) {
      const bool in_group =
          std::find(group.begin(), group.end(), i) != group.end();
      os << (in_group ? '|' : ' ');
    }
    os << "\n";
  }
  os << "  (measures sharing a '|' column are NOT significantly different)\n";
  return os.str();
}

}  // namespace tsdist
