// Average-rank analysis and textual critical-difference diagrams.
//
// The paper's Figures 2-8 are critical-difference diagrams: measures placed
// on an average-rank axis with a bar connecting groups whose rank difference
// is below the Nemenyi critical difference. This module computes the
// rankings and renders an ASCII rendition of those figures for the bench
// binaries.

#ifndef TSDIST_STATS_RANKING_H_
#define TSDIST_STATS_RANKING_H_

#include <string>
#include <vector>

#include "src/linalg/matrix.h"

namespace tsdist {

/// One entry of a critical-difference analysis.
struct RankedMeasure {
  std::string name;
  double average_rank = 0.0;
};

/// Full critical-difference analysis of an accuracy matrix.
struct CdAnalysis {
  std::vector<RankedMeasure> ranking;  ///< sorted by average rank (best first)
  double critical_difference = 0.0;
  double friedman_p_value = 1.0;
  /// Groups of measure indices (into `ranking`) that are NOT significantly
  /// different (maximal cliques of the "within CD" relation on the sorted
  /// rank axis).
  std::vector<std::vector<std::size_t>> groups;
};

/// Builds the analysis for `accuracies` (rows = datasets, columns = measures
/// named by `names`) at significance `alpha` (0.05 or 0.10).
CdAnalysis AnalyzeRanks(const Matrix& accuracies,
                        const std::vector<std::string>& names, double alpha);

/// Renders the analysis as a multi-line ASCII critical-difference diagram.
std::string RenderCdDiagram(const CdAnalysis& analysis);

}  // namespace tsdist

#endif  // TSDIST_STATS_RANKING_H_
