#include "src/stats/wilcoxon.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace tsdist {

namespace {

// Largest sample size for which the exact permutation distribution is used.
constexpr std::size_t kExactLimit = 25;

// Exact two-sided p-value: P(T <= t_obs) under the null where every sign
// assignment of the ranks is equally likely, doubled and capped at 1.
// Ranks are midranks, so we work in half-units (2 * rank is integral).
double ExactPValue(const std::vector<double>& ranks, double t_obs) {
  std::vector<int> r2(ranks.size());
  int total2 = 0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    r2[i] = static_cast<int>(std::lround(2.0 * ranks[i]));
    total2 += r2[i];
  }
  // counts[s] = number of sign assignments with W+ (in half-units) == s.
  std::vector<double> counts(static_cast<std::size_t>(total2) + 1, 0.0);
  counts[0] = 1.0;
  int running = 0;
  for (int r : r2) {
    running += r;
    for (int s = running; s >= r; --s) {
      counts[static_cast<std::size_t>(s)] +=
          counts[static_cast<std::size_t>(s - r)];
    }
  }
  const double n_assignments = std::pow(2.0, static_cast<double>(r2.size()));
  const int t2 = static_cast<int>(std::lround(2.0 * t_obs));
  // T = min(W+, W-); by symmetry P(min <= t) = P(W+ <= t) + P(W+ >= total-t)
  // (the two events are disjoint when t < total/2).
  double cum = 0.0;
  for (int s = 0; s <= t2 && s <= total2; ++s) {
    cum += counts[static_cast<std::size_t>(s)];
  }
  double p = 2.0 * cum / n_assignments;
  return std::min(1.0, p);
}

}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

std::vector<double> MidRanks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average 1-based rank.
    const double avg = 0.5 * (static_cast<double>(i + 1) +
                              static_cast<double>(j + 1));
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

WilcoxonResult WilcoxonSignedRank(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  assert(a.size() == b.size());
  WilcoxonResult result;

  std::vector<double> diffs;
  diffs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    if (d != 0.0) diffs.push_back(d);
  }
  result.n_nonzero = diffs.size();
  if (diffs.empty()) return result;  // identical samples: p = 1

  std::vector<double> abs_diffs(diffs.size());
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    abs_diffs[i] = std::fabs(diffs[i]);
  }
  const std::vector<double> ranks = MidRanks(abs_diffs);

  for (std::size_t i = 0; i < diffs.size(); ++i) {
    if (diffs[i] > 0.0) {
      result.w_plus += ranks[i];
    } else {
      result.w_minus += ranks[i];
    }
  }
  result.statistic = std::min(result.w_plus, result.w_minus);

  const std::size_t n = diffs.size();
  if (n <= kExactLimit) {
    result.p_value = ExactPValue(ranks, result.statistic);
    return result;
  }

  // Normal approximation with tie correction. The variance of W+ is
  // n(n+1)(2n+1)/24 minus sum(t^3 - t)/48 over tie groups.
  const double dn = static_cast<double>(n);
  const double mean = dn * (dn + 1.0) / 4.0;
  double tie_term = 0.0;
  {
    std::vector<double> sorted = abs_diffs;
    std::sort(sorted.begin(), sorted.end());
    std::size_t i = 0;
    while (i < sorted.size()) {
      std::size_t j = i;
      while (j + 1 < sorted.size() && sorted[j + 1] == sorted[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      tie_term += t * t * t - t;
      i = j + 1;
    }
  }
  const double var = dn * (dn + 1.0) * (2.0 * dn + 1.0) / 24.0 - tie_term / 48.0;
  if (var <= 0.0) {
    result.p_value = 1.0;
    return result;
  }
  // Continuity correction toward the mean.
  const double z = (result.statistic - mean + 0.5) / std::sqrt(var);
  result.p_value = std::min(1.0, 2.0 * NormalCdf(z));
  return result;
}

bool SignificantlyGreater(const std::vector<double>& a,
                          const std::vector<double>& b, double alpha) {
  const WilcoxonResult r = WilcoxonSignedRank(a, b);
  return r.p_value < alpha && r.w_plus > r.w_minus;
}

}  // namespace tsdist
