#include "src/stats/nemenyi.h"

#include <cassert>
#include <cmath>

namespace tsdist {

namespace {

// Demsar 2006, Table 5(a): two-tailed studentized range / sqrt(2), for the
// Nemenyi test. Index 0 corresponds to k = 2.
constexpr double kQ005[] = {1.960, 2.343, 2.569, 2.728, 2.850, 2.949, 3.031,
                            3.102, 3.164, 3.219, 3.268, 3.313, 3.354, 3.391,
                            3.426, 3.458, 3.489, 3.517, 3.544};
constexpr double kQ010[] = {1.645, 2.052, 2.291, 2.459, 2.589, 2.693, 2.780,
                            2.855, 2.920, 2.978, 3.030, 3.077, 3.120, 3.159,
                            3.196, 3.230, 3.261, 3.291, 3.319};

}  // namespace

double NemenyiCriticalValue(std::size_t k, double alpha) {
  assert(k >= 2 && k <= 20);
  assert(alpha == 0.05 || alpha == 0.10);
  const std::size_t idx = k - 2;
  return alpha == 0.05 ? kQ005[idx] : kQ010[idx];
}

double NemenyiCriticalDifference(std::size_t k, std::size_t n, double alpha) {
  assert(n > 0);
  const double dk = static_cast<double>(k);
  const double dn = static_cast<double>(n);
  return NemenyiCriticalValue(k, alpha) *
         std::sqrt(dk * (dk + 1.0) / (6.0 * dn));
}

}  // namespace tsdist
