// Post-hoc Nemenyi test (Nemenyi 1963), following Demsar 2006.
//
// After a Friedman test rejects the null, two measures differ significantly
// when their average ranks differ by at least the critical difference
//   CD = q_alpha(k) * sqrt( k (k+1) / (6 N) ),
// where q_alpha is the studentized-range quantile divided by sqrt(2). The
// paper reports Nemenyi results at 90% confidence (alpha = 0.10), noting the
// test "requires more evidence than Wilcoxon".

#ifndef TSDIST_STATS_NEMENYI_H_
#define TSDIST_STATS_NEMENYI_H_

#include <cstddef>

namespace tsdist {

/// q_alpha(k): critical value of the studentized range statistic divided by
/// sqrt(2), for k in [2, 20] and alpha in {0.05, 0.10} (Demsar's Table 5).
/// Asserts on unsupported arguments.
double NemenyiCriticalValue(std::size_t k, double alpha);

/// Critical difference in average ranks for k measures over n datasets at
/// significance `alpha` (0.05 or 0.10).
double NemenyiCriticalDifference(std::size_t k, std::size_t n, double alpha);

}  // namespace tsdist

#endif  // TSDIST_STATS_NEMENYI_H_
