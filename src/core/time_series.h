// Core time-series value type.
//
// A time series is an ordered sequence of real-valued observations sampled at
// a uniform rate (the SIGMOD'20 study setting: univariate, equal sampling,
// discrete timestamps omitted). The class is a thin, cache-friendly wrapper
// around a contiguous buffer plus an integer class label used by the
// classification-based evaluation framework.
//
// The buffer is 64-byte aligned (SeriesBuffer) so the SIMD distance kernels
// in src/simd/ read from aligned, cache-line-granular storage. Alignment is
// a performance contract only: the kernels never read past size(), and every
// dispatch level accepts arbitrary pointers.

#ifndef TSDIST_CORE_TIME_SERIES_H_
#define TSDIST_CORE_TIME_SERIES_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/simd/aligned.h"

namespace tsdist {

/// Observation storage: contiguous doubles on a 64-byte boundary.
using SeriesBuffer = simd::AlignedVector<double>;

/// A univariate, uniformly sampled time series with an optional class label.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Constructs a series from raw values, copying them into aligned
  /// storage. `label` is the class annotation used by the 1-NN evaluation
  /// framework (-1 means unlabeled).
  explicit TimeSeries(const std::vector<double>& values, int label = -1)
      : values_(values.begin(), values.end()), label_(label) {}

  /// Number of observations.
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Value access.
  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  /// Read-only view over the observations. The data pointer of a non-empty
  /// series is 64-byte aligned.
  std::span<const double> values() const { return values_; }
  /// Mutable access to the underlying aligned buffer.
  SeriesBuffer& mutable_values() { return values_; }

  int label() const { return label_; }
  void set_label(int label) { label_ = label; }

  /// Arithmetic mean of the observations. Returns 0 for an empty series.
  double Mean() const;

  /// Population standard deviation (divides by n, the convention used by
  /// z-normalization in the time-series literature). Returns 0 if empty.
  double StdDev() const;

  /// Euclidean (L2) norm of the observation vector.
  double Norm() const;

  /// Minimum observation; requires a non-empty series.
  double Min() const;

  /// Maximum observation; requires a non-empty series.
  double Max() const;

  /// Median observation (average of middle two for even length); requires a
  /// non-empty series.
  double Median() const;

 private:
  SeriesBuffer values_;
  int label_ = -1;
};

/// Sum of element-wise products of two equal-length spans.
double Dot(std::span<const double> a, std::span<const double> b);

}  // namespace tsdist

#endif  // TSDIST_CORE_TIME_SERIES_H_
