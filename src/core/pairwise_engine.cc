#include "src/core/pairwise_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/obs/obs.h"

namespace tsdist {

namespace {

// A malformed input row (e.g. a truncated UCR line) used to surface as a
// cryptic failure deep inside a measure; reject it here with the offending
// index instead.
void ValidateNonEmpty(const std::vector<TimeSeries>& series,
                      const char* collection, const char* function) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].empty()) {
      throw std::invalid_argument(
          std::string("PairwiseEngine::") + function + ": " + collection +
          "[" + std::to_string(i) + "] is an empty (zero-length) series");
    }
  }
}

// Cached handles for the pairwise metrics of one measure; resolved once per
// matrix so the per-row cost is relaxed atomic adds plus two clock reads.
struct PairwiseMetrics {
  obs::Counter* cells_total = nullptr;
  obs::Counter* cells_measure = nullptr;
  obs::Counter* rows = nullptr;
  obs::Histogram* row_ns = nullptr;

  explicit PairwiseMetrics(const std::string& measure_name) {
    auto& registry = obs::MetricsRegistry::Global();
    cells_total = &registry.GetCounter("tsdist.pairwise.cells");
    cells_measure =
        &registry.GetCounter("tsdist.pairwise.cells." + measure_name);
    rows = &registry.GetCounter("tsdist.pairwise.rows");
    row_ns = &registry.GetHistogram("tsdist.pairwise.row_ns." + measure_name);
  }

  void RecordRow(std::uint64_t cells, std::uint64_t elapsed_ns) const {
    cells_total->Add(cells);
    cells_measure->Add(cells);
    rows->Add(1);
    row_ns->Record(elapsed_ns);
    obs::ProgressTick(cells);
  }
};

}  // namespace

PairwiseEngine::PairwiseEngine(std::size_t num_threads)
    : num_threads_(num_threads == 0
                       ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                       : num_threads) {}

Matrix PairwiseEngine::Compute(const std::vector<TimeSeries>& queries,
                               const std::vector<TimeSeries>& references,
                               const DistanceMeasure& measure) const {
  const std::size_t r = queries.size();
  const std::size_t p = references.size();
  Matrix out(r, p);
  if (r == 0 || p == 0) return out;
  ValidateNonEmpty(queries, "queries", "Compute");
  ValidateNonEmpty(references, "references", "Compute");

  const bool obs_on = obs::Enabled();
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  const obs::TraceSpan span(trace_on ? "pairwise.compute/" + measure.name()
                                     : std::string());
  std::optional<PairwiseMetrics> metrics_storage;
  if (obs_on) metrics_storage.emplace(measure.name());
  const PairwiseMetrics* metrics =
      metrics_storage.has_value() ? &*metrics_storage : nullptr;

  std::atomic<std::size_t> next_row{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next_row.fetch_add(1);
      if (i >= r) return;
      const std::uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;
      auto row = out.mutable_row(i);
      const auto q = queries[i].values();
      for (std::size_t j = 0; j < p; ++j) {
        row[j] = measure.Distance(q, references[j].values());
      }
      if (metrics != nullptr) metrics->RecordRow(p, obs::NowNs() - t0);
    }
  };

  const std::size_t threads = std::min(num_threads_, r);
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return out;
}

Matrix PairwiseEngine::ComputeSelf(const std::vector<TimeSeries>& series,
                                   const DistanceMeasure& measure) const {
  const std::size_t n = series.size();
  Matrix out(n, n);
  if (n == 0) return out;
  ValidateNonEmpty(series, "series", "ComputeSelf");

  const bool obs_on = obs::Enabled();
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  const obs::TraceSpan span(trace_on
                                ? "pairwise.compute_self/" + measure.name()
                                : std::string());
  std::optional<PairwiseMetrics> metrics_storage;
  if (obs_on) metrics_storage.emplace(measure.name());
  const PairwiseMetrics* metrics =
      metrics_storage.has_value() ? &*metrics_storage : nullptr;

  std::atomic<std::size_t> next_row{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next_row.fetch_add(1);
      if (i >= n) return;
      const std::uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;
      const auto a = series[i].values();
      for (std::size_t j = i; j < n; ++j) {
        out(i, j) = measure.Distance(a, series[j].values());
      }
      if (metrics != nullptr) metrics->RecordRow(n - i, obs::NowNs() - t0);
    }
  };

  const std::size_t threads = std::min(num_threads_, n);
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

}  // namespace tsdist
