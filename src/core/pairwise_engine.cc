#include "src/core/pairwise_engine.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace tsdist {

PairwiseEngine::PairwiseEngine(std::size_t num_threads)
    : num_threads_(num_threads == 0
                       ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                       : num_threads) {}

Matrix PairwiseEngine::Compute(const std::vector<TimeSeries>& queries,
                               const std::vector<TimeSeries>& references,
                               const DistanceMeasure& measure) const {
  const std::size_t r = queries.size();
  const std::size_t p = references.size();
  Matrix out(r, p);
  if (r == 0 || p == 0) return out;

  std::atomic<std::size_t> next_row{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next_row.fetch_add(1);
      if (i >= r) return;
      auto row = out.mutable_row(i);
      const auto q = queries[i].values();
      for (std::size_t j = 0; j < p; ++j) {
        row[j] = measure.Distance(q, references[j].values());
      }
    }
  };

  const std::size_t threads = std::min(num_threads_, r);
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  return out;
}

Matrix PairwiseEngine::ComputeSelf(const std::vector<TimeSeries>& series,
                                   const DistanceMeasure& measure) const {
  const std::size_t n = series.size();
  Matrix out(n, n);
  if (n == 0) return out;

  std::atomic<std::size_t> next_row{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next_row.fetch_add(1);
      if (i >= n) return;
      const auto a = series[i].values();
      for (std::size_t j = i; j < n; ++j) {
        out(i, j) = measure.Distance(a, series[j].values());
      }
    }
  };

  const std::size_t threads = std::min(num_threads_, n);
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
  }
  return out;
}

}  // namespace tsdist
