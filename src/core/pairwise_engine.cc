#include "src/core/pairwise_engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>

#include "src/elastic/dtw.h"
#include "src/elastic/lower_bounds.h"
#include "src/obs/obs.h"
#include "src/obs/heap_profiler.h"
#include "src/obs/profiler.h"
#include "src/resilience/checkpoint.h"

namespace tsdist {

namespace {

// A malformed input row (e.g. a truncated UCR line) used to surface as a
// cryptic failure deep inside a measure; reject it here with the offending
// index instead.
void ValidateNonEmpty(const std::vector<TimeSeries>& series,
                      const char* collection, const char* function) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].empty()) {
      throw std::invalid_argument(
          std::string("PairwiseEngine::") + function + ": " + collection +
          "[" + std::to_string(i) + "] is an empty (zero-length) series");
    }
  }
}

// Every measure in the library assumes equal-length inputs (the paper's
// workloads are rectangular after resampling), but inside the measures that
// assumption is guarded only by assert — an out-of-bounds read under NDEBUG.
// Enforce it once here, naming the offending pair.
void ValidateUniformLength(const std::vector<TimeSeries>& series,
                           const char* collection, const char* function,
                           std::size_t expected, const char* expected_origin) {
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (series[i].size() != expected) {
      throw std::invalid_argument(
          std::string("PairwiseEngine::") + function + ": length mismatch: " +
          collection + "[" + std::to_string(i) + "] has length " +
          std::to_string(series[i].size()) + " but " + expected_origin +
          " has length " + std::to_string(expected));
    }
  }
}

// Validates one collection: non-empty series, all of one length.
void ValidateCollection(const std::vector<TimeSeries>& series,
                        const char* collection, const char* function) {
  ValidateNonEmpty(series, collection, function);
  if (series.empty()) return;
  ValidateUniformLength(series, collection, function, series[0].size(),
                        (std::string(collection) + "[0]").c_str());
}

// Validates a queries/references pair: each collection uniform, and both on
// the same length.
void ValidatePair(const std::vector<TimeSeries>& queries,
                  const std::vector<TimeSeries>& references,
                  const char* function) {
  ValidateNonEmpty(queries, "queries", function);
  ValidateNonEmpty(references, "references", function);
  if (queries.empty() || references.empty()) return;
  ValidateUniformLength(queries, "queries", function, queries[0].size(),
                        "queries[0]");
  ValidateUniformLength(references, "references", function, queries[0].size(),
                        "queries[0]");
}

// Read-only views over a collection, built once per engine call so row
// loops and batch kernels index straight into contiguous buffers instead of
// re-deriving spans from TimeSeries per cell.
std::vector<SeriesView> BuildViews(const std::vector<TimeSeries>& series) {
  std::vector<SeriesView> views;
  views.reserve(series.size());
  for (const auto& s : series) views.push_back(s.values());
  return views;
}

// Cached handles for the pairwise metrics of one measure; resolved once per
// matrix so the per-row cost is relaxed atomic adds plus two clock reads.
struct PairwiseMetrics {
  obs::Counter* cells_total = nullptr;
  obs::Counter* cells_measure = nullptr;
  obs::Counter* rows = nullptr;
  obs::Histogram* row_ns = nullptr;
  // Non-null only for measures whose DistanceBatch runs on a SIMD kernel;
  // attributes how much of the workload went through the batch path.
  obs::Counter* simd_rows = nullptr;
  obs::Counter* simd_cells = nullptr;

  PairwiseMetrics(const std::string& measure_name, bool batch_kernel) {
    auto& registry = obs::MetricsRegistry::Global();
    cells_total = &registry.GetCounter("tsdist.pairwise.cells");
    cells_measure =
        &registry.GetCounter("tsdist.pairwise.cells." + measure_name);
    rows = &registry.GetCounter("tsdist.pairwise.rows");
    row_ns = &registry.GetHistogram("tsdist.pairwise.row_ns." + measure_name);
    if (batch_kernel) {
      simd_rows = &registry.GetCounter("tsdist.simd.batch.rows");
      simd_cells = &registry.GetCounter("tsdist.simd.batch.cells");
    }
  }

  void RecordRow(std::uint64_t cells, std::uint64_t elapsed_ns) const {
    cells_total->Add(cells);
    cells_measure->Add(cells);
    rows->Add(1);
    row_ns->Record(elapsed_ns);
    if (simd_rows != nullptr) {
      simd_rows->Add(1);
      simd_cells->Add(cells);
    }
    obs::ProgressTick(cells);
  }
};

// Cached handles for the prune/abandon counters of the cascade (see
// docs/PRUNING.md for the inventory).
struct PruneMetrics {
  obs::Counter* candidates = nullptr;
  obs::Counter* lb_kim = nullptr;
  obs::Counter* lb_keogh = nullptr;
  obs::Counter* abandoned = nullptr;
  obs::Counter* full = nullptr;
  obs::Counter* nan_distances = nullptr;
  obs::Counter* ea_batch_rows = nullptr;
  obs::Counter* ea_batch_cells = nullptr;

  PruneMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    candidates = &registry.GetCounter("tsdist.prune.candidates");
    lb_kim = &registry.GetCounter("tsdist.prune.lb_kim");
    lb_keogh = &registry.GetCounter("tsdist.prune.lb_keogh");
    abandoned = &registry.GetCounter("tsdist.prune.abandoned");
    full = &registry.GetCounter("tsdist.prune.full");
    nan_distances = &registry.GetCounter("tsdist.classify.nan_distances");
    ea_batch_rows = &registry.GetCounter("tsdist.simd.ea_batch.rows");
    ea_batch_cells = &registry.GetCounter("tsdist.simd.ea_batch.cells");
  }
};

// Per-row tallies, flushed to the sharded counters once per query row.
struct PruneTally {
  std::uint64_t candidates = 0;
  std::uint64_t lb_kim = 0;
  std::uint64_t lb_keogh = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t full = 0;
  std::uint64_t nan_distances = 0;
  std::uint64_t ea_batch_rows = 0;
  std::uint64_t ea_batch_cells = 0;

  void FlushTo(const PruneMetrics& metrics) const {
    metrics.candidates->Add(candidates);
    if (lb_kim > 0) metrics.lb_kim->Add(lb_kim);
    if (lb_keogh > 0) metrics.lb_keogh->Add(lb_keogh);
    if (abandoned > 0) metrics.abandoned->Add(abandoned);
    if (full > 0) metrics.full->Add(full);
    if (nan_distances > 0) metrics.nan_distances->Add(nan_distances);
    if (ea_batch_rows > 0) metrics.ea_batch_rows->Add(ea_batch_rows);
    if (ea_batch_cells > 0) metrics.ea_batch_cells->Add(ea_batch_cells);
    obs::ProgressTick(candidates);
  }
};

// Shared per-collection acceleration state for the cascade: when the measure
// is plain banded DTW, the Sakoe-Chiba envelopes of the references (built
// once, reused by every query); otherwise nothing, and the cascade degrades
// to early abandoning alone.
struct CascadeContext {
  const DtwDistance* dtw = nullptr;  // non-null iff LB_Kim/LB_Keogh apply
  double window_pct = 0.0;
  std::vector<Envelope> envelopes;  // one per reference when dtw != nullptr
};

CascadeContext BuildCascadeContext(const std::vector<TimeSeries>& references,
                                   const DistanceMeasure& measure,
                                   ThreadPool& pool) {
  CascadeContext ctx;
  ctx.dtw = dynamic_cast<const DtwDistance*>(&measure);
  if (ctx.dtw == nullptr) return ctx;
  ctx.window_pct = ctx.dtw->params().at("delta");
  ctx.envelopes.resize(references.size());
  pool.ParallelFor(references.size(), [&](std::size_t i) {
    ctx.envelopes[i] = BuildEnvelope(references[i].values(), ctx.window_pct);
  });
  return ctx;
}

// Candidates per EarlyAbandonDistanceBatch call in the non-DTW cascade.
// Large enough to amortize virtual dispatch, small enough that the improving
// local cutoff stays nearly as tight as the strictly sequential loop.
constexpr std::size_t kEaChunk = 64;

// Folds one computed distance into the running best, with the tally and
// tie-break rules shared by both cascade paths: abandons (+inf) are
// discarded, NaN loses every `<` comparison and is never selected (matching
// the matrix argmin; tallied so silent misclassification has a signal), and
// strict `<` resolves ties to the lowest index.
void FoldCandidate(double d, std::size_t j, NearestNeighbor* best,
                   PruneTally* tally) {
  if (std::isinf(d) && d > 0.0) {
    // Abandoning implementations signal via +infinity (see the
    // EarlyAbandonDistance contract); a completed distance on finite input
    // is finite, so this candidate reached the cutoff and can be discarded
    // without affecting the strict minimum.
    ++tally->abandoned;
    return;
  }
  ++tally->full;
  if (std::isnan(d)) {
    ++tally->nan_distances;
    return;
  }
  if (d < best->distance) {
    best->distance = d;
    best->index = j;
  }
}

// Non-DTW cascade row: candidates are fed to EarlyAbandonDistanceBatch in
// chunks of kEaChunk, with the best-so-far as the chunk cutoff. The batch
// contract tightens the cutoff with the best of the *earlier entries in the
// chunk*, so the per-candidate (cutoff, input) call sequence — and therefore
// every computed distance — is identical to the sequential loop below; the
// chunk boundary only decides when `best` is folded, not what is computed.
NearestNeighbor EaBatchRow(std::span<const double> query,
                           std::span<const SeriesView> references,
                           const DistanceMeasure& measure, std::size_t skip,
                           PruneTally* tally) {
  NearestNeighbor best;
  best.index = PairwiseEngine::kNoNeighbor;
  std::array<SeriesView, kEaChunk> views;
  std::array<std::size_t, kEaChunk> indices;
  std::array<double, kEaChunk> distances;
  const bool kernel_batch = measure.has_batch_kernel();
  std::size_t count = 0;
  const auto flush = [&] {
    measure.EarlyAbandonDistanceBatch(
        query, std::span<const SeriesView>(views.data(), count), best.distance,
        std::span<double>(distances.data(), count));
    for (std::size_t k = 0; k < count; ++k) {
      FoldCandidate(distances[k], indices[k], &best, tally);
    }
    if (kernel_batch) {
      ++tally->ea_batch_rows;
      tally->ea_batch_cells += count;
    }
    count = 0;
  };
  for (std::size_t j = 0; j < references.size(); ++j) {
    if (j == skip) continue;
    ++tally->candidates;
    views[count] = references[j];
    indices[count] = j;
    if (++count == kEaChunk) flush();
  }
  if (count > 0) flush();
  return best;
}

// The cascade for one query row: LB_Kim -> LB_Keogh -> early-abandoned
// distance, best-so-far as the cutoff. Iterates references in index order
// with a strict `<` improvement test, so ties resolve to the lowest index —
// exactly the argmin of the corresponding Compute() row. A pruned candidate
// has lb >= best and therefore d >= best: it could never have improved the
// strict minimum, which is why predictions are bit-identical to the matrix
// path. Measures without lower bounds take the batched early-abandon path
// above; the sequential loop remains for DTW, whose LB pruning must
// interleave per candidate.
NearestNeighbor CascadeRow(std::span<const double> query,
                           std::span<const SeriesView> references,
                           const DistanceMeasure& measure,
                           const CascadeContext& ctx, std::size_t skip,
                           PruneTally* tally) {
  if (ctx.dtw == nullptr) {
    return EaBatchRow(query, references, measure, skip, tally);
  }
  NearestNeighbor best;
  best.index = PairwiseEngine::kNoNeighbor;
  for (std::size_t j = 0; j < references.size(); ++j) {
    if (j == skip) continue;
    ++tally->candidates;
    const auto candidate = references[j];
    if (LbKim(query, candidate) >= best.distance) {
      ++tally->lb_kim;
      continue;
    }
    if (LbKeogh(query, ctx.envelopes[j]) >= best.distance) {
      ++tally->lb_keogh;
      continue;
    }
    const double d =
        measure.EarlyAbandonDistance(query, candidate, best.distance);
    FoldCandidate(d, j, &best, tally);
  }
  return best;
}

// Runs `compute_row(i)` for every row of `key.rows` under the resilience
// options: cancellable row-parallel when no checkpoint directory is set,
// tile-parallel with durable tile writes otherwise. Exceptions thrown by a
// row (or by a tile write) on any pool thread are captured, cancel the
// remaining work, and rethrow on the calling thread. Returns false when the
// run was cancelled before every row executed.
bool RunResilientRows(ThreadPool& pool, const ComputeOptions& options,
                      const ShardKey& key, Matrix* out,
                      ComputeResult* result,
                      const std::function<void(std::size_t)>& compute_row) {
  std::exception_ptr first_error;
  std::mutex error_mu;
  // Child token: worker exceptions cancel the rest of the job without
  // touching the caller's token.
  CancellationToken local_cancel(options.cancel);
  const auto guarded = [&](const auto& unit) {
    try {
      unit();
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      local_cancel.Cancel();
    }
  };

  bool complete = true;
  if (options.checkpoint_dir.empty()) {
    complete = pool.ParallelFor(
        key.rows, [&](std::size_t i) { guarded([&] { compute_row(i); }); },
        &local_cancel);
  } else {
    TileCheckpoint checkpoint(options.checkpoint_dir, key, out);
    result->tiles_total = checkpoint.num_tiles();
    result->tiles_resumed = checkpoint.tiles_resumed();
    std::vector<std::size_t> pending;
    pending.reserve(checkpoint.num_tiles());
    for (std::size_t t = 0; t < checkpoint.num_tiles(); ++t) {
      if (!checkpoint.TileDone(t)) pending.push_back(t);
    }
    std::atomic<std::size_t> computed{0};
    complete = pool.ParallelFor(
        pending.size(),
        [&](std::size_t k) {
          guarded([&] {
            const std::size_t t = pending[k];
            const std::size_t begin = checkpoint.TileRowBegin(t);
            const std::size_t end = begin + checkpoint.TileRowCount(t);
            for (std::size_t i = begin; i < end; ++i) compute_row(i);
            checkpoint.WriteTile(t, *out);
            computed.fetch_add(1, std::memory_order_relaxed);
          });
        },
        &local_cancel);
    result->tiles_computed = computed.load(std::memory_order_relaxed);
  }
  if (first_error) std::rethrow_exception(first_error);
  return complete;
}

}  // namespace

PairwiseEngine::PairwiseEngine(std::size_t num_threads)
    : num_threads_(num_threads == 0
                       ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                       : num_threads),
      pool_(std::make_unique<ThreadPool>(num_threads_)) {}

Matrix PairwiseEngine::Compute(const std::vector<TimeSeries>& queries,
                               const std::vector<TimeSeries>& references,
                               const DistanceMeasure& measure) const {
  const std::size_t r = queries.size();
  const std::size_t p = references.size();
  Matrix out(r, p);
  if (r == 0 || p == 0) return out;
  ValidatePair(queries, references, "Compute");

  const bool obs_on = obs::Enabled();
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  obs::TraceSpan span(trace_on ? "pairwise.compute/" + measure.name()
                               : std::string());
  if (trace_on) {
    span.Arg("measure", measure.name());
    span.Arg("rows", static_cast<std::uint64_t>(r));
    span.Arg("cols", static_cast<std::uint64_t>(p));
  }
  const obs::PerfRegion kernel_region(measure.name());
  const obs::MemRegion mem_region(measure.name());
  std::optional<PairwiseMetrics> metrics_storage;
  if (obs_on) metrics_storage.emplace(measure.name(), measure.has_batch_kernel());
  const PairwiseMetrics* metrics =
      metrics_storage.has_value() ? &*metrics_storage : nullptr;

  const std::vector<SeriesView> ref_views = BuildViews(references);
  pool_->ParallelFor(r, [&](std::size_t i) {
    const std::uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;
    measure.DistanceBatch(queries[i].values(), ref_views, out.mutable_row(i));
    if (metrics != nullptr) metrics->RecordRow(p, obs::NowNs() - t0);
  });
  return out;
}

Matrix PairwiseEngine::ComputeSelf(const std::vector<TimeSeries>& series,
                                   const DistanceMeasure& measure) const {
  const std::size_t n = series.size();
  Matrix out(n, n);
  if (n == 0) return out;
  ValidateCollection(series, "series", "ComputeSelf");

  const bool obs_on = obs::Enabled();
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  obs::TraceSpan span(trace_on
                          ? "pairwise.compute_self/" + measure.name()
                          : std::string());
  if (trace_on) {
    span.Arg("measure", measure.name());
    span.Arg("n", static_cast<std::uint64_t>(n));
  }
  const obs::PerfRegion kernel_region(measure.name());
  const obs::MemRegion mem_region(measure.name());
  std::optional<PairwiseMetrics> metrics_storage;
  if (obs_on) metrics_storage.emplace(measure.name(), measure.has_batch_kernel());
  const PairwiseMetrics* metrics =
      metrics_storage.has_value() ? &*metrics_storage : nullptr;

  // Only symmetric measures admit the mirror trick; asymmetric ones
  // (Kullback-Leibler, Pearson/Neyman chi^2, K divergence, ASD) need the
  // full matrix — mirroring them used to silently corrupt the lower
  // triangle of W and every LOOCV accuracy derived from it.
  const bool mirror = measure.symmetric();
  const std::vector<SeriesView> views = BuildViews(series);
  const std::span<const SeriesView> view_span(views);
  pool_->ParallelFor(n, [&](std::size_t i) {
    const std::uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;
    const std::size_t start = mirror ? i : 0;
    measure.DistanceBatch(views[i], view_span.subspan(start),
                          out.mutable_row(i).subspan(start));
    if (metrics != nullptr) metrics->RecordRow(n - start, obs::NowNs() - t0);
  });
  if (mirror) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
    }
  }
  return out;
}

ComputeResult PairwiseEngine::Compute(const std::vector<TimeSeries>& queries,
                                      const std::vector<TimeSeries>& references,
                                      const DistanceMeasure& measure,
                                      const ComputeOptions& options) const {
  const std::size_t r = queries.size();
  const std::size_t p = references.size();
  ComputeResult result;
  result.matrix = Matrix(r, p);
  if (r == 0 || p == 0) return result;
  ValidatePair(queries, references, "Compute");

  const bool obs_on = obs::Enabled();
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  obs::TraceSpan span(trace_on ? "pairwise.compute/" + measure.name()
                               : std::string());
  if (trace_on) {
    span.Arg("measure", measure.name());
    span.Arg("rows", static_cast<std::uint64_t>(r));
    span.Arg("cols", static_cast<std::uint64_t>(p));
    span.Arg("tile_rows", static_cast<std::uint64_t>(options.tile_rows));
  }
  const obs::PerfRegion kernel_region(measure.name());
  const obs::MemRegion mem_region(measure.name());
  std::optional<PairwiseMetrics> metrics_storage;
  if (obs_on) metrics_storage.emplace(measure.name(), measure.has_batch_kernel());
  const PairwiseMetrics* metrics =
      metrics_storage.has_value() ? &*metrics_storage : nullptr;

  ShardKey key;
  key.kind = "pair";
  key.measure = measure.name();
  key.params = ToString(measure.params());
  key.rows = r;
  key.cols = p;
  key.tile_rows = std::max<std::size_t>(1, options.tile_rows);
  key.mirror = false;
  if (!options.checkpoint_dir.empty()) {
    key.queries_fp = FingerprintSeries(queries);
    key.references_fp = FingerprintSeries(references);
  }

  const std::vector<SeriesView> ref_views = BuildViews(references);
  Matrix& out = result.matrix;
  result.complete = RunResilientRows(
      *pool_, options, key, &out, &result, [&](std::size_t i) {
        const std::uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;
        measure.DistanceBatch(queries[i].values(), ref_views,
                              out.mutable_row(i));
        if (metrics != nullptr) metrics->RecordRow(p, obs::NowNs() - t0);
      });
  return result;
}

ComputeResult PairwiseEngine::ComputeSelf(const std::vector<TimeSeries>& series,
                                          const DistanceMeasure& measure,
                                          const ComputeOptions& options) const {
  const std::size_t n = series.size();
  ComputeResult result;
  result.matrix = Matrix(n, n);
  if (n == 0) return result;
  ValidateCollection(series, "series", "ComputeSelf");

  const bool obs_on = obs::Enabled();
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  obs::TraceSpan span(trace_on
                          ? "pairwise.compute_self/" + measure.name()
                          : std::string());
  if (trace_on) {
    span.Arg("measure", measure.name());
    span.Arg("n", static_cast<std::uint64_t>(n));
    span.Arg("tile_rows", static_cast<std::uint64_t>(options.tile_rows));
  }
  const obs::PerfRegion kernel_region(measure.name());
  const obs::MemRegion mem_region(measure.name());
  std::optional<PairwiseMetrics> metrics_storage;
  if (obs_on) metrics_storage.emplace(measure.name(), measure.has_batch_kernel());
  const PairwiseMetrics* metrics =
      metrics_storage.has_value() ? &*metrics_storage : nullptr;

  const bool mirror = measure.symmetric();
  ShardKey key;
  key.kind = "self";
  key.measure = measure.name();
  key.params = ToString(measure.params());
  key.rows = n;
  key.cols = n;
  key.tile_rows = std::max<std::size_t>(1, options.tile_rows);
  key.mirror = mirror;
  if (!options.checkpoint_dir.empty()) {
    key.queries_fp = FingerprintSeries(series);
    key.references_fp = key.queries_fp;
  }

  // Tiles persist rows exactly as computed here — upper part plus zeros for
  // symmetric measures. The mirror pass below runs after all tiles on fresh
  // and resumed runs alike, which is what keeps resume bit-identical.
  const std::vector<SeriesView> views = BuildViews(series);
  const std::span<const SeriesView> view_span(views);
  Matrix& out = result.matrix;
  result.complete = RunResilientRows(
      *pool_, options, key, &out, &result, [&](std::size_t i) {
        const std::uint64_t t0 = metrics != nullptr ? obs::NowNs() : 0;
        const std::size_t start = mirror ? i : 0;
        measure.DistanceBatch(views[i], view_span.subspan(start),
                              out.mutable_row(i).subspan(start));
        if (metrics != nullptr) metrics->RecordRow(n - start, obs::NowNs() - t0);
      });
  if (mirror && result.complete) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) out(i, j) = out(j, i);
    }
  }
  return result;
}

NearestNeighbor PairwiseEngine::NearestNeighborRow(
    const TimeSeries& query, const std::vector<TimeSeries>& references,
    const DistanceMeasure& measure, std::size_t skip) const {
  if (references.empty() || (references.size() == 1 && skip == 0)) {
    throw std::invalid_argument(
        "PairwiseEngine::NearestNeighborRow: no candidate references "
        "(references empty, or the only reference is skipped)");
  }
  const std::vector<TimeSeries> query_collection = {query};
  ValidatePair(query_collection, references, "NearestNeighborRow");

  const CascadeContext ctx = BuildCascadeContext(references, measure, *pool_);
  const std::vector<SeriesView> ref_views = BuildViews(references);
  const bool obs_on = obs::Enabled();
  PruneTally tally;
  const NearestNeighbor best =
      CascadeRow(query.values(), ref_views, measure, ctx, skip, &tally);
  if (obs_on) tally.FlushTo(PruneMetrics());
  return best;
}

std::vector<std::size_t> PairwiseEngine::NearestNeighborIndicesPruned(
    const std::vector<TimeSeries>& queries,
    const std::vector<TimeSeries>& references,
    const DistanceMeasure& measure) const {
  if (queries.empty()) return {};
  if (references.empty()) {
    throw std::invalid_argument(
        "PairwiseEngine::NearestNeighborIndicesPruned: references is empty");
  }
  ValidatePair(queries, references, "NearestNeighborIndicesPruned");

  obs::TraceSpan span(obs::TraceRecorder::Global().enabled()
                          ? "pairwise.pruned_nn/" + measure.name()
                          : std::string());
  span.Arg("measure", measure.name());
  span.Arg("queries", static_cast<std::uint64_t>(queries.size()));
  span.Arg("references", static_cast<std::uint64_t>(references.size()));
  const obs::PerfRegion kernel_region(measure.name());
  const obs::MemRegion mem_region(measure.name());
  const CascadeContext ctx = BuildCascadeContext(references, measure, *pool_);
  const bool obs_on = obs::Enabled();
  std::optional<PruneMetrics> metrics;
  if (obs_on) metrics.emplace();

  const std::vector<SeriesView> ref_views = BuildViews(references);
  std::vector<std::size_t> out(queries.size(), 0);
  pool_->ParallelFor(queries.size(), [&](std::size_t i) {
    PruneTally tally;
    out[i] = CascadeRow(queries[i].values(), ref_views, measure, ctx, kNoSkip,
                        &tally)
                 .index;
    if (metrics.has_value()) tally.FlushTo(*metrics);
  });
  return out;
}

std::vector<std::size_t> PairwiseEngine::LeaveOneOutNeighborsPruned(
    const std::vector<TimeSeries>& series,
    const DistanceMeasure& measure) const {
  if (series.size() < 2) {
    throw std::invalid_argument(
        "PairwiseEngine::LeaveOneOutNeighborsPruned: needs at least 2 series, "
        "got " + std::to_string(series.size()));
  }
  ValidateCollection(series, "series", "LeaveOneOutNeighborsPruned");

  obs::TraceSpan span(obs::TraceRecorder::Global().enabled()
                          ? "pairwise.pruned_loocv/" + measure.name()
                          : std::string());
  span.Arg("measure", measure.name());
  span.Arg("n", static_cast<std::uint64_t>(series.size()));
  const obs::PerfRegion kernel_region(measure.name());
  const obs::MemRegion mem_region(measure.name());
  const CascadeContext ctx = BuildCascadeContext(series, measure, *pool_);
  const bool obs_on = obs::Enabled();
  std::optional<PruneMetrics> metrics;
  if (obs_on) metrics.emplace();

  const std::vector<SeriesView> views = BuildViews(series);
  std::vector<std::size_t> out(series.size(), 0);
  pool_->ParallelFor(series.size(), [&](std::size_t i) {
    PruneTally tally;
    out[i] =
        CascadeRow(series[i].values(), views, measure, ctx, i, &tally).index;
    if (metrics.has_value()) tally.FlushTo(*metrics);
  });
  return out;
}

}  // namespace tsdist
