#include "src/core/thread_pool.h"

#include <algorithm>

#include "src/obs/obs.h"
#include "src/obs/profiler.h"

namespace tsdist {

namespace {

// Utilization counters for all pools in the process. Handles are resolved
// per use-site scope (one registry lookup per job, not per index) instead of
// being cached in a static so MetricsRegistry::Reset() in tests never leaves
// dangling pointers behind.
struct PoolMetrics {
  obs::Counter* jobs;
  obs::Counter* inline_jobs;
  obs::Counter* tasks;
  obs::Counter* busy_ns;
  obs::Counter* idle_ns;

  PoolMetrics() {
    auto& registry = obs::MetricsRegistry::Global();
    jobs = &registry.GetCounter("tsdist.pool.jobs");
    inline_jobs = &registry.GetCounter("tsdist.pool.inline_jobs");
    tasks = &registry.GetCounter("tsdist.pool.tasks");
    busy_ns = &registry.GetCounter("tsdist.pool.busy_ns");
    idle_ns = &registry.GetCounter("tsdist.pool.idle_ns");
  }
};

// Live process-wide pool state, sampled asynchronously by the telemetry
// server. Updated per job participation (never per index), so the cost is
// two relaxed atomics around each RunJob, not in the claim loop.
std::atomic<std::uint64_t> g_live_threads{0};
std::atomic<std::uint64_t> g_busy_participants{0};

struct ScopedBusy {
  ScopedBusy() { g_busy_participants.fetch_add(1, std::memory_order_relaxed); }
  ~ScopedBusy() { g_busy_participants.fetch_sub(1, std::memory_order_relaxed); }
};

// Makes a worker sampleable for its whole lifetime: the sampling profiler
// needs every thread's kernel tid to arm a per-thread CPU-time timer, and
// the unregister on exit keeps a timer from firing at a dead thread.
struct ScopedProfilerThread {
  ScopedProfilerThread() { obs::RegisterProfilerThread(); }
  ~ScopedProfilerThread() { obs::UnregisterProfilerThread(); }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (obs::Enabled()) {
    // Last-constructed pool wins; all current callers build one engine-owned
    // pool per process, and the bench manifest records the intended count.
    obs::MetricsRegistry::Global()
        .GetGauge("tsdist.pool.threads")
        .Set(static_cast<double>(num_threads));
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  g_live_threads.fetch_add(workers_.size(), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  g_live_threads.fetch_sub(workers_.size(), std::memory_order_relaxed);
}

void ThreadPool::RunJob(Job* job) {
  for (;;) {
    const std::size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job->count) return;
    // Claim first, check second: the cancelled flag is set only when an
    // index that would have run was skipped, so a false return from
    // ParallelFor means exactly "the output is missing at least one index".
    if (job->cancel != nullptr && job->cancel->cancelled()) {
      job->cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    (*job->body)(i);
  }
}

void ThreadPool::WorkerLoop() {
  const ScopedProfilerThread profiler_scope;
  std::uint64_t last_seen = 0;
  for (;;) {
    Job* job = nullptr;
    const std::uint64_t wait_start = obs::Enabled() ? obs::NowNs() : 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && job_seq_ != last_seen);
      });
      if (stop_) return;
      last_seen = job_seq_;
      job = job_;
      ++active_workers_;
    }
    {
      const ScopedBusy busy;
      if (wait_start != 0 && obs::Enabled()) {
        const PoolMetrics metrics;
        metrics.idle_ns->Add(obs::NowNs() - wait_start);
        const std::uint64_t busy_start = obs::NowNs();
        RunJob(job);
        metrics.busy_ns->Add(obs::NowNs() - busy_start);
      } else {
        RunJob(job);
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
    }
    done_cv_.notify_one();
  }
}

bool ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             const CancellationToken* cancel) {
  if (count == 0) return true;
  if (workers_.empty() || count == 1) {
    bool complete = true;
    const auto run_inline = [&] {
      for (std::size_t i = 0; i < count; ++i) {
        if (cancel != nullptr && cancel->cancelled()) {
          complete = false;
          return;
        }
        body(i);
      }
    };
    const ScopedBusy busy;
    if (obs::Enabled()) {
      const PoolMetrics metrics;
      metrics.inline_jobs->Add(1);
      metrics.tasks->Add(count);
      const std::uint64_t busy_start = obs::NowNs();
      run_inline();
      metrics.busy_ns->Add(obs::NowNs() - busy_start);
    } else {
      run_inline();
    }
    return complete;
  }

  const std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Job job;
  job.body = &body;
  job.count = count;
  job.cancel = cancel;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++job_seq_;
  }
  work_cv_.notify_all();
  {
    const ScopedBusy busy;
    if (obs::Enabled()) {
      const PoolMetrics metrics;
      metrics.jobs->Add(1);
      metrics.tasks->Add(count);
      const std::uint64_t busy_start = obs::NowNs();
      RunJob(&job);  // the submitting thread participates
      metrics.busy_ns->Add(obs::NowNs() - busy_start);
    } else {
      RunJob(&job);  // the submitting thread participates
    }
  }
  {
    // Retract the job under the lock so a late-waking worker cannot pick it
    // up, then wait for every worker that did to leave RunJob: `job` lives
    // on this stack frame and must outlive all references to it.
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  }
  return !job.cancelled.load(std::memory_order_relaxed);
}

PoolLiveStats CurrentPoolLiveStats() {
  PoolLiveStats stats;
  stats.live_threads = g_live_threads.load(std::memory_order_relaxed);
  stats.busy_participants =
      g_busy_participants.load(std::memory_order_relaxed);
  return stats;
}

void UpdatePoolLiveGauges() {
  if (!obs::Enabled()) return;
  const PoolLiveStats stats = CurrentPoolLiveStats();
  auto& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("tsdist.pool.live_threads")
      .Set(static_cast<double>(stats.live_threads));
  registry.GetGauge("tsdist.pool.busy_participants")
      .Set(static_cast<double>(stats.busy_participants));
}

}  // namespace tsdist
