#include "src/core/registry.h"

#include <algorithm>

#include "src/elastic/elastic_all.h"
#include "src/kernel/kernel_measure.h"
#include "src/lockstep/lockstep_all.h"
#include "src/sliding/ncc_measures.h"

namespace tsdist {

void Registry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

MeasurePtr Registry::Create(const std::string& name,
                            const ParamMap& params) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  return it->second(params);
}

bool Registry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> Registry::Names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;  // std::map keeps keys sorted
}

std::vector<std::string> Registry::NamesInCategory(
    MeasureCategory category) const {
  std::vector<std::string> out;
  for (const auto& [name, factory] : factories_) {
    const MeasurePtr measure = factory({});
    if (measure != nullptr && measure->category() == category) {
      out.push_back(name);
    }
  }
  return out;
}

const Registry& Registry::Global() {
  static const Registry* kGlobal = [] {
    auto* registry = new Registry();
    RegisterLockStepMeasures(registry);
    RegisterSlidingMeasures(registry);
    RegisterElasticMeasures(registry);
    RegisterKernelMeasures(registry);
    return registry;
  }();
  return *kGlobal;
}

}  // namespace tsdist
