// Abstract interface shared by every distance measure in the library.
//
// The SIGMOD'20 study groups measures into five categories (lock-step,
// sliding, elastic, kernel, embedding). All but the embedding category are
// expressed as pairwise functions d(x, y) and implement this interface;
// embedding measures are dataset-level transforms (see
// src/embedding/representation.h) whose induced measure is ED over the
// learned representations.

#ifndef TSDIST_CORE_DISTANCE_MEASURE_H_
#define TSDIST_CORE_DISTANCE_MEASURE_H_

#include <cstddef>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace tsdist {

/// Read-only view over one series' observations, as handed to measures.
using SeriesView = std::span<const double>;

/// Category of a distance measure, following the paper's taxonomy.
enum class MeasureCategory {
  kLockStep,   ///< compares the i-th point of one series with the i-th of the other
  kSliding,    ///< compares one series with all shifted versions of the other
  kElastic,    ///< non-linear one-to-many alignment via dynamic programming
  kKernel,     ///< p.s.d. similarity function turned into a distance
  kEmbedding,  ///< ED over a learned similarity-preserving representation
};

/// Returns a human-readable name for a category ("lock-step", ...).
std::string ToString(MeasureCategory category);

/// Asymptotic per-comparison cost class, used by the accuracy-to-runtime
/// analysis (Figure 9).
enum class CostClass {
  kLinear,        ///< O(m)
  kLinearithmic,  ///< O(m log m)
  kQuadratic,     ///< O(m^2)
};

/// Named parameter bag for measure construction and tuning, e.g.
/// {{"delta", 10}, {"epsilon", 0.2}}.
using ParamMap = std::map<std::string, double>;

/// Renders a ParamMap as "k1=v1,k2=v2" for logs and bench output.
std::string ToString(const ParamMap& params);

/// A dissimilarity function over pairs of equal-length time series.
///
/// Implementations must be (a) deterministic and (b) safe to call
/// concurrently from multiple threads on distinct inputs (const calls share
/// no mutable state). Lower values mean more similar; similarity-native
/// measures (cross-correlation, kernels) are converted so this convention
/// holds uniformly.
class DistanceMeasure {
 public:
  virtual ~DistanceMeasure() = default;

  /// Dissimilarity between two series. Implementations may require equal
  /// lengths (all the paper's workloads are rectangular after resampling).
  virtual double Distance(std::span<const double> a,
                          std::span<const double> b) const = 0;

  /// Unique registry name, e.g. "lorentzian", "dtw", "nccc".
  virtual std::string name() const = 0;

  /// Taxonomy bucket for this measure.
  virtual MeasureCategory category() const = 0;

  /// True when the measure satisfies the metric axioms (identity, symmetry,
  /// triangle inequality) on its valid domain. E.g. MSM and ERP are metrics;
  /// DTW is not.
  virtual bool is_metric() const { return false; }

  /// True when d(a, b) == d(b, a) for all inputs. Most measures are
  /// symmetric; the known exceptions (Kullback-Leibler, K divergence,
  /// Pearson chi^2, Neyman chi^2, ASD) override this to false.
  /// PairwiseEngine::ComputeSelf relies on this to decide whether the
  /// self-dissimilarity matrix can be mirrored from one triangle.
  virtual bool symmetric() const { return true; }

  /// Distance with an early-abandon cutoff. Contract:
  ///  * if the true distance is < `cutoff`, returns exactly Distance(a, b)
  ///    (bit-identical — same accumulation order);
  ///  * otherwise it may stop early and return any value >= cutoff (a
  ///    partial accumulation that already reached the cutoff, or the true
  ///    distance).
  /// Pruned 1-NN search passes its best-so-far as the cutoff: a return
  /// value >= cutoff can never become the new nearest neighbour under the
  /// strict `<` comparison, so predictions are unchanged.
  /// The default ignores the cutoff and computes the full distance, which
  /// trivially satisfies the contract. Overridden by measures whose
  /// accumulation is monotone (DTW, the Minkowski and L1 lock-step
  /// families).
  virtual double EarlyAbandonDistance(std::span<const double> a,
                                      std::span<const double> b,
                                      double /*cutoff*/) const {
    return Distance(a, b);
  }

  /// True when DistanceBatch / EarlyAbandonDistanceBatch are backed by a
  /// vectorized kernel rather than the generic one-pair loop below.
  /// PairwiseEngine uses this to attribute batch-kernel usage in metrics;
  /// callers never need to check it for correctness — the defaults are
  /// always valid.
  virtual bool has_batch_kernel() const { return false; }

  /// Distances from one query against many references:
  /// out[i] = Distance(query, refs[i]). `out.size() == refs.size()`.
  /// Batched calls MUST return bit-identical values to one-pair calls —
  /// overrides may amortize dispatch and interleave loads, but not change
  /// per-pair accumulation order.
  virtual void DistanceBatch(SeriesView query,
                             std::span<const SeriesView> refs,
                             std::span<double> out) const {
    for (std::size_t i = 0; i < refs.size(); ++i) {
      out[i] = Distance(query, refs[i]);
    }
  }

  /// Early-abandoning batch: each pair is evaluated under the
  /// EarlyAbandonDistance contract against `cutoff` tightened by the best
  /// value seen *earlier in this batch* (out[i] uses
  /// min(cutoff, out[0..i-1]...) as its effective cutoff, exactly as a
  /// caller looping EarlyAbandonDistance and tracking its own best would).
  /// Entries >= the effective cutoff may be partial accumulations (possibly
  /// +infinity); entries below it are exact and bit-identical to
  /// Distance(). NaN results never tighten the cutoff.
  virtual void EarlyAbandonDistanceBatch(SeriesView query,
                                         std::span<const SeriesView> refs,
                                         double cutoff,
                                         std::span<double> out) const {
    double local = cutoff;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const double d = EarlyAbandonDistance(query, refs[i], local);
      out[i] = d;
      if (d < local) local = d;
    }
  }

  /// Per-comparison asymptotic cost.
  virtual CostClass cost_class() const = 0;

  /// Parameters this instance was constructed with (empty for
  /// parameter-free measures).
  virtual ParamMap params() const { return {}; }
};

using MeasurePtr = std::unique_ptr<DistanceMeasure>;

}  // namespace tsdist

#endif  // TSDIST_CORE_DISTANCE_MEASURE_H_
