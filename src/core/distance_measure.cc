#include "src/core/distance_measure.h"

#include <sstream>

namespace tsdist {

std::string ToString(MeasureCategory category) {
  switch (category) {
    case MeasureCategory::kLockStep:
      return "lock-step";
    case MeasureCategory::kSliding:
      return "sliding";
    case MeasureCategory::kElastic:
      return "elastic";
    case MeasureCategory::kKernel:
      return "kernel";
    case MeasureCategory::kEmbedding:
      return "embedding";
  }
  return "unknown";
}

std::string ToString(const ParamMap& params) {
  std::ostringstream os;
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) os << ",";
    os << key << "=" << value;
    first = false;
  }
  return os.str();
}

}  // namespace tsdist
