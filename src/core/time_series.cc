#include "src/core/time_series.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace tsdist {

double TimeSeries::Mean() const {
  if (values_.empty()) return 0.0;
  const double sum = std::accumulate(values_.begin(), values_.end(), 0.0);
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::StdDev() const {
  if (values_.empty()) return 0.0;
  const double mu = Mean();
  double acc = 0.0;
  for (double v : values_) {
    const double d = v - mu;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double TimeSeries::Norm() const {
  double acc = 0.0;
  for (double v : values_) acc += v * v;
  return std::sqrt(acc);
}

double TimeSeries::Min() const {
  assert(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::Max() const {
  assert(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::Median() const {
  assert(!values_.empty());
  std::vector<double> tmp(values_.begin(), values_.end());
  std::sort(tmp.begin(), tmp.end());
  const std::size_t n = tmp.size();
  if (n % 2 == 1) return tmp[n / 2];
  return 0.5 * (tmp[n / 2 - 1] + tmp[n / 2]);
}

double Dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace tsdist
