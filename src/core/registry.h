// Name-based factory registry for distance measures.
//
// Benchmarks, examples, and the tuning harness construct measures by name +
// parameter bag ("dtw" with {delta: 10}), which keeps experiment definitions
// declarative (Table 4 of the paper is literally a list of names and grids).

#ifndef TSDIST_CORE_REGISTRY_H_
#define TSDIST_CORE_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/distance_measure.h"

namespace tsdist {

/// Maps measure names to factories. Thread-compatible: build it once, then
/// share it read-only.
class Registry {
 public:
  using Factory = std::function<MeasurePtr(const ParamMap&)>;

  /// Registers a factory under `name`; overwrites any existing entry.
  void Register(const std::string& name, Factory factory);

  /// Instantiates a measure. Returns nullptr for unknown names.
  MeasurePtr Create(const std::string& name, const ParamMap& params = {}) const;

  /// True when `name` is registered.
  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

  /// All registered names in the given category, sorted. Instantiates each
  /// measure with default parameters to query its category.
  std::vector<std::string> NamesInCategory(MeasureCategory category) const;

  /// The global registry with every built-in pairwise measure (lock-step,
  /// sliding, elastic, kernel). Embedding measures are dataset-level
  /// transforms and live in src/embedding/ instead.
  static const Registry& Global();

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace tsdist

#endif  // TSDIST_CORE_REGISTRY_H_
