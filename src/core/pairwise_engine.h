// Dissimilarity-matrix computation engine.
//
// The evaluation framework of the paper decouples (1) dissimilarity-matrix
// computation, (2) parameter tuning, and (3) measure evaluation. This engine
// implements step (1): given two collections of series and a measure, it
// produces the matrices the 1-NN classifier consumes —
//   W (p x p): train vs train, used for leave-one-out tuning, and
//   E (r x p): test vs train, used for test accuracy.
// Rows are distributed across threads; output is bit-identical regardless of
// thread count because each cell is an independent pure computation.
//
// Both entry points validate that every series is non-empty and throw
// std::invalid_argument naming the offending index otherwise, and report
// per-row timing plus cell counts to the obs layer (see src/obs/obs.h:
// counters tsdist.pairwise.cells[.<measure>], histogram
// tsdist.pairwise.row_ns.<measure>). Instrumentation never alters results.

#ifndef TSDIST_CORE_PAIRWISE_ENGINE_H_
#define TSDIST_CORE_PAIRWISE_ENGINE_H_

#include <cstddef>
#include <vector>

#include "src/core/distance_measure.h"
#include "src/core/time_series.h"
#include "src/linalg/matrix.h"

namespace tsdist {

/// Computes dissimilarity matrices between series collections.
class PairwiseEngine {
 public:
  /// `num_threads` = 0 selects the hardware concurrency.
  explicit PairwiseEngine(std::size_t num_threads = 0);

  /// Dissimilarity matrix between `queries` (rows) and `references`
  /// (columns): out(i, j) = d(queries[i], references[j]).
  Matrix Compute(const std::vector<TimeSeries>& queries,
                 const std::vector<TimeSeries>& references,
                 const DistanceMeasure& measure) const;

  /// Symmetric self-dissimilarity matrix W over one collection. When
  /// `measure` is symmetric this computes only the upper triangle and
  /// mirrors it; use Compute() for asymmetric measures.
  Matrix ComputeSelf(const std::vector<TimeSeries>& series,
                     const DistanceMeasure& measure) const;

  std::size_t num_threads() const { return num_threads_; }

 private:
  std::size_t num_threads_;
};

}  // namespace tsdist

#endif  // TSDIST_CORE_PAIRWISE_ENGINE_H_
