// Dissimilarity-matrix computation engine and pruned 1-NN search.
//
// The evaluation framework of the paper decouples (1) dissimilarity-matrix
// computation, (2) parameter tuning, and (3) measure evaluation. This engine
// implements step (1): given two collections of series and a measure, it
// produces the matrices the 1-NN classifier consumes —
//   W (p x p): train vs train, used for leave-one-out tuning, and
//   E (r x p): test vs train, used for test accuracy.
// Rows are distributed across a persistent thread pool owned by the engine;
// output is bit-identical regardless of thread count because each cell is an
// independent pure computation.
//
// For 1-NN workloads the full matrix is wasteful: only each row's argmin is
// consumed. The NearestNeighbor* entry points compute exactly those argmins
// through the LB_Kim -> LB_Keogh -> early-abandoned-distance cascade
// (src/elastic/lower_bounds.h, DistanceMeasure::EarlyAbandonDistance),
// skipping most full evaluations for DTW while returning bit-identical
// predictions to the matrix path. See docs/PRUNING.md.
//
// Input validation: every entry point checks that all series are non-empty
// and of equal length, throwing std::invalid_argument naming the offending
// series otherwise. Per-row timing, cell counts, and prune/abandon rates are
// reported to the obs layer (counters tsdist.pairwise.*, tsdist.prune.*;
// see docs/OBSERVABILITY.md). Instrumentation never alters results.

#ifndef TSDIST_CORE_PAIRWISE_ENGINE_H_
#define TSDIST_CORE_PAIRWISE_ENGINE_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "src/core/distance_measure.h"
#include "src/core/thread_pool.h"
#include "src/core/time_series.h"
#include "src/linalg/matrix.h"
#include "src/resilience/cancellation.h"

namespace tsdist {

/// Result of one pruned nearest-neighbour query.
struct NearestNeighbor {
  std::size_t index = 0;  ///< position in the reference collection
  double distance = std::numeric_limits<double>::infinity();
};

/// Resilience controls for one matrix computation. Default-constructed
/// options reproduce the plain entry points exactly (no cancellation, no
/// checkpointing, no overhead).
struct ComputeOptions {
  /// Cooperative cancellation: polled between rows (or tiles, when
  /// checkpointing); null means never cancelled.
  const CancellationToken* cancel = nullptr;

  /// Non-empty enables tile-level checkpointing into this directory (one
  /// directory per matrix — see src/resilience/checkpoint.h for the resume
  /// and validation semantics).
  std::string checkpoint_dir;

  /// Rows per checkpoint tile. Smaller tiles bound the re-computation after
  /// a crash more tightly but fsync more often.
  std::size_t tile_rows = 32;
};

/// Outcome of a cancellable/checkpointed matrix computation.
struct ComputeResult {
  Matrix matrix;
  /// True when every cell was computed. False means the run was cancelled
  /// (budget expiry or interrupt) and `matrix` is incomplete — consumers
  /// must treat the cell as DNF, never read the partial values.
  bool complete = true;
  std::size_t tiles_total = 0;     ///< 0 when checkpointing was off
  std::size_t tiles_resumed = 0;   ///< tiles restored from a previous run
  std::size_t tiles_computed = 0;  ///< tiles computed (and persisted) now
};

/// Computes dissimilarity matrices between series collections.
class PairwiseEngine {
 public:
  /// Sentinel for NearestNeighborRow: exclude no reference.
  static constexpr std::size_t kNoSkip = std::numeric_limits<std::size_t>::max();

  /// Sentinel index returned when a query found no valid neighbour (every
  /// candidate distance was NaN). The accuracy helpers in
  /// src/classify/one_nn.h count it as a misclassification, matching the
  /// matrix path's policy for NaN rows.
  static constexpr std::size_t kNoNeighbor =
      std::numeric_limits<std::size_t>::max() - 1;

  /// `num_threads` = 0 selects the hardware concurrency. The engine owns a
  /// persistent thread pool of that size for the lifetime of the object.
  explicit PairwiseEngine(std::size_t num_threads = 0);

  /// Dissimilarity matrix between `queries` (rows) and `references`
  /// (columns): out(i, j) = d(queries[i], references[j]).
  Matrix Compute(const std::vector<TimeSeries>& queries,
                 const std::vector<TimeSeries>& references,
                 const DistanceMeasure& measure) const;

  /// Self-dissimilarity matrix W over one collection. When
  /// `measure.symmetric()` is true, only the upper triangle is computed and
  /// mirrored; asymmetric measures (Kullback-Leibler, Pearson/Neyman chi^2,
  /// K divergence, ASD) get the full matrix so that
  /// ComputeSelf(s) == Compute(s, s) holds for every measure (up to last-ulp
  /// noise for symmetric measures whose evaluation is not bitwise
  /// argument-order invariant, e.g. SINK's normalization divisions).
  Matrix ComputeSelf(const std::vector<TimeSeries>& series,
                     const DistanceMeasure& measure) const;

  /// Cancellable / checkpointed variant of Compute(). With default options
  /// this is exactly Compute(); with a checkpoint directory, completed tiles
  /// stream to disk and a restarted run resumes from them, producing a
  /// bit-identical matrix. A cancelled run returns complete == false after
  /// persisting every tile that finished.
  ComputeResult Compute(const std::vector<TimeSeries>& queries,
                        const std::vector<TimeSeries>& references,
                        const DistanceMeasure& measure,
                        const ComputeOptions& options) const;

  /// Cancellable / checkpointed variant of ComputeSelf(). Tiles store rows
  /// exactly as computed (upper part only for symmetric measures); the
  /// mirror pass runs after all tiles on fresh and resumed runs alike, so
  /// resumed matrices stay bit-identical.
  ComputeResult ComputeSelf(const std::vector<TimeSeries>& series,
                            const DistanceMeasure& measure,
                            const ComputeOptions& options) const;

  /// Exact 1-NN of `query` among `references` under `measure`, via the
  /// LB_Kim -> LB_Keogh -> early-abandon cascade when `measure` is DTW
  /// (plain early abandoning otherwise). `skip` excludes one reference —
  /// the leave-one-out self-match. Ties break to the lowest index, exactly
  /// like the argmin over a Compute() row; NaN distances never win.
  /// Builds the DTW envelopes of `references` on each call; prefer the
  /// batch entry points below to amortize that cost over many queries.
  /// Throws std::invalid_argument when `references` is empty.
  NearestNeighbor NearestNeighborRow(const TimeSeries& query,
                                     const std::vector<TimeSeries>& references,
                                     const DistanceMeasure& measure,
                                     std::size_t skip = kNoSkip) const;

  /// Pruned counterpart of Compute() + per-row argmin: the 1-NN reference
  /// index for every query. Predictions are bit-identical to
  /// NearestNeighborIndices(Compute(queries, references, measure)).
  std::vector<std::size_t> NearestNeighborIndicesPruned(
      const std::vector<TimeSeries>& queries,
      const std::vector<TimeSeries>& references,
      const DistanceMeasure& measure) const;

  /// Pruned counterpart of ComputeSelf() + leave-one-out argmin: for each
  /// series, the index of its nearest *other* series. Predictions are
  /// bit-identical to the row argmins (diagonal excluded) of
  /// ComputeSelf(series, measure). Requires at least 2 series.
  std::vector<std::size_t> LeaveOneOutNeighborsPruned(
      const std::vector<TimeSeries>& series,
      const DistanceMeasure& measure) const;

  std::size_t num_threads() const { return num_threads_; }

 private:
  std::size_t num_threads_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tsdist

#endif  // TSDIST_CORE_PAIRWISE_ENGINE_H_
