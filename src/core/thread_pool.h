// Persistent thread pool for row-parallel matrix jobs.
//
// PairwiseEngine used to spawn one wave of std::threads per matrix, which for
// supervised tuning meant |grid| spawn waves per dataset. This pool keeps the
// workers alive for the lifetime of the engine and hands them work through a
// shared atomic index, so repeated small jobs (one LOOCV matrix per grid
// candidate) pay one condition-variable broadcast instead of thread creation.
//
// Scheduling is dynamic: workers (and the submitting thread, which
// participates) claim indices one at a time with a relaxed fetch_add, exactly
// like the previous per-matrix spawning code. Each index is an independent
// pure computation, so results remain bit-identical regardless of worker
// count or claim order.
//
// Utilization telemetry: the pool reports to the obs layer so every
// BENCH_*.json records how busy the workers actually were (counters
// tsdist.pool.jobs / inline_jobs / tasks / busy_ns / idle_ns, gauge
// tsdist.pool.threads — see docs/OBSERVABILITY.md). Timing is per *job*
// per participant, never per index, so the hot claim loop stays two relaxed
// atomics; everything is guarded by obs::Enabled() and compiles out under
// TSDIST_OBS_NOOP.

#ifndef TSDIST_CORE_THREAD_POOL_H_
#define TSDIST_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/resilience/cancellation.h"

namespace tsdist {

/// Fixed-size pool of persistent worker threads executing indexed loops.
class ThreadPool {
 public:
  /// Creates a pool that runs jobs on `num_threads` threads total: the
  /// submitting thread plus `num_threads - 1` persistent workers.
  /// `num_threads` = 0 selects the hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers. Must not be called while a ParallelFor is running.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a job runs on (workers + the submitting thread).
  std::size_t num_threads() const { return workers_.size() + 1; }

  /// Runs `body(i)` for every i in [0, count), distributing indices
  /// dynamically across the pool; blocks until all indices are done. The
  /// calling thread participates. One job at a time: concurrent calls from
  /// different threads are serialized.
  ///
  /// When `cancel` is non-null, workers stop claiming new indices once the
  /// token reports cancelled; indices already being executed run to
  /// completion (cooperative cancellation never tears a body invocation).
  /// Returns true iff every index in [0, count) was executed — false means
  /// at least one index was skipped, so the output is incomplete. With
  /// `cancel == nullptr` the check costs one branch per index and the return
  /// value is always true.
  bool ParallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body,
                   const CancellationToken* cancel = nullptr);

 private:
  // One indexed loop handed to the workers; lives on the ParallelFor stack.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};  // next unclaimed index
    const CancellationToken* cancel = nullptr;
    std::atomic<bool> cancelled{false};  // a *claimed* index was skipped
  };

  // Claims and runs indices until the job is exhausted.
  static void RunJob(Job* job);

  void WorkerLoop();

  std::mutex submit_mu_;  // serializes ParallelFor callers

  std::mutex mu_;  // guards job_/job_seq_/stop_
  std::condition_variable work_cv_;  // workers wait here for a new job
  std::condition_variable done_cv_;  // submitter waits here for completion
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;  // bumped per job so workers never re-run one
  int active_workers_ = 0;     // workers currently inside RunJob
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

/// Instantaneous pool telemetry across every ThreadPool in the process,
/// maintained by cheap per-job (not per-index) atomics.
struct PoolLiveStats {
  std::uint64_t live_threads = 0;       ///< worker threads currently alive
  std::uint64_t busy_participants = 0;  ///< threads currently inside a job
                                        ///< (workers + submitters, inline too)
};
PoolLiveStats CurrentPoolLiveStats();

/// Publishes CurrentPoolLiveStats() into the gauges
/// `tsdist.pool.live_threads` and `tsdist.pool.busy_participants`. The
/// telemetry server's background sampler calls this periodically so long
/// runs expose live pool state; no-op when obs is disabled.
void UpdatePoolLiveGauges();

}  // namespace tsdist

#endif  // TSDIST_CORE_THREAD_POOL_H_
