#include "src/core/dataset.h"

#include <set>
#include <utility>

namespace tsdist {

Dataset::Dataset(std::string name, std::vector<TimeSeries> train,
                 std::vector<TimeSeries> test)
    : name_(std::move(name)), train_(std::move(train)), test_(std::move(test)) {}

std::size_t Dataset::series_length() const {
  if (!train_.empty()) return train_.front().size();
  if (!test_.empty()) return test_.front().size();
  return 0;
}

std::size_t Dataset::num_classes() const {
  std::set<int> labels;
  for (const auto& s : train_) labels.insert(s.label());
  for (const auto& s : test_) labels.insert(s.label());
  return labels.size();
}

std::vector<int> Dataset::train_labels() const {
  std::vector<int> out;
  out.reserve(train_.size());
  for (const auto& s : train_) out.push_back(s.label());
  return out;
}

std::vector<int> Dataset::test_labels() const {
  std::vector<int> out;
  out.reserve(test_.size());
  for (const auto& s : test_) out.push_back(s.label());
  return out;
}

bool Dataset::IsRectangular() const {
  const std::size_t m = series_length();
  for (const auto& s : train_) {
    if (s.size() != m) return false;
  }
  for (const auto& s : test_) {
    if (s.size() != m) return false;
  }
  return true;
}

}  // namespace tsdist
