// Class-labeled time-series dataset with a fixed train/test split.
//
// Mirrors the UCR archive convention used by the paper: every dataset ships a
// predetermined train and test partition ("we respect the split of training
// and test sets provided by the UCR archive"), making evaluation
// deterministic and reproducible.
//
// Storage: each TimeSeries keeps its values in a 64-byte-aligned buffer
// (simd::AlignedVector, see src/simd/aligned.h), so whole-series views
// handed to the SIMD batch kernels start on a cache-line boundary. The
// alignment is a performance property, never a correctness requirement —
// kernels accept arbitrary (e.g. subspan) pointers. See docs/KERNELS.md.

#ifndef TSDIST_CORE_DATASET_H_
#define TSDIST_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/time_series.h"

namespace tsdist {

/// A named collection of labeled time series split into train and test sets.
/// All series within a dataset have equal length (ragged inputs are resampled
/// by the loader before a Dataset is constructed).
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, std::vector<TimeSeries> train,
          std::vector<TimeSeries> test);

  const std::string& name() const { return name_; }

  const std::vector<TimeSeries>& train() const { return train_; }
  const std::vector<TimeSeries>& test() const { return test_; }
  std::vector<TimeSeries>& mutable_train() { return train_; }
  std::vector<TimeSeries>& mutable_test() { return test_; }

  std::size_t train_size() const { return train_.size(); }
  std::size_t test_size() const { return test_.size(); }

  /// Length of the series in this dataset (0 when empty).
  std::size_t series_length() const;

  /// Number of distinct class labels across both splits.
  std::size_t num_classes() const;

  /// Class labels of the training split, in order.
  std::vector<int> train_labels() const;
  /// Class labels of the test split, in order.
  std::vector<int> test_labels() const;

  /// True when every series in both splits has the same length.
  bool IsRectangular() const;

 private:
  std::string name_;
  std::vector<TimeSeries> train_;
  std::vector<TimeSeries> test_;
};

}  // namespace tsdist

#endif  // TSDIST_CORE_DATASET_H_
