#include "src/data/generators.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <numbers>
#include <vector>

namespace tsdist {

namespace data_internal {

std::vector<double> TimeWarp(const std::vector<double>& values, double warp,
                             Rng& rng) {
  const std::size_t m = values.size();
  if (m < 3 || warp <= 0.0) return values;
  // Build a smooth monotone time map from a few random anchor offsets,
  // interpolated with cosine smoothing, then resample by linear
  // interpolation.
  constexpr std::size_t kAnchors = 5;
  std::vector<double> offsets(kAnchors);
  for (auto& o : offsets) {
    o = rng.Uniform(-warp, warp) * static_cast<double>(m);
  }
  offsets.front() = 0.0;
  offsets.back() = 0.0;

  std::vector<double> out(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double pos = static_cast<double>(i) / static_cast<double>(m - 1) *
                       static_cast<double>(kAnchors - 1);
    const std::size_t a = std::min<std::size_t>(static_cast<std::size_t>(pos),
                                                kAnchors - 2);
    const double t = pos - static_cast<double>(a);
    const double smooth = 0.5 - 0.5 * std::cos(t * std::numbers::pi);
    const double offset = offsets[a] * (1.0 - smooth) + offsets[a + 1] * smooth;
    double src = static_cast<double>(i) + offset;
    src = std::clamp(src, 0.0, static_cast<double>(m - 1));
    const std::size_t lo = static_cast<std::size_t>(src);
    const std::size_t hi = std::min(lo + 1, m - 1);
    const double frac = src - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[hi] * frac;
  }
  return out;
}

std::vector<double> CircularShift(const std::vector<double>& values,
                                  std::ptrdiff_t shift) {
  const std::size_t m = values.size();
  if (m == 0) return values;
  std::vector<double> out(m);
  const std::ptrdiff_t sm = static_cast<std::ptrdiff_t>(m);
  for (std::size_t i = 0; i < m; ++i) {
    std::ptrdiff_t src = (static_cast<std::ptrdiff_t>(i) - shift) % sm;
    if (src < 0) src += sm;
    out[i] = values[static_cast<std::size_t>(src)];
  }
  return out;
}

void AddNoise(std::vector<double>* values, double stddev, Rng& rng) {
  if (stddev <= 0.0) return;
  for (double& v : *values) v += rng.Gaussian(0.0, stddev);
}

std::vector<double> Distort(const std::vector<double>& prototype,
                            const GeneratorOptions& options, Rng& rng) {
  std::vector<double> out = TimeWarp(prototype, options.warp, rng);
  if (options.max_shift > 0) {
    const std::ptrdiff_t span = static_cast<std::ptrdiff_t>(options.max_shift);
    const std::ptrdiff_t shift =
        static_cast<std::ptrdiff_t>(rng.UniformInt(2 * options.max_shift + 1)) -
        span;
    out = CircularShift(out, shift);
  }
  if (options.scale_jitter > 0.0) {
    const double scale =
        1.0 + rng.Uniform(-options.scale_jitter, options.scale_jitter);
    for (double& v : out) v *= scale;
  }
  if (options.trend > 0.0) {
    const double slope = rng.Uniform(-options.trend, options.trend);
    const double m = static_cast<double>(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += slope * static_cast<double>(i) / m;
    }
  }
  AddNoise(&out, options.noise, rng);
  return out;
}

}  // namespace data_internal

namespace {

using data_internal::Distort;

constexpr double kPi = std::numbers::pi;

// Assembles a Dataset from a per-class prototype factory. The factory is
// called freshly for every instance (prototypes themselves may be
// stochastic), then the shared distortion pipeline is applied.
Dataset BuildFromPrototypes(
    const std::string& name, std::size_t num_classes,
    const GeneratorOptions& options,
    const std::function<std::vector<double>(int cls, Rng& rng)>& prototype) {
  Rng rng(options.seed);
  std::vector<TimeSeries> train;
  std::vector<TimeSeries> test;
  for (int cls = 0; cls < static_cast<int>(num_classes); ++cls) {
    for (std::size_t i = 0; i < options.train_per_class; ++i) {
      train.emplace_back(Distort(prototype(cls, rng), options, rng), cls);
    }
    for (std::size_t i = 0; i < options.test_per_class; ++i) {
      test.emplace_back(Distort(prototype(cls, rng), options, rng), cls);
    }
  }
  // Shuffle so that class blocks do not trivially align with indices.
  const std::vector<std::size_t> train_perm = rng.Permutation(train.size());
  const std::vector<std::size_t> test_perm = rng.Permutation(test.size());
  std::vector<TimeSeries> train_shuffled(train.size());
  std::vector<TimeSeries> test_shuffled(test.size());
  for (std::size_t i = 0; i < train.size(); ++i) {
    train_shuffled[i] = std::move(train[train_perm[i]]);
  }
  for (std::size_t i = 0; i < test.size(); ++i) {
    test_shuffled[i] = std::move(test[test_perm[i]]);
  }
  return Dataset(name, std::move(train_shuffled), std::move(test_shuffled));
}

// A smooth gaussian bump centred at `center` (fractions of m).
void AddBump(std::vector<double>* v, double center, double width,
             double height) {
  const double m = static_cast<double>(v->size());
  for (std::size_t i = 0; i < v->size(); ++i) {
    const double x = (static_cast<double>(i) / m - center) / width;
    (*v)[i] += height * std::exp(-0.5 * x * x);
  }
}

}  // namespace

Dataset MakeCbf(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "CBF", 3, options, [m](int cls, Rng& rng) {
        // Classic CBF: random onset a, offset b, then cylinder (plateau),
        // bell (ramp up), or funnel (ramp down) of height ~6.
        std::vector<double> v(m, 0.0);
        const std::size_t a = 16 * m / 128 + rng.UniformInt(m / 4);
        const std::size_t b =
            std::min(m - 1, a + m / 4 + rng.UniformInt(m / 3));
        const double height = 6.0 + rng.Gaussian(0.0, 1.0);
        const double span = static_cast<double>(b - a + 1);
        for (std::size_t i = a; i <= b && i < m; ++i) {
          const double frac = static_cast<double>(i - a + 1) / span;
          if (cls == 0) {
            v[i] = height;  // cylinder
          } else if (cls == 1) {
            v[i] = height * frac;  // bell
          } else {
            v[i] = height * (1.0 - frac);  // funnel
          }
        }
        return v;
      });
}

Dataset MakeGunPointLike(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "GunPointLike", 2, options, [m](int cls, Rng& rng) {
        // Smooth raise-hold-lower motion; class 1 adds a small dip before
        // the hold (the "gun draw" artifact).
        std::vector<double> v(m, 0.0);
        const double center = 0.5 + rng.Uniform(-0.05, 0.05);
        AddBump(&v, center, 0.16, 1.0);
        if (cls == 1) {
          AddBump(&v, center - 0.22, 0.035, -0.25);
          AddBump(&v, center + 0.22, 0.035, 0.12);
        }
        return v;
      });
}

Dataset MakeEcgLike(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "ECGLike", 3, options, [m](int cls, Rng& rng) {
        // Two-beat waveform: P wave, QRS complex, T wave per beat.
        std::vector<double> v(m, 0.0);
        const double jitter = rng.Uniform(-0.02, 0.02);
        for (int beat = 0; beat < 2; ++beat) {
          const double base = 0.25 + 0.5 * beat + jitter;
          AddBump(&v, base - 0.10, 0.02, 0.25);            // P
          AddBump(&v, base - 0.015, 0.008, -0.4);          // Q
          AddBump(&v, base, 0.010, 2.4);                   // R
          AddBump(&v, base + 0.015, 0.008, -0.5);          // S
          const double t_sign = (cls == 2) ? -1.0 : 1.0;   // inverted T
          AddBump(&v, base + 0.10, 0.03, 0.5 * t_sign);    // T
        }
        if (cls == 1) {
          // Premature extra beat between the two normal beats.
          AddBump(&v, 0.5 + jitter, 0.008, 1.6);
        }
        return v;
      });
}

Dataset MakeShiftedEvents(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  GeneratorOptions opts = options;
  // Force large random phase shifts; that is the point of this regime.
  opts.max_shift = std::max<std::size_t>(opts.max_shift, m / 3);
  return BuildFromPrototypes(
      "ShiftedEvents", 3, opts, [m](int cls, Rng& rng) {
        std::vector<double> v(m, 0.0);
        const double jitter = rng.Uniform(-0.01, 0.01);
        if (cls == 0) {
          AddBump(&v, 0.5 + jitter, 0.04, 2.0);  // single peak
        } else if (cls == 1) {
          AddBump(&v, 0.42 + jitter, 0.035, 1.6);  // double peak
          AddBump(&v, 0.58 + jitter, 0.035, 1.6);
        } else {
          AddBump(&v, 0.5 + jitter, 0.05, 1.8);  // peak with side dips
          AddBump(&v, 0.38 + jitter, 0.03, -0.9);
          AddBump(&v, 0.62 + jitter, 0.03, -0.9);
        }
        return v;
      });
}

Dataset MakeWarpedPrototypes(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  GeneratorOptions opts = options;
  opts.warp = std::max(opts.warp, 0.12);  // force meaningful local warping
  return BuildFromPrototypes(
      "WarpedPrototypes", 3, opts, [m](int cls, Rng& rng) {
        std::vector<double> v(m, 0.0);
        const double jitter = rng.Uniform(-0.01, 0.01);
        // Same three bumps per class, but with class-specific ordering of
        // heights — local alignment recovers the identity under warping.
        const double heights[3][3] = {
            {2.0, 1.0, 1.5}, {1.0, 2.0, 1.5}, {1.5, 1.0, 2.0}};
        AddBump(&v, 0.25 + jitter, 0.05, heights[cls][0]);
        AddBump(&v, 0.50 + jitter, 0.05, heights[cls][1]);
        AddBump(&v, 0.75 + jitter, 0.05, heights[cls][2]);
        return v;
      });
}

Dataset MakeScaledPatterns(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  GeneratorOptions opts = options;
  opts.scale_jitter = 0.0;  // scale is controlled per-instance below
  return BuildFromPrototypes(
      "ScaledPatterns", 2, opts, [m](int cls, Rng& rng) {
        // Both classes are sinusoids; class 1 has a second harmonic. Each
        // instance gets a large random amplitude and offset, so raw-value
        // measures fail without normalization.
        std::vector<double> v(m, 0.0);
        // Log-uniform amplitude and a wide offset range make the scale
        // confound dominate raw-value comparisons.
        const double amp = std::exp(rng.Uniform(std::log(0.25), std::log(6.0)));
        const double offset = rng.Uniform(-8.0, 8.0);
        const double phase = rng.Uniform(0.0, 0.2);
        for (std::size_t i = 0; i < m; ++i) {
          const double t = static_cast<double>(i) / static_cast<double>(m);
          double y = std::sin(2.0 * kPi * (2.0 * t + phase));
          if (cls == 1) y += 0.6 * std::sin(2.0 * kPi * (4.0 * t + phase));
          v[i] = amp * y + offset;
        }
        return v;
      });
}

Dataset MakeSeasonalDevices(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "SeasonalDevices", 3, options, [m](int cls, Rng& rng) {
        // Daily load profile: base sinusoid plus class-dependent activation
        // blocks (morning, evening, or both).
        std::vector<double> v(m, 0.0);
        for (std::size_t i = 0; i < m; ++i) {
          const double t = static_cast<double>(i) / static_cast<double>(m);
          v[i] = 0.3 * std::sin(2.0 * kPi * t);
        }
        const double jitter = rng.Uniform(-0.02, 0.02);
        if (cls == 0 || cls == 2) AddBump(&v, 0.3 + jitter, 0.06, 1.5);
        if (cls == 1 || cls == 2) AddBump(&v, 0.75 + jitter, 0.06, 1.5);
        return v;
      });
}

Dataset MakeOutlines(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "Outlines", 4, options, [m](int cls, Rng& rng) {
        // Centroid-distance signature of a closed curve: 1 + per-class
        // harmonic mix; starting point is arbitrary, giving natural phase
        // shift within a class.
        std::vector<double> v(m, 0.0);
        const double phase = rng.Uniform(0.0, 2.0 * kPi);
        const int lobes = 2 + cls;  // 2..5 lobes
        for (std::size_t i = 0; i < m; ++i) {
          const double t =
              2.0 * kPi * static_cast<double>(i) / static_cast<double>(m);
          v[i] = 1.0 + 0.35 * std::cos(lobes * t + phase) +
                 0.1 * std::cos(2.0 * lobes * t + 2.0 * phase);
        }
        return v;
      });
}

Dataset MakeSpectroMixtures(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "SpectroMixtures", 3, options, [m](int cls, Rng& rng) {
        // Smooth absorption spectra: a broad baseline plus class-specific
        // peaks at fixed wavelengths.
        std::vector<double> v(m, 0.0);
        AddBump(&v, 0.5, 0.5, 1.0);  // broad baseline
        const double jitter = rng.Uniform(-0.005, 0.005);
        const double peaks[3][2] = {{0.3, 0.62}, {0.38, 0.7}, {0.25, 0.55}};
        AddBump(&v, peaks[cls][0] + jitter, 0.02, 0.8);
        AddBump(&v, peaks[cls][1] + jitter, 0.02, 0.6);
        return v;
      });
}

Dataset MakeChirps(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "Chirps", 3, options, [m](int cls, Rng& rng) {
        // Linear chirps with class-specific modulation rates.
        std::vector<double> v(m, 0.0);
        const double f0 = 1.5 + rng.Uniform(-0.1, 0.1);
        const double rate = 1.0 + 1.5 * cls;
        const double phase = rng.Uniform(0.0, 2.0 * kPi);
        for (std::size_t i = 0; i < m; ++i) {
          const double t = static_cast<double>(i) / static_cast<double>(m);
          v[i] = std::sin(2.0 * kPi * (f0 * t + 0.5 * rate * t * t) + phase);
        }
        return v;
      });
}

Dataset MakeTwoPatterns(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "TwoPatterns", 4, options, [m](int cls, Rng& rng) {
        // Two step events, each either up-down or down-up; 4 combinations.
        std::vector<double> v(m, 0.0);
        const bool first_up = (cls & 1) != 0;
        const bool second_up = (cls & 2) != 0;
        auto add_step = [&](double center, bool up) {
          const std::size_t c = static_cast<std::size_t>(
              center * static_cast<double>(m));
          const std::size_t w = m / 10;
          for (std::size_t i = c; i < std::min(c + w, m); ++i) {
            v[i] += up ? 2.0 : -2.0;
          }
          for (std::size_t i = c + w; i < std::min(c + 2 * w, m); ++i) {
            v[i] += up ? -2.0 : 2.0;
          }
        };
        add_step(0.2 + rng.Uniform(-0.05, 0.05), first_up);
        add_step(0.6 + rng.Uniform(-0.05, 0.05), second_up);
        return v;
      });
}

Dataset MakeRandomWalks(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "RandomWalks", 3, options, [m](int cls, Rng& rng) {
        // Drift per step: class 0 down, 1 flat, 2 up.
        const double drift = 0.05 * static_cast<double>(cls - 1);
        std::vector<double> v(m, 0.0);
        double level = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          level += drift + rng.Gaussian(0.0, 0.15);
          v[i] = level;
        }
        return v;
      });
}

Dataset MakeArProcesses(const GeneratorOptions& options) {
  const std::size_t m = options.length;
  return BuildFromPrototypes(
      "ArProcesses", 3, options, [m](int cls, Rng& rng) {
        // AR(1) with phi in {0.1, 0.6, 0.95}: increasingly smooth paths.
        const double phi = (cls == 0) ? 0.1 : (cls == 1 ? 0.6 : 0.95);
        // Stationary innovation scale keeps the marginal variance at 1.
        const double innovation = std::sqrt(1.0 - phi * phi);
        std::vector<double> v(m, 0.0);
        double state = rng.Gaussian();
        for (std::size_t i = 0; i < m; ++i) {
          state = phi * state + innovation * rng.Gaussian();
          v[i] = state;
        }
        return v;
      });
}

}  // namespace tsdist
