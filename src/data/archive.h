// Synthetic archive builder: assembles the benchmark suite of datasets used
// by the bench binaries in place of the UCR archive (see DESIGN.md).
//
// The suite deliberately spans the distortion regimes that drive the paper's
// findings — shift-dominated, warp-dominated, noise-dominated, and
// scale-dominated datasets — so that the relative orderings of measure
// categories (the paper's actual claims) are exercised. Dataset sizes are
// preset-scaled so that the full experiment grid runs on a laptop.

#ifndef TSDIST_DATA_ARCHIVE_H_
#define TSDIST_DATA_ARCHIVE_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"

namespace tsdist {

/// Size preset for the synthetic archive.
enum class ArchiveScale {
  kTiny,    ///< for unit/integration tests: short series, few instances
  kSmall,   ///< default bench scale: full grid finishes in minutes
  kMedium,  ///< closer to UCR-scale series lengths
};

/// Options for building the archive.
struct ArchiveOptions {
  ArchiveScale scale = ArchiveScale::kSmall;
  std::uint64_t seed = 20200614;  ///< SIGMOD'20 conference date
  bool z_normalize = true;  ///< z-normalize all series, like the UCR archive
};

/// Builds the full suite (currently 32 datasets across 12 generator
/// families with varied distortion mixes).
std::vector<Dataset> BuildArchive(const ArchiveOptions& options = {});

}  // namespace tsdist

#endif  // TSDIST_DATA_ARCHIVE_H_
