#include "src/data/preprocess.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

std::vector<double> InterpolateMissing(const std::vector<double>& values) {
  std::vector<double> out = values;
  const std::size_t n = out.size();
  std::size_t i = 0;
  while (i < n) {
    if (std::isfinite(out[i])) {
      ++i;
      continue;
    }
    // Find the NaN run [i, j).
    std::size_t j = i;
    while (j < n && !std::isfinite(out[j])) ++j;
    const bool has_left = i > 0;
    const bool has_right = j < n;
    if (!has_left && !has_right) {
      std::fill(out.begin(), out.end(), 0.0);
      return out;
    }
    if (!has_left) {
      std::fill(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(j),
                out[j]);
    } else if (!has_right) {
      std::fill(out.begin() + static_cast<std::ptrdiff_t>(i), out.end(),
                out[i - 1]);
    } else {
      const double left = out[i - 1];
      const double right = out[j];
      const double span = static_cast<double>(j - i + 1);
      for (std::size_t k = i; k < j; ++k) {
        const double t = static_cast<double>(k - i + 1) / span;
        out[k] = left * (1.0 - t) + right * t;
      }
    }
    i = j;
  }
  return out;
}

std::vector<double> ResampleToLength(const std::vector<double>& values,
                                     std::size_t target_length) {
  assert(target_length >= 1);
  const std::size_t n = values.size();
  if (n == target_length) return values;
  if (n == 0) return std::vector<double>(target_length, 0.0);
  if (n == 1) return std::vector<double>(target_length, values[0]);

  std::vector<double> out(target_length);
  const double scale = static_cast<double>(n - 1) /
                       static_cast<double>(target_length - 1);
  for (std::size_t i = 0; i < target_length; ++i) {
    const double pos = static_cast<double>(i) * scale;
    const std::size_t lo = std::min(static_cast<std::size_t>(pos), n - 2);
    const double frac = pos - static_cast<double>(lo);
    out[i] = values[lo] * (1.0 - frac) + values[lo + 1] * frac;
  }
  return out;
}

Dataset PreprocessDataset(const Dataset& dataset) {
  std::size_t max_len = 0;
  for (const auto& s : dataset.train()) max_len = std::max(max_len, s.size());
  for (const auto& s : dataset.test()) max_len = std::max(max_len, s.size());
  if (max_len == 0) return dataset;

  auto process = [max_len](const std::vector<TimeSeries>& in) {
    std::vector<TimeSeries> out;
    out.reserve(in.size());
    for (const auto& s : in) {
      std::vector<double> v(s.values().begin(), s.values().end());
      v = InterpolateMissing(v);
      v = ResampleToLength(v, max_len);
      out.emplace_back(std::move(v), s.label());
    }
    return out;
  };
  return Dataset(dataset.name(), process(dataset.train()),
                 process(dataset.test()));
}

}  // namespace tsdist
