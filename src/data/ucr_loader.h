// Loader for datasets in the UCR Time-Series Archive text format.
//
// The archive stores one dataset as <Name>_TRAIN.tsv and <Name>_TEST.tsv;
// each line is "<label><sep><v1><sep><v2>...". Both tab- and comma-separated
// variants exist; missing values appear as "NaN". The loader accepts either
// separator, applies the paper's preprocessing (interpolate missing values,
// resample ragged series to the longest length), and returns a rectangular
// Dataset. Errors are reported by value — no exceptions cross the library
// boundary.

#ifndef TSDIST_DATA_UCR_LOADER_H_
#define TSDIST_DATA_UCR_LOADER_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"

namespace tsdist {

/// What to do with a missing observation ("NaN" or "?" token).
enum class MissingValuePolicy {
  /// Keep the NaN at parse time; preprocessing linearly interpolates over
  /// NaN runs (edge gaps take the nearest value, all-NaN series become
  /// zeros — see InterpolateMissing in src/data/preprocess.h). The paper's
  /// behavior and the default.
  kInterpolate,
  /// Fail the load, naming the file, line, and token of the first missing
  /// value. For pipelines where a gap means an upstream bug.
  kReject,
};

/// Loader behavior knobs.
struct LoadOptions {
  MissingValuePolicy missing_values = MissingValuePolicy::kInterpolate;
};

/// Result of a load attempt: check `ok` before using `dataset`.
struct LoadResult {
  bool ok = false;
  std::string error;  ///< human-readable description when !ok
  Dataset dataset;
};

/// Parses UCR-format lines (already split) into labeled series.
/// Exposed separately for testing. Malformed lines and non-finite (inf)
/// values fail with the source name, 1-based line number, and offending
/// token; missing values follow `options.missing_values` (no interpolation
/// happens here — under kInterpolate the NaNs stay in the output and
/// PreprocessDataset fills them).
LoadResult ParseUcrLines(const std::vector<std::string>& lines,
                         const std::string& source_name,
                         const LoadOptions& options = {});

/// Loads <dir>/<name>_TRAIN.tsv and <dir>/<name>_TEST.tsv and applies
/// preprocessing.
LoadResult LoadUcrDataset(const std::string& dir, const std::string& name,
                          const LoadOptions& options = {});

}  // namespace tsdist

#endif  // TSDIST_DATA_UCR_LOADER_H_
