// Loader for datasets in the UCR Time-Series Archive text format.
//
// The archive stores one dataset as <Name>_TRAIN.tsv and <Name>_TEST.tsv;
// each line is "<label><sep><v1><sep><v2>...". Both tab- and comma-separated
// variants exist; missing values appear as "NaN". The loader accepts either
// separator, applies the paper's preprocessing (interpolate missing values,
// resample ragged series to the longest length), and returns a rectangular
// Dataset. Errors are reported by value — no exceptions cross the library
// boundary.

#ifndef TSDIST_DATA_UCR_LOADER_H_
#define TSDIST_DATA_UCR_LOADER_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"

namespace tsdist {

/// Result of a load attempt: check `ok` before using `dataset`.
struct LoadResult {
  bool ok = false;
  std::string error;  ///< human-readable description when !ok
  Dataset dataset;
};

/// Parses UCR-format lines (already split) into labeled series.
/// Exposed separately for testing.
LoadResult ParseUcrLines(const std::vector<std::string>& lines,
                         const std::string& source_name);

/// Loads <dir>/<name>_TRAIN.tsv and <dir>/<name>_TEST.tsv and applies
/// preprocessing.
LoadResult LoadUcrDataset(const std::string& dir, const std::string& name);

}  // namespace tsdist

#endif  // TSDIST_DATA_UCR_LOADER_H_
