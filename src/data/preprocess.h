// Preprocessing for real-world (ragged / incomplete) series, matching the
// paper's handling of the 2018 UCR archive: shorter series are resampled to
// the longest length in the dataset, and missing values (NaNs) are filled by
// linear interpolation.

#ifndef TSDIST_DATA_PREPROCESS_H_
#define TSDIST_DATA_PREPROCESS_H_

#include <vector>

#include "src/core/dataset.h"

namespace tsdist {

/// Fills NaN entries by linear interpolation between the nearest finite
/// neighbours; leading/trailing NaNs take the nearest finite value. A series
/// with no finite values becomes all zeros.
std::vector<double> InterpolateMissing(const std::vector<double>& values);

/// Linearly resamples `values` to `target_length` (>= 1).
std::vector<double> ResampleToLength(const std::vector<double>& values,
                                     std::size_t target_length);

/// Applies both steps to every series of a dataset: interpolate NaNs, then
/// resample everything to the longest series length across both splits.
Dataset PreprocessDataset(const Dataset& dataset);

}  // namespace tsdist

#endif  // TSDIST_DATA_PREPROCESS_H_
