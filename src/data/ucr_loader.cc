#include "src/data/ucr_loader.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/data/preprocess.h"
#include "src/obs/obs.h"
#include "src/resilience/fault.h"

namespace tsdist {

namespace {

// Splits on tabs, commas, or runs of spaces.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == '\t' || c == ',' || c == ' ' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

// Parses a value token; "NaN" (any case) and "?" map to quiet NaN with
// `*missing` set. Returns false on malformed input.
bool ParseValue(const std::string& token, double* out, bool* missing) {
  *missing = false;
  if (token == "NaN" || token == "nan" || token == "NAN" || token == "?") {
    *out = std::numeric_limits<double>::quiet_NaN();
    *missing = true;
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool ParseSplit(const std::vector<std::string>& lines,
                const std::string& source_name, const LoadOptions& options,
                std::vector<TimeSeries>* out, std::string* error) {
  std::uint64_t missing_count = 0;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    fault::Hit(fault::sites::kLoaderParse);
    const std::vector<std::string> tokens = Tokenize(lines[ln]);
    if (tokens.empty()) continue;  // skip blank lines
    if (tokens.size() < 2) {
      *error = source_name + ": line " + std::to_string(ln + 1) +
               " has no values";
      return false;
    }
    double label_value = 0.0;
    bool label_missing = false;
    if (!ParseValue(tokens[0], &label_value, &label_missing) ||
        label_missing || !std::isfinite(label_value)) {
      *error = source_name + ": line " + std::to_string(ln + 1) +
               " has a malformed label '" + tokens[0] + "'";
      return false;
    }
    std::vector<double> values;
    values.reserve(tokens.size() - 1);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      double v = 0.0;
      bool missing = false;
      if (!ParseValue(tokens[i], &v, &missing)) {
        *error = source_name + ": line " + std::to_string(ln + 1) +
                 " has a malformed value '" + tokens[i] + "'";
        return false;
      }
      if (missing) {
        if (options.missing_values == MissingValuePolicy::kReject) {
          *error = source_name + ": line " + std::to_string(ln + 1) +
                   " has a missing value '" + tokens[i] +
                   "' (policy: reject)";
          return false;
        }
        ++missing_count;
      } else if (!std::isfinite(v)) {
        // Infinities are never legitimate observations in the archive
        // format; they used to flow silently into the measures and surface
        // as NaN accuracies whole datasets later.
        *error = source_name + ": line " + std::to_string(ln + 1) +
                 " has a non-finite value '" + tokens[i] + "'";
        return false;
      }
      values.push_back(v);
    }
    out->emplace_back(std::move(values), static_cast<int>(label_value));
  }
  if (out->empty()) {
    *error = source_name + ": no series found";
    return false;
  }
  if (missing_count > 0 && obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("tsdist.data.missing_values")
        .Add(missing_count);
  }
  return true;
}

bool ReadLines(const std::string& path, std::vector<std::string>* lines,
               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) lines->push_back(line);
  return true;
}

}  // namespace

LoadResult ParseUcrLines(const std::vector<std::string>& lines,
                         const std::string& source_name,
                         const LoadOptions& options) {
  LoadResult result;
  obs::ScopedTimer timer(
      obs::Enabled() ? &obs::MetricsRegistry::Global().GetHistogram(
                           "tsdist.data.ucr_parse_ns")
                     : nullptr);
  std::vector<TimeSeries> series;
  if (!ParseSplit(lines, source_name, options, &series, &result.error)) {
    return result;
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("tsdist.data.ucr_series")
        .Add(series.size());
  }
  result.ok = true;
  result.dataset = Dataset(source_name, std::move(series), {});
  return result;
}

LoadResult LoadUcrDataset(const std::string& dir, const std::string& name,
                          const LoadOptions& options) {
  LoadResult result;
  const obs::TraceSpan span(
      obs::TraceRecorder::Global().enabled() ? "data.ucr_load/" + name
                                             : std::string());
  obs::ScopedTimer timer(
      obs::Enabled() ? &obs::MetricsRegistry::Global().GetHistogram(
                           "tsdist.data.ucr_load_ns")
                     : nullptr);
  std::vector<std::string> train_lines;
  std::vector<std::string> test_lines;
  if (!ReadLines(dir + "/" + name + "_TRAIN.tsv", &train_lines, &result.error) ||
      !ReadLines(dir + "/" + name + "_TEST.tsv", &test_lines, &result.error)) {
    return result;
  }
  std::vector<TimeSeries> train;
  std::vector<TimeSeries> test;
  if (!ParseSplit(train_lines, name + "_TRAIN", options, &train,
                  &result.error) ||
      !ParseSplit(test_lines, name + "_TEST", options, &test, &result.error)) {
    return result;
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("tsdist.data.ucr_series")
        .Add(train.size() + test.size());
  }
  result.ok = true;
  result.dataset =
      PreprocessDataset(Dataset(name, std::move(train), std::move(test)));
  return result;
}

}  // namespace tsdist
