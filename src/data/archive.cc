#include "src/data/archive.h"

#include <map>
#include <string>

#include "src/data/generators.h"
#include "src/normalization/normalization.h"
#include "src/obs/obs.h"

namespace tsdist {

namespace {

struct ScalePreset {
  std::size_t length;
  std::size_t train_per_class;
  std::size_t test_per_class;
};

ScalePreset PresetFor(ArchiveScale scale) {
  switch (scale) {
    case ArchiveScale::kTiny:
      return {48, 6, 8};
    case ArchiveScale::kSmall:
      return {96, 12, 16};
    case ArchiveScale::kMedium:
      return {192, 20, 25};
  }
  return {96, 12, 16};
}

}  // namespace

std::vector<Dataset> BuildArchive(const ArchiveOptions& options) {
  const obs::TraceSpan span("data.build_archive");
  obs::ScopedTimer timer(
      obs::Enabled() ? &obs::MetricsRegistry::Global().GetHistogram(
                           "tsdist.data.archive_build_ns")
                     : nullptr);
  const ScalePreset preset = PresetFor(options.scale);
  GeneratorOptions base;
  base.length = preset.length;
  base.train_per_class = preset.train_per_class;
  base.test_per_class = preset.test_per_class;
  base.seed = options.seed;

  std::vector<Dataset> archive;
  // Each dataset gets a distinct derived seed so the suite consists of
  // independent draws while remaining a pure function of options.seed.
  std::uint64_t index = 0;
  auto next = [&base, &index](auto mutate) {
    GeneratorOptions opts = base;
    opts.seed = base.seed + 7919 * (++index);
    mutate(opts);
    return opts;
  };

  // Noise-dominated shape classes.
  archive.push_back(MakeCbf(next([](GeneratorOptions& o) { o.noise = 0.35; })));
  archive.push_back(
      MakeTwoPatterns(next([](GeneratorOptions& o) { o.noise = 0.4; })));
  archive.push_back(MakeGunPointLike(next([](GeneratorOptions& o) {
    o.noise = 0.05;
    o.warp = 0.04;
  })));
  // Medical-like.
  archive.push_back(MakeEcgLike(next([](GeneratorOptions& o) {
    o.noise = 0.08;
    o.warp = 0.03;
  })));
  archive.push_back(MakeEcgLike(next([](GeneratorOptions& o) {
    o.noise = 0.2;
    o.warp = 0.06;
  })));
  // Shift-dominated (sliding measures should win here).
  archive.push_back(
      MakeShiftedEvents(next([](GeneratorOptions& o) { o.noise = 0.12; })));
  archive.push_back(MakeShiftedEvents(next([](GeneratorOptions& o) {
    o.noise = 0.25;
  })));
  archive.push_back(MakeOutlines(next([](GeneratorOptions& o) {
    o.noise = 0.06;
  })));
  // Warp-dominated (elastic measures should win here).
  archive.push_back(MakeWarpedPrototypes(next([](GeneratorOptions& o) {
    o.noise = 0.1;
    o.warp = 0.15;
  })));
  archive.push_back(MakeWarpedPrototypes(next([](GeneratorOptions& o) {
    o.noise = 0.05;
    o.warp = 0.25;
  })));
  // Scale-dominated (normalization matters most here).
  archive.push_back(
      MakeScaledPatterns(next([](GeneratorOptions& o) { o.noise = 0.15; })));
  // Device / seasonal profiles.
  archive.push_back(MakeSeasonalDevices(next([](GeneratorOptions& o) {
    o.noise = 0.15;
    o.warp = 0.05;
  })));
  // Spectrograph-like.
  archive.push_back(MakeSpectroMixtures(next([](GeneratorOptions& o) {
    o.noise = 0.05;
  })));
  // Simulated chirps.
  archive.push_back(MakeChirps(next([](GeneratorOptions& o) {
    o.noise = 0.2;
  })));
  // Mixed-distortion stress sets.
  archive.push_back(MakeCbf(next([](GeneratorOptions& o) {
    o.noise = 0.2;
    o.warp = 0.08;
    o.max_shift = o.length / 16;
  })));
  archive.push_back(MakeOutlines(next([](GeneratorOptions& o) {
    o.noise = 0.12;
    o.warp = 0.06;
  })));
  // Second wave: independent re-draws with different distortion mixes, for
  // statistical power (the paper has 128 datasets; pairwise tests need
  // enough of them to resolve significance).
  archive.push_back(MakeCbf(next([](GeneratorOptions& o) { o.noise = 0.5; })));
  archive.push_back(MakeTwoPatterns(next([](GeneratorOptions& o) {
    o.noise = 0.25;
    o.warp = 0.05;
  })));
  archive.push_back(MakeGunPointLike(next([](GeneratorOptions& o) {
    o.noise = 0.1;
    o.warp = 0.08;
  })));
  archive.push_back(MakeEcgLike(next([](GeneratorOptions& o) {
    o.noise = 0.12;
    o.max_shift = o.length / 20;
  })));
  archive.push_back(MakeShiftedEvents(next([](GeneratorOptions& o) {
    o.noise = 0.18;
    o.warp = 0.05;
  })));
  archive.push_back(MakeOutlines(next([](GeneratorOptions& o) {
    o.noise = 0.2;
  })));
  archive.push_back(MakeWarpedPrototypes(next([](GeneratorOptions& o) {
    o.noise = 0.15;
    o.warp = 0.2;
    o.max_shift = o.length / 24;
  })));
  archive.push_back(MakeScaledPatterns(next([](GeneratorOptions& o) {
    o.noise = 0.25;
    o.warp = 0.04;
  })));
  archive.push_back(MakeSeasonalDevices(next([](GeneratorOptions& o) {
    o.noise = 0.3;
  })));
  archive.push_back(MakeSpectroMixtures(next([](GeneratorOptions& o) {
    o.noise = 0.1;
    o.warp = 0.04;
  })));
  archive.push_back(MakeChirps(next([](GeneratorOptions& o) {
    o.noise = 0.35;
    o.warp = 0.03;
  })));
  archive.push_back(MakeTwoPatterns(next([](GeneratorOptions& o) {
    o.noise = 0.15;
    o.max_shift = o.length / 12;
  })));
  archive.push_back(MakeGunPointLike(next([](GeneratorOptions& o) {
    o.noise = 0.15;
    o.trend = 0.5;
  })));
  archive.push_back(MakeEcgLike(next([](GeneratorOptions& o) {
    o.noise = 0.1;
    o.warp = 0.1;
    o.trend = 0.3;
  })));
  archive.push_back(MakeCbf(next([](GeneratorOptions& o) {
    o.noise = 0.3;
    o.scale_jitter = 0.4;
  })));
  archive.push_back(MakeSpectroMixtures(next([](GeneratorOptions& o) {
    o.noise = 0.08;
    o.trend = 0.4;
  })));

  // Disambiguate duplicate family names: the second CBF becomes "CBF2", the
  // third "CBF3", and so on.
  std::map<std::string, int> name_counts;
  for (auto& dataset : archive) {
    const int count = ++name_counts[dataset.name()];
    if (count > 1) {
      dataset = Dataset(dataset.name() + std::to_string(count),
                        std::move(dataset.mutable_train()),
                        std::move(dataset.mutable_test()));
    }
  }

  if (options.z_normalize) {
    const ZScoreNormalizer z;
    for (auto& dataset : archive) dataset = z.Apply(dataset);
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("tsdist.data.archive_datasets")
        .Add(archive.size());
  }
  return archive;
}

}  // namespace tsdist
