// Synthetic class-labeled dataset generators.
//
// Stand-in for the UCR Time-Series Archive (see DESIGN.md, Substitutions):
// each generator produces a labeled dataset in one of the archive's regimes —
// shape classes under noise (CBF, two-patterns), smooth motions (gun-point),
// quasi-periodic medical signals (ECG), phase-shifted events (where sliding
// measures shine), locally warped prototypes (where elastic measures shine),
// amplitude/scale classes (where normalization matters), seasonal device
// profiles, image-outline-like closed curves, spectrograph-like smooth
// mixtures, and frequency-modulated chirps. Everything is a pure function of
// (options, seed).

#ifndef TSDIST_DATA_GENERATORS_H_
#define TSDIST_DATA_GENERATORS_H_

#include <cstdint>
#include <string>

#include "src/core/dataset.h"
#include "src/linalg/rng.h"

namespace tsdist {

/// Shared knobs for all generators.
struct GeneratorOptions {
  std::size_t length = 128;          ///< series length m
  std::size_t train_per_class = 25;  ///< training series per class
  std::size_t test_per_class = 25;   ///< test series per class
  double noise = 0.10;               ///< additive gaussian noise stddev
  double warp = 0.0;                 ///< local time-warp strength in [0, ~0.5]
  std::size_t max_shift = 0;         ///< max circular phase shift (points)
  double scale_jitter = 0.0;         ///< multiplicative amplitude jitter
  double trend = 0.0;                ///< random linear trend magnitude
  std::uint64_t seed = 42;           ///< RNG seed
};

/// Cylinder-Bell-Funnel, the classic 3-class simulated benchmark.
Dataset MakeCbf(const GeneratorOptions& options);

/// Two smooth motion classes differing in a subtle plateau (gun-point-like).
Dataset MakeGunPointLike(const GeneratorOptions& options);

/// Quasi-periodic heartbeat-like signals; classes differ in beat morphology
/// (normal, premature peak, inverted repolarization).
Dataset MakeEcgLike(const GeneratorOptions& options);

/// Identical event shapes per class placed at large random phase shifts —
/// the regime where sliding measures dominate lock-step ones.
Dataset MakeShiftedEvents(const GeneratorOptions& options);

/// Class prototypes distorted by smooth local time warping — the regime
/// motivating elastic measures.
Dataset MakeWarpedPrototypes(const GeneratorOptions& options);

/// Classes sharing one shape but differing in amplitude scale and offset —
/// the regime where the choice of normalization decides everything.
Dataset MakeScaledPatterns(const GeneratorOptions& options);

/// Seasonal load profiles (electric-device-like): classes differ in the
/// number and position of daily activations.
Dataset MakeSeasonalDevices(const GeneratorOptions& options);

/// Image-outline-like closed curves from per-class Fourier descriptors.
Dataset MakeOutlines(const GeneratorOptions& options);

/// Spectrograph-like smooth mixtures of Gaussian bumps; classes differ in
/// component locations.
Dataset MakeSpectroMixtures(const GeneratorOptions& options);

/// Frequency-modulated chirps; classes differ in modulation rate.
Dataset MakeChirps(const GeneratorOptions& options);

/// Four-class up/down step patterns (two-patterns-like).
Dataset MakeTwoPatterns(const GeneratorOptions& options);

/// Random walks (cumulative sums of gaussian steps); classes differ in
/// drift. The classic workload of the indexing literature (random-walk
/// data is what the original F-index experiments used).
Dataset MakeRandomWalks(const GeneratorOptions& options);

/// Stationary AR(1) processes; classes differ in the autoregressive
/// coefficient (distinguishable by autocorrelation structure, not shape —
/// a deliberately hard regime for shape-based measures).
Dataset MakeArProcesses(const GeneratorOptions& options);

namespace data_internal {

/// Applies a smooth monotone time warp of strength `warp` (fraction of the
/// series length that any point may move).
std::vector<double> TimeWarp(const std::vector<double>& values, double warp,
                             Rng& rng);

/// Circularly shifts values right by `shift` positions.
std::vector<double> CircularShift(const std::vector<double>& values,
                                  std::ptrdiff_t shift);

/// Adds iid gaussian noise of the given standard deviation.
void AddNoise(std::vector<double>* values, double stddev, Rng& rng);

/// Applies the common distortion pipeline from `options`
/// (warp -> shift -> scale jitter -> trend -> noise).
std::vector<double> Distort(const std::vector<double>& prototype,
                            const GeneratorOptions& options, Rng& rng);

}  // namespace data_internal

}  // namespace tsdist

#endif  // TSDIST_DATA_GENERATORS_H_
