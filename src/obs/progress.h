// Progress reporting with rate + ETA for long matrix computations.
//
// A ProgressReporter counts completed work units (typically pairwise-matrix
// cells) from any number of worker threads and periodically rewrites one
// stderr status line:
//
//   eval  1.2M/9.6M cells (12.5%)  310.0k/s  ETA 00:27
//
// Deep layers do not take a reporter parameter; instead the driver installs
// one with SetActiveProgress() and instrumented code calls ProgressTick(),
// which is a relaxed atomic pointer load plus an atomic add when a reporter
// is active. Printing is throttled (default 200 ms) and serialized by an
// atomic claim, so workers never block on I/O.

#ifndef TSDIST_OBS_PROGRESS_H_
#define TSDIST_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace tsdist::obs {

class ProgressReporter {
 public:
  /// `label` prefixes the status line; `total_units` of 0 renders without
  /// percentage/ETA; `out` of nullptr writes to stderr; `unit` names the
  /// work unit in the rendered line.
  ///
  /// When writing to stderr and stderr is not a terminal (CI logs, piped
  /// runs), the throttled `\r` status frames are suppressed entirely unless
  /// set_force(true) was called — drivers call that when the user passed an
  /// explicit --progress flag. An explicit `out` stream always prints.
  ProgressReporter(std::string label, std::uint64_t total_units,
                   std::ostream* out = nullptr, std::string unit = "cells");
  ~ProgressReporter();

  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  /// Records `n` completed units; may print a throttled status line.
  void Add(std::uint64_t n = 1);

  /// Prints the final line plus newline. Idempotent; also run by the
  /// destructor if progress was ever printed.
  void Finish();

  std::uint64_t done() const { return done_.load(std::memory_order_relaxed); }
  std::uint64_t total() const { return total_; }

  /// Completed units per second since construction.
  double RatePerSec() const;

  /// Estimated seconds to completion (0 when done or total unknown).
  double EtaSeconds() const;

  /// The current status line (without carriage return) — exposed for tests.
  std::string RenderLine() const;

  /// Minimum interval between printed updates.
  void set_min_interval_ns(std::uint64_t ns) { min_interval_ns_ = ns; }

  /// Prints to a non-TTY stderr anyway (explicit --progress semantics).
  void set_force(bool force) { forced_ = force; }

  /// True when status frames are currently being swallowed (stderr sink,
  /// not a terminal, not forced) — exposed for tests.
  bool suppressed() const { return stderr_sink_ && !stderr_tty_ && !forced_; }

  const std::string& label() const { return label_; }
  const std::string& unit() const { return unit_; }

 private:
  void MaybePrint(bool force);

  std::string label_;
  std::string unit_;
  std::uint64_t total_;
  std::ostream* out_;
  bool stderr_sink_ = false;  ///< writing to the process stderr stream
  bool stderr_tty_ = false;   ///< stderr was a terminal at construction
  bool forced_ = false;
  std::uint64_t start_ns_;
  std::uint64_t min_interval_ns_ = 200'000'000;  // 200 ms
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> last_print_ns_{0};
  std::atomic<bool> printed_{false};
  std::atomic<bool> finished_{false};
};

/// Installs `reporter` as the process-wide sink for ProgressTick(); pass
/// nullptr to uninstall. The reporter's destructor uninstalls itself.
void SetActiveProgress(ProgressReporter* reporter);

/// Forwards `n` completed units to the active reporter, if any.
void ProgressTick(std::uint64_t n);

/// Point-in-time copy of the active reporter's state, taken by the telemetry
/// server for /healthz.
struct ProgressSnapshot {
  std::string label;
  std::string unit;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  double rate_per_sec = 0.0;
  double eta_seconds = 0.0;  ///< 0 when done/unknown total; may be +inf
};

/// Copies the active reporter's state into `out`; returns false when no
/// reporter is installed. Serialized against install/uninstall (and thus
/// against reporter destruction), so the copy never reads a dead reporter.
bool SnapshotActiveProgress(ProgressSnapshot* out);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_PROGRESS_H_
