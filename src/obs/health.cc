#include "src/obs/health.h"

#include <cmath>
#include <cstdio>

#include "src/obs/obs.h"
#include "src/obs/progress.h"

namespace tsdist::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

HealthState::HealthState() : start_ns_(NowNs()) {}

HealthState& HealthState::Global() {
  static HealthState* state = new HealthState();  // never destroyed
  return *state;
}

void HealthState::SetPhase(std::string phase) {
  const std::lock_guard<std::mutex> lock(mu_);
  phase_ = std::move(phase);
}

void HealthState::SetCurrentCell(std::string cell) {
  const std::lock_guard<std::mutex> lock(mu_);
  current_cell_ = std::move(cell);
}

void HealthState::SetFleetJson(std::string fleet_json) {
  // Trim trailing whitespace so the document embeds cleanly as a nested
  // JSON value inside the /healthz object.
  while (!fleet_json.empty() &&
         (fleet_json.back() == '\n' || fleet_json.back() == ' ')) {
    fleet_json.pop_back();
  }
  const std::lock_guard<std::mutex> lock(mu_);
  fleet_json_ = std::move(fleet_json);
}

std::string HealthState::FleetJson() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return fleet_json_;
}

void HealthState::SetEndpoints(std::string endpoints) {
  const std::lock_guard<std::mutex> lock(mu_);
  endpoints_ = std::move(endpoints);
}

void HealthState::SetCells(std::uint64_t done, std::uint64_t total,
                           std::uint64_t resumed, std::uint64_t dnf,
                           std::uint64_t failed) {
  const std::lock_guard<std::mutex> lock(mu_);
  cells_done_ = done;
  cells_total_ = total;
  cells_resumed_ = resumed;
  cells_dnf_ = dnf;
  cells_failed_ = failed;
}

std::string HealthState::ToJson() const {
  const double uptime_sec =
      static_cast<double>(NowNs() - start_ns_) / 1e9;
  std::string out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = "{\"schema\": \"tsdist.health.v1\", \"status\": \"ok\", ";
    out += "\"uptime_sec\": ";
    out += Num(uptime_sec);
    out += ", \"phase\": \"";
    out += JsonEscape(phase_);
    out += "\", \"current_cell\": \"";
    out += JsonEscape(current_cell_);
    out += "\", \"cells\": {\"done\": ";
    out += std::to_string(cells_done_);
    out += ", \"total\": ";
    out += std::to_string(cells_total_);
    out += ", \"resumed\": ";
    out += std::to_string(cells_resumed_);
    out += ", \"dnf\": ";
    out += std::to_string(cells_dnf_);
    out += ", \"failed\": ";
    out += std::to_string(cells_failed_);
    out += "}";
    if (!endpoints_.empty()) {
      out += ", \"endpoints\": [";
      bool first = true;
      std::size_t pos = 0;
      while (pos < endpoints_.size()) {
        const std::size_t space = endpoints_.find(' ', pos);
        const std::size_t end =
            space == std::string::npos ? endpoints_.size() : space;
        if (end > pos) {
          out += first ? "\"" : ", \"";
          out += JsonEscape(endpoints_.substr(pos, end - pos));
          out += "\"";
          first = false;
        }
        pos = end + 1;
      }
      out += "]";
    }
    if (!fleet_json_.empty()) {
      out += ", \"fleet\": ";
      out += fleet_json_;
    }
  }
  ProgressSnapshot progress;
  if (SnapshotActiveProgress(&progress)) {
    out += ", \"progress\": {\"label\": \"";
    out += JsonEscape(progress.label);
    out += "\", \"unit\": \"";
    out += JsonEscape(progress.unit);
    out += "\", \"done\": ";
    out += std::to_string(progress.done);
    out += ", \"total\": ";
    out += std::to_string(progress.total);
    out += ", \"rate_per_sec\": ";
    out += Num(progress.rate_per_sec);
    out += ", \"eta_sec\": ";
    out += Num(progress.eta_seconds);
    out += "}";
  } else {
    out += ", \"progress\": null";
  }
  out += "}";
  return out;
}

}  // namespace tsdist::obs
