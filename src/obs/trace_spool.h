// Crash-durable span spooling: the tsdist.tracespool.v1 wire format and the
// process-wide flusher that feeds it (docs/TRACING.md).
//
// A fleet process (coordinator, shard worker, merge, or a single-process
// driver) does not export its trace at clean exit — a SIGKILL'd worker has
// no clean exit. Instead a background flusher periodically drains completed
// spans out of the TraceRecorder and appends them, one JSON line each, to
// <dir>/<proc>.trace.jsonl with an fsync per batch. Like the lease log, the
// spool is an append-only file whose readers consume the valid prefix: a
// kill mid-append leaves at most one torn final line, which trace_merge and
// ReadTraceSpool() count and skip rather than reject.
//
// Wire format (line-delimited JSON):
//   line 1   header: {"schema": "tsdist.tracespool.v1", "run_id": ...,
//            "role": ..., "worker": ..., "pid": N, "anchor_wall_us": N}
//   line 2+  events: {"name": ..., "cat": ..., "ts_ns": N, "dur_ns": N,
//            "tid": N, "id": N, "parent": N[, "ph": "i"][, "args": {...}]}
//
// ts_ns/dur_ns are CLOCK_MONOTONIC nanoseconds relative to this process's
// recorder epoch; anchor_wall_us is CLOCK_REALTIME microseconds sampled at
// that same epoch, so the absolute wall-clock start of an event is
// anchor_wall_us + ts_ns/1000 — the common ruler trace_merge aligns every
// process's spool onto.

#ifndef TSDIST_OBS_TRACE_SPOOL_H_
#define TSDIST_OBS_TRACE_SPOOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace tsdist::obs {

inline constexpr char kTraceSpoolSchema[] = "tsdist.tracespool.v1";

/// Derives a fleet-shared run id from identity bytes (FNV-1a, hex). Shard
/// processes hash the published plan file so every process of one sweep —
/// coordinator, workers, merge — lands on the same id without coordination.
std::string TraceRunIdFromBytes(const std::string& bytes);

/// Renders the spool header line (newline-terminated) for this process.
std::string TraceSpoolHeaderLine(const TraceContext& context,
                                 const WallAnchor& anchor, std::uint32_t pid);

/// Renders one event line (newline-terminated). Perf readings are an
/// in-memory export detail and are not spooled.
std::string TraceSpoolEventLine(const TraceEvent& event);

struct TraceSpoolOptions {
  std::string dir;   ///< spool directory, e.g. <checkpoint>/trace
  std::string proc;  ///< file stem ("coordinator", worker id, ...); no '/'
  std::uint64_t flush_interval_ms = 200;
};

/// Process-wide spool writer. Start() enables tracing, writes the header,
/// and launches the flusher thread; Stop() performs a final drain and
/// closes the file. Exactly one spool per process.
class TraceSpool {
 public:
  static TraceSpool& Global();

  /// Opens <dir>/<proc>.trace.jsonl and starts flushing. An existing
  /// non-empty spool under the same name (a restarted worker id) is rotated
  /// aside to <proc>.rNNN.trace.jsonl first — never truncated, because a
  /// fenced zombie may still hold the descriptor, and its rotated stream
  /// remains a self-contained spool for trace_merge. Returns false (with
  /// *error) on I/O failure or under TSDIST_OBS_NOOP.
  bool Start(const TraceSpoolOptions& options, std::string* error);

  /// Final drain + fsync + join; idempotent, safe without a prior Start.
  void Stop();

  struct Status {
    bool active = false;
    std::uint64_t spans_spooled = 0;
    std::uint64_t flushes = 0;
    std::uint64_t errors = 0;
    std::string path;
  };
  Status status() const;

 private:
  TraceSpool() = default;
};

/// Parsed identity of one spool file.
struct TraceSpoolHeader {
  std::string run_id;
  std::string role;
  std::string worker;
  std::uint32_t pid = 0;
  std::uint64_t anchor_wall_us = 0;
};

/// One spool file decoded by the valid-prefix rule.
struct TraceSpoolContents {
  TraceSpoolHeader header;
  std::vector<TraceEvent> events;
  std::size_t valid_lines = 0;  ///< header + parsed event lines
  std::size_t torn_lines = 0;   ///< lines after the valid prefix (kill tail)
  std::size_t torn_bytes = 0;   ///< bytes after the valid prefix
};

/// Reads a spool file the way the lease reader reads leases: consume lines
/// while they parse (a final line without a terminating newline is torn by
/// definition), then count — never reject — whatever follows. Returns false
/// (with *error) only when the file is unreadable or its first line is not
/// a tsdist.tracespool.v1 header; a torn tail is success.
bool ReadTraceSpool(const std::string& path, TraceSpoolContents* out,
                    std::string* error);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_TRACE_SPOOL_H_
