#include "src/obs/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "src/obs/log.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace tsdist::obs {

namespace {

// Test/driver override: when true, PerfCountersSupported() is false without
// ever probing (so a forced-off process logs no warn event either).
std::atomic<bool> g_perf_forced_off{false};

std::string RatioNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

#if defined(__linux__)

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

perf_event_attr MakeAttr(std::uint64_t config, bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // the group is enabled via the leader
  attr.exclude_kernel = 1;        // user-space only: works at paranoid <= 2
  attr.exclude_hv = 1;
  if (leader) {
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
  }
  return attr;
}

constexpr std::uint64_t kConfigs[] = {
    PERF_COUNT_HW_CPU_CYCLES,        PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_REFERENCES,  PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_INSTRUCTIONS, PERF_COUNT_HW_BRANCH_MISSES,
};

#endif  // __linux__

}  // namespace

double PerfReading::Ipc() const {
  return cycles == 0 ? 0.0
                     : static_cast<double>(instructions) /
                           static_cast<double>(cycles);
}

double PerfReading::CacheMissRate() const {
  return cache_references == 0 ? 0.0
                               : static_cast<double>(cache_misses) /
                                     static_cast<double>(cache_references);
}

double PerfReading::BranchMissRate() const {
  return branches == 0 ? 0.0
                       : static_cast<double>(branch_misses) /
                             static_cast<double>(branches);
}

double PerfReading::RunningRatio() const {
  return time_enabled_ns == 0 ? 0.0
                              : static_cast<double>(time_running_ns) /
                                    static_cast<double>(time_enabled_ns);
}

void PerfReading::Accumulate(const PerfReading& other) {
  valid = valid && other.valid;
  cycles += other.cycles;
  instructions += other.instructions;
  cache_references += other.cache_references;
  cache_misses += other.cache_misses;
  branches += other.branches;
  branch_misses += other.branch_misses;
  time_enabled_ns += other.time_enabled_ns;
  time_running_ns += other.time_running_ns;
}

std::string PerfReadingToJson(const PerfReading& r, int indent) {
  const std::string pad(static_cast<std::size_t>(indent > 0 ? indent : 0),
                        ' ');
  std::string out = "{\n";
  out += pad + "  \"cycles\": " + std::to_string(r.cycles) + ",\n";
  out += pad + "  \"instructions\": " + std::to_string(r.instructions) + ",\n";
  out += pad + "  \"cache_references\": " +
         std::to_string(r.cache_references) + ",\n";
  out += pad + "  \"cache_misses\": " + std::to_string(r.cache_misses) + ",\n";
  out += pad + "  \"branches\": " + std::to_string(r.branches) + ",\n";
  out += pad + "  \"branch_misses\": " + std::to_string(r.branch_misses) +
         ",\n";
  out += pad + "  \"time_enabled_ns\": " + std::to_string(r.time_enabled_ns) +
         ",\n";
  out += pad + "  \"time_running_ns\": " + std::to_string(r.time_running_ns) +
         ",\n";
  out += pad + "  \"ipc\": " + RatioNumber(r.Ipc()) + ",\n";
  out += pad + "  \"cache_miss_rate\": " + RatioNumber(r.CacheMissRate()) +
         ",\n";
  out += pad + "  \"branch_miss_rate\": " + RatioNumber(r.BranchMissRate()) +
         ",\n";
  out += pad + "  \"running_ratio\": " + RatioNumber(r.RunningRatio()) + "\n";
  out += pad + "}";
  return out;
}

PerfCounterGroup::PerfCounterGroup() {
  fds_.fill(-1);
  if (!PerfCountersSupported()) return;
#if defined(__linux__)
  for (std::size_t i = 0; i < kEvents; ++i) {
    perf_event_attr attr = MakeAttr(kConfigs[i], /*leader=*/i == 0);
    const long fd = PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1,
                                  /*group_fd=*/i == 0 ? -1 : leader_fd_,
                                  /*flags=*/0);
    if (fd < 0) {
      // The probe succeeded but this open failed (fd limits, PMU pressure);
      // degrade this group only.
      TSDIST_LOG(LogLevel::kWarn, "perf counter group open failed",
                 F("errno", std::strerror(errno)),
                 F("event_index", static_cast<std::uint64_t>(i)));
      for (std::size_t j = 0; j < i; ++j) close(fds_[j]);
      fds_.fill(-1);
      leader_fd_ = -1;
      return;
    }
    fds_[i] = static_cast<int>(fd);
    if (i == 0) leader_fd_ = fds_[0];
  }
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

void PerfCounterGroup::Start() {
#if defined(__linux__)
  if (leader_fd_ < 0) return;
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#endif
}

PerfReading PerfCounterGroup::Stop() {
  PerfReading out;
#if defined(__linux__)
  if (leader_fd_ < 0) return out;
  ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  out = ReadNow();
#endif
  return out;
}

PerfReading PerfCounterGroup::ReadNow() const {
  PerfReading out;
#if defined(__linux__)
  if (leader_fd_ < 0) return out;
  // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
  std::uint64_t buf[3 + kEvents] = {};
  const ssize_t n = read(leader_fd_, buf, sizeof buf);
  if (n < static_cast<ssize_t>(sizeof buf)) return out;
  if (buf[0] != kEvents) return out;
  out.time_enabled_ns = buf[1];
  out.time_running_ns = buf[2];
  out.cycles = buf[3];
  out.instructions = buf[4];
  out.cache_references = buf[5];
  out.cache_misses = buf[6];
  out.branches = buf[7];
  out.branch_misses = buf[8];
  out.valid = true;
#endif
  return out;
}

bool PerfCountersSupported() {
  if (g_perf_forced_off.load(std::memory_order_relaxed)) return false;
  // The probe runs at most once per process; a failing probe is the one and
  // only warn event, after which groups are silently unavailable.
  static const bool supported = [] {
#if defined(__linux__)
    perf_event_attr attr =
        MakeAttr(PERF_COUNT_HW_CPU_CYCLES, /*leader=*/true);
    const long fd = PerfEventOpen(&attr, 0, -1, -1, 0);
    if (fd >= 0) {
      close(static_cast<int>(fd));
      return true;
    }
    TSDIST_LOG(LogLevel::kWarn,
               "perf counters unavailable, profiling disabled",
               F("errno", std::strerror(errno)),
               F("syscall", "perf_event_open"));
#else
    TSDIST_LOG(LogLevel::kWarn,
               "perf counters unavailable, profiling disabled",
               F("reason", "not a Linux build"));
#endif
    return false;
  }();
  return supported;
}

void SetPerfCountersEnabled(bool enabled) {
  g_perf_forced_off.store(!enabled, std::memory_order_relaxed);
}

}  // namespace tsdist::obs
