#include "src/obs/progress.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <mutex>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/obs/obs.h"

namespace tsdist::obs {

namespace {

std::atomic<ProgressReporter*> g_active{nullptr};

// Serializes SnapshotActiveProgress against install/uninstall so a reporter
// cannot be destroyed while a snapshot is reading it. ProgressTick stays
// lock-free: a tick can only come from code running *inside* the reporter's
// lifetime, whereas the telemetry server reads from an unrelated thread.
std::mutex& ActiveMutex() {
  static std::mutex* mu = new std::mutex();  // never destroyed
  return *mu;
}

// 1234567 -> "1.2M"; keeps the status line compact.
std::string HumanCount(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.1fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

std::string HumanEta(double seconds) {
  if (!std::isfinite(seconds) || seconds < 0) return "--:--";
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  char buf[32];
  if (total >= 3600) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 ":%02" PRIu64 ":%02" PRIu64,
                  total / 3600, (total / 60) % 60, total % 60);
  } else {
    std::snprintf(buf, sizeof buf, "%02" PRIu64 ":%02" PRIu64, total / 60,
                  total % 60);
  }
  return buf;
}

}  // namespace

ProgressReporter::ProgressReporter(std::string label, std::uint64_t total_units,
                                   std::ostream* out, std::string unit)
    : label_(std::move(label)),
      unit_(std::move(unit)),
      total_(total_units),
      out_(out),
      stderr_sink_(out == nullptr),
      start_ns_(NowNs()) {
#if defined(__unix__) || defined(__APPLE__)
  stderr_tty_ = isatty(STDERR_FILENO) != 0;
#else
  stderr_tty_ = true;  // no reliable detection; keep the old behavior
#endif
}

ProgressReporter::~ProgressReporter() {
  {
    const std::lock_guard<std::mutex> lock(ActiveMutex());
    ProgressReporter* self = this;
    g_active.compare_exchange_strong(self, nullptr);
  }
  Finish();
}

void ProgressReporter::Add(std::uint64_t n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  MaybePrint(/*force=*/false);
}

double ProgressReporter::RatePerSec() const {
  const std::uint64_t elapsed = NowNs() - start_ns_;
  if (elapsed == 0) return 0.0;
  return static_cast<double>(done()) * 1e9 / static_cast<double>(elapsed);
}

double ProgressReporter::EtaSeconds() const {
  const std::uint64_t d = done();
  if (total_ == 0 || d >= total_) return 0.0;
  const double rate = RatePerSec();
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(total_ - d) / rate;
}

std::string ProgressReporter::RenderLine() const {
  const std::uint64_t d = done();
  std::string line = label_;
  line += "  ";
  line += HumanCount(static_cast<double>(d));
  if (total_ > 0) {
    line += "/";
    line += HumanCount(static_cast<double>(total_));
    line += " " + unit_;
    char pct[32];
    std::snprintf(pct, sizeof pct, " (%.1f%%)",
                  100.0 * static_cast<double>(d) / static_cast<double>(total_));
    line += pct;
  } else {
    line += " " + unit_;
  }
  line += "  " + HumanCount(RatePerSec()) + "/s";
  if (total_ > 0 && d < total_) {
    line += "  ETA " + HumanEta(EtaSeconds());
  }
  return line;
}

void ProgressReporter::MaybePrint(bool force) {
  // A redirected stderr gets no `\r` frames at all (CI logs, pipes) unless
  // the driver forced printing; counting still works either way.
  if (suppressed()) return;
  const std::uint64_t now = NowNs();
  std::uint64_t last = last_print_ns_.load(std::memory_order_relaxed);
  if (!force) {
    if (last != 0 && now - last < min_interval_ns_) return;
    // One thread claims this print slot; losers skip.
    if (!last_print_ns_.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
      return;
    }
  } else {
    last_print_ns_.store(now, std::memory_order_relaxed);
  }
  printed_.store(true, std::memory_order_relaxed);
  std::ostream& out = out_ != nullptr ? *out_ : std::cerr;
  // Trailing spaces wipe leftovers from a previously longer line.
  out << "\r" << RenderLine() << "    " << std::flush;
}

void ProgressReporter::Finish() {
  if (finished_.exchange(true)) return;
  if (!printed_.load(std::memory_order_relaxed)) return;
  MaybePrint(/*force=*/true);
  std::ostream& out = out_ != nullptr ? *out_ : std::cerr;
  out << "\n" << std::flush;
}

void SetActiveProgress(ProgressReporter* reporter) {
  const std::lock_guard<std::mutex> lock(ActiveMutex());
  g_active.store(reporter, std::memory_order_release);
}

void ProgressTick(std::uint64_t n) {
  ProgressReporter* reporter = g_active.load(std::memory_order_acquire);
  if (reporter != nullptr) reporter->Add(n);
}

bool SnapshotActiveProgress(ProgressSnapshot* out) {
  const std::lock_guard<std::mutex> lock(ActiveMutex());
  const ProgressReporter* reporter = g_active.load(std::memory_order_acquire);
  if (reporter == nullptr) return false;
  out->label = reporter->label();
  out->unit = reporter->unit();
  out->done = reporter->done();
  out->total = reporter->total();
  out->rate_per_sec = reporter->RatePerSec();
  out->eta_seconds = reporter->EtaSeconds();
  return true;
}

}  // namespace tsdist::obs
