#include "src/obs/profiler.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace tsdist::obs {

namespace {

// Fixed field set of the tsdist.kernel.* family. Order matches PerfReading
// so publication and re-grouping stay in sync.
constexpr const char* kKernelFields[] = {
    "calls",         "wall_ns",        "cycles",
    "instructions",  "cache_references", "cache_misses",
    "branches",      "branch_misses",  "time_enabled_ns",
    "time_running_ns",
};

}  // namespace

bool ParseKernelMetricName(const std::string& name, std::string* field,
                           std::string* label) {
  constexpr const char kPrefix[] = "tsdist.kernel.";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  const std::size_t dot = name.find('.', kPrefixLen);
  if (dot == std::string::npos || dot + 1 >= name.size()) return false;
  const std::string f = name.substr(kPrefixLen, dot - kPrefixLen);
  for (const char* known : kKernelFields) {
    if (f == known) {
      if (field != nullptr) *field = f;
      if (label != nullptr) *label = name.substr(dot + 1);
      return true;
    }
  }
  return false;
}

std::map<std::string, KernelStats> KernelStatsBetween(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after) {
  std::map<std::string, KernelStats> out;
  for (const auto& [name, value] : after) {
    std::string field, label;
    if (!ParseKernelMetricName(name, &field, &label)) continue;
    const auto it = before.find(name);
    const std::uint64_t prev = it == before.end() ? 0 : it->second;
    const std::uint64_t delta = value > prev ? value - prev : 0;
    if (delta == 0) continue;
    KernelStats& stats = out[label];
    if (field == "calls") {
      stats.calls += delta;
    } else if (field == "wall_ns") {
      stats.wall_ns += delta;
    } else if (field == "cycles") {
      stats.perf.cycles += delta;
    } else if (field == "instructions") {
      stats.perf.instructions += delta;
    } else if (field == "cache_references") {
      stats.perf.cache_references += delta;
    } else if (field == "cache_misses") {
      stats.perf.cache_misses += delta;
    } else if (field == "branches") {
      stats.perf.branches += delta;
    } else if (field == "branch_misses") {
      stats.perf.branch_misses += delta;
    } else if (field == "time_enabled_ns") {
      stats.perf.time_enabled_ns += delta;
    } else if (field == "time_running_ns") {
      stats.perf.time_running_ns += delta;
    }
  }
  for (auto& [label, stats] : out) {
    (void)label;
    stats.perf.valid =
        stats.perf.cycles > 0 || stats.perf.instructions > 0;
  }
  // Drop labels that only moved derived fields without calls/wall (cannot
  // happen through PerfRegion, but snapshots may race with writers).
  for (auto it = out.begin(); it != out.end();) {
    if (it->second.calls == 0 && it->second.wall_ns == 0) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

}  // namespace tsdist::obs

#if !defined(TSDIST_OBS_NOOP)

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>

#include "src/obs/log.h"

// Older glibc spells the SIGEV_THREAD_ID target field through the union.
#if !defined(sigev_notify_thread_id)
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace tsdist::obs {
namespace {

// Raw frames captured per sample, including the handler + trampoline prefix
// trimmed at fold time.
constexpr int kMaxStackDepth = 32;

struct SampleSlot {
  std::uint64_t ts_ns = 0;
  std::int32_t depth = 0;
  void* pcs[kMaxStackDepth];
};

// Per-thread bounded sample store. Only the owning thread's signal handler
// writes; readers pause sampling (g_sampling) and drain before touching it.
struct SampleRing {
  SampleRing(std::size_t capacity, pid_t owner_tid)
      : slots(capacity), tid(owner_tid) {}
  std::vector<SampleSlot> slots;
  std::atomic<std::uint64_t> head{0};  ///< total samples ever written
  pid_t tid = 0;
};

struct ThreadRec {
  pid_t tid = 0;
  pthread_t pthread{};
  bool live = false;
  bool timer_armed = false;
  timer_t timer{};
  std::unique_ptr<SampleRing> ring;
};

// Handler gate: flipped off during Stop() and consistent reads.
std::atomic<bool> g_sampling{false};

std::mutex g_mu;
bool g_running = false;
ProfilerOptions g_options;
std::vector<std::unique_ptr<ThreadRec>> g_threads;  // live + retired

thread_local ThreadRec* t_rec = nullptr;

}  // namespace
}  // namespace tsdist::obs

// External linkage (and -rdynamic on the binaries) so fold-time trimming can
// recognize the handler's own frame by address. Async-signal-safe: backtrace
// (pre-warmed at Start), clock_gettime, relaxed/release atomics — no malloc,
// no locks, no formatting.
extern "C" void tsdist_profiler_signal_handler(int /*signo*/, siginfo_t* info,
                                               void* /*ucontext*/) {
  using tsdist::obs::SampleRing;
  if (info == nullptr || info->si_code != SI_TIMER) return;
  if (!tsdist::obs::g_sampling.load(std::memory_order_acquire)) return;
  auto* ring = static_cast<SampleRing*>(info->si_value.sival_ptr);
  if (ring == nullptr) return;
  const int saved_errno = errno;
  const std::uint64_t seq = ring->head.load(std::memory_order_relaxed);
  tsdist::obs::SampleSlot& slot = ring->slots[seq % ring->slots.size()];
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  slot.ts_ns = static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
  slot.depth = backtrace(slot.pcs, tsdist::obs::kMaxStackDepth);
  ring->head.store(seq + 1, std::memory_order_release);
  errno = saved_errno;
}

namespace tsdist::obs {
namespace {

void InstallHandlerOnce() {
  static const bool installed = [] {
    struct sigaction sa {};
    sa.sa_sigaction = tsdist_profiler_signal_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  if (!installed) {
    TSDIST_LOG(LogLevel::kWarn, "profiler: sigaction(SIGPROF) failed",
               F("errno", std::strerror(errno)));
  }
}

// Arms a per-thread CPU-time timer whose SIGPROF carries the ring pointer.
// Caller holds g_mu; `rec` must describe a live registered thread.
void ArmThreadLocked(ThreadRec* rec) {
  if (rec->timer_armed) return;
  if (rec->ring == nullptr) {
    rec->ring = std::make_unique<SampleRing>(g_options.ring_capacity,
                                             rec->tid);
  }
  clockid_t clock{};
  if (pthread_getcpuclockid(rec->pthread, &clock) != 0) {
    TSDIST_LOG(LogLevel::kWarn, "profiler: pthread_getcpuclockid failed",
               F("tid", static_cast<std::uint64_t>(rec->tid)));
    return;
  }
  sigevent sev{};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = rec->tid;
  sev.sigev_value.sival_ptr = rec->ring.get();
  if (timer_create(clock, &sev, &rec->timer) != 0) {
    TSDIST_LOG(LogLevel::kWarn, "profiler: timer_create failed",
               F("errno", std::strerror(errno)),
               F("tid", static_cast<std::uint64_t>(rec->tid)));
    return;
  }
  const std::uint64_t us = g_options.interval_us;
  itimerspec its{};
  its.it_interval.tv_sec = static_cast<time_t>(us / 1000000);
  its.it_interval.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  its.it_value = its.it_interval;
  if (timer_settime(rec->timer, 0, &its, nullptr) != 0) {
    TSDIST_LOG(LogLevel::kWarn, "profiler: timer_settime failed",
               F("errno", std::strerror(errno)));
    timer_delete(rec->timer);
    return;
  }
  rec->timer_armed = true;
}

void DisarmThreadLocked(ThreadRec* rec) {
  if (!rec->timer_armed) return;
  timer_delete(rec->timer);
  rec->timer_armed = false;
}

// Flips sampling off and waits out in-flight handlers plus any SIGPROF the
// kernel already queued, so rings can be read (or freed) consistently.
// Caller holds g_mu.
void QuiesceLocked() {
  g_sampling.store(false, std::memory_order_release);
  timespec pause{};
  pause.tv_nsec = 2000000;  // 2 ms >> one handler execution
  nanosleep(&pause, nullptr);
}

std::uint64_t RetainedSamples(const SampleRing& ring) {
  const std::uint64_t total = ring.head.load(std::memory_order_acquire);
  return std::min<std::uint64_t>(total, ring.slots.size());
}

std::uint64_t DroppedSamples(const SampleRing& ring) {
  const std::uint64_t total = ring.head.load(std::memory_order_acquire);
  return total > ring.slots.size() ? total - ring.slots.size() : 0;
}

// Offline symbolization with a per-dump cache. Return addresses point one
// past the call, so look up pc-1 to stay inside the calling function.
std::string SymbolizePc(void* pc, std::map<void*, std::string>* cache) {
  const auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info{};
  void* lookup = static_cast<char*>(pc) - 1;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    free(demangled);  // NOLINT: __cxa_demangle mallocs
  } else if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%s+0x%zx", base,
                  static_cast<std::size_t>(static_cast<char*>(pc) -
                                           static_cast<char*>(info.dli_fbase)));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%zx",
                  reinterpret_cast<std::size_t>(pc));
    name = buf;
  }
  // Folded format reserves ';' (frame separator) and ' ' (count separator).
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  (*cache)[pc] = name;
  return name;
}

// Drops the handler + signal-trampoline prefix from a leaf-first stack by
// recognizing the handler's own code range; symbol-independent, so it works
// even without -rdynamic.
int TrimmedStart(void* const* pcs, int depth) {
  const char* handler =
      reinterpret_cast<const char*>(&tsdist_profiler_signal_handler);
  const int scan = std::min(depth, 6);
  for (int i = 0; i < scan; ++i) {
    const char* pc = static_cast<const char*>(pcs[i]);
    if (pc >= handler && pc < handler + 4096) {
      // i is the handler frame; i+1 the kernel trampoline (__restore_rt).
      return std::min(i + 2, depth);
    }
  }
  return 0;
}

struct FoldedProfile {
  std::map<std::string, std::uint64_t> stacks;  // "root;...;leaf" -> count
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;
  std::uint64_t threads = 0;
};

// Caller holds g_mu with sampling quiesced.
FoldedProfile CollectFoldedLocked() {
  FoldedProfile out;
  std::map<void*, std::string> cache;
  for (const auto& rec : g_threads) {
    if (rec->ring == nullptr) continue;
    ++out.threads;
    const SampleRing& ring = *rec->ring;
    const std::uint64_t n = RetainedSamples(ring);
    out.dropped += DroppedSamples(ring);
    for (std::uint64_t s = 0; s < n; ++s) {
      const SampleSlot& slot = ring.slots[s];
      const int depth = std::min<std::int32_t>(slot.depth, kMaxStackDepth);
      std::string key;
      if (depth <= 0) {
        key = "[truncated]";
      } else {
        const int start = TrimmedStart(slot.pcs, depth);
        // Leaf-first capture; folded wants root first.
        for (int i = depth - 1; i >= start; --i) {
          if (!key.empty()) key += ';';
          key += SymbolizePc(slot.pcs[i], &cache);
        }
        if (key.empty()) key = "[truncated]";
      }
      ++out.stacks[key];
      ++out.samples;
    }
  }
  return out;
}

std::string JsonEscapeName(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void RegisterProfilerThread() {
  if (t_rec != nullptr) return;
  std::lock_guard<std::mutex> lock(g_mu);
  auto rec = std::make_unique<ThreadRec>();
  rec->tid = static_cast<pid_t>(syscall(SYS_gettid));
  rec->pthread = pthread_self();
  rec->live = true;
  if (g_running) ArmThreadLocked(rec.get());
  t_rec = rec.get();
  g_threads.push_back(std::move(rec));
}

void UnregisterProfilerThread() {
  if (t_rec == nullptr) return;
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadRec* rec = t_rec;
  t_rec = nullptr;
  DisarmThreadLocked(rec);
  rec->live = false;
  // Rings with samples are retired (kept for the next dump); empty records
  // are erased so churning pools do not grow the registry without bound.
  const bool keep = rec->ring != nullptr &&
                    rec->ring->head.load(std::memory_order_acquire) > 0;
  if (!keep) {
    for (auto it = g_threads.begin(); it != g_threads.end(); ++it) {
      if (it->get() == rec) {
        g_threads.erase(it);
        break;
      }
    }
  }
}

Profiler& Profiler::Global() {
  static Profiler* instance = new Profiler();
  return *instance;
}

bool Profiler::Start(const ProfilerOptions& options) {
  if (!Enabled()) {
    TSDIST_LOG(LogLevel::kWarn,
               "profiler start ignored: observability disabled");
    return false;
  }
  RegisterProfilerThread();
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_running) {
    TSDIST_LOG(LogLevel::kWarn, "profiler start ignored: already running");
    return false;
  }
  g_options = options;
  if (g_options.interval_us < 100) g_options.interval_us = 100;
  if (g_options.ring_capacity < 64) g_options.ring_capacity = 64;
  // First backtrace call may dlopen/allocate inside libgcc; force that now,
  // outside signal context.
  void* warm[4];
  backtrace(warm, 4);
  InstallHandlerOnce();
  g_sampling.store(true, std::memory_order_release);
  std::uint64_t armed = 0;
  for (const auto& rec : g_threads) {
    if (!rec->live) continue;
    ArmThreadLocked(rec.get());
    if (rec->timer_armed) ++armed;
  }
  g_running = true;
  TSDIST_LOG(LogLevel::kInfo, "profiler started",
             F("interval_us", g_options.interval_us),
             F("threads", armed));
  return true;
}

bool Profiler::Stop() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (!g_running) return false;
  QuiesceLocked();
  for (const auto& rec : g_threads) DisarmThreadLocked(rec.get());
  g_running = false;
  std::uint64_t samples = 0;
  for (const auto& rec : g_threads) {
    if (rec->ring != nullptr) samples += RetainedSamples(*rec->ring);
  }
  TSDIST_LOG(LogLevel::kInfo, "profiler stopped", F("samples", samples));
  return true;
}

bool Profiler::running() const {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_running;
}

ProfilerStatus Profiler::Status() const {
  std::lock_guard<std::mutex> lock(g_mu);
  ProfilerStatus st;
  st.running = g_running;
  st.interval_us = g_options.interval_us;
  for (const auto& rec : g_threads) {
    if (rec->ring == nullptr) continue;
    ++st.threads;
    st.samples += RetainedSamples(*rec->ring);
    st.dropped += DroppedSamples(*rec->ring);
  }
  return st;
}

void Profiler::Clear() {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_running) return;
  for (auto it = g_threads.begin(); it != g_threads.end();) {
    if ((*it)->live) {
      (*it)->ring.reset();
      ++it;
    } else {
      it = g_threads.erase(it);
    }
  }
}

std::string Profiler::RenderFolded() {
  std::lock_guard<std::mutex> lock(g_mu);
  const bool was_sampling = g_running;
  if (was_sampling) QuiesceLocked();
  const FoldedProfile p = CollectFoldedLocked();
  if (was_sampling) g_sampling.store(true, std::memory_order_release);

  std::string out = "# ";
  out += kProfileSchema;
  out += " samples=" + std::to_string(p.samples);
  out += " dropped=" + std::to_string(p.dropped);
  out += " interval_us=" + std::to_string(g_options.interval_us);
  out += " threads=" + std::to_string(p.threads);
  out += '\n';
  // Descending count, then stack text, so output is deterministic and the
  // hot stacks lead.
  std::vector<std::pair<const std::string*, std::uint64_t>> rows;
  rows.reserve(p.stacks.size());
  for (const auto& [stack, count] : p.stacks) rows.emplace_back(&stack, count);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return *a.first < *b.first;
  });
  for (const auto& [stack, count] : rows) {
    out += *stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::RenderChromeTrace() {
  std::lock_guard<std::mutex> lock(g_mu);
  const bool was_sampling = g_running;
  if (was_sampling) QuiesceLocked();

  // Intern (parent_id, name) -> frame id so common stack prefixes share
  // nodes, the shape chrome://tracing and Perfetto expect.
  std::map<std::pair<std::uint64_t, std::string>, std::uint64_t> interned;
  std::vector<std::pair<std::uint64_t, std::string>> frames;  // id-1 -> node
  std::map<void*, std::string> cache;
  std::string samples_json;
  std::uint64_t sample_count = 0;

  for (const auto& rec : g_threads) {
    if (rec->ring == nullptr) continue;
    const SampleRing& ring = *rec->ring;
    const std::uint64_t n = RetainedSamples(ring);
    for (std::uint64_t s = 0; s < n; ++s) {
      const SampleSlot& slot = ring.slots[s];
      const int depth = std::min<std::int32_t>(slot.depth, kMaxStackDepth);
      if (depth <= 0) continue;
      const int start = TrimmedStart(slot.pcs, depth);
      std::uint64_t parent = 0;  // 0 = no parent (root)
      for (int i = depth - 1; i >= start; --i) {
        const std::string name = SymbolizePc(slot.pcs[i], &cache);
        const auto key = std::make_pair(parent, name);
        auto it = interned.find(key);
        if (it == interned.end()) {
          frames.emplace_back(parent, name);
          it = interned.emplace(key, frames.size()).first;  // ids start at 1
        }
        parent = it->second;
      }
      if (parent == 0) continue;
      if (sample_count > 0) samples_json += ",\n";
      samples_json += "    {\"cpu\": 0, \"tid\": " +
                      std::to_string(ring.tid) + ", \"ts\": " +
                      std::to_string(slot.ts_ns / 1000) +
                      ", \"name\": \"cpu\", \"sf\": " +
                      std::to_string(parent) + ", \"weight\": 1}";
      ++sample_count;
    }
  }
  if (was_sampling) g_sampling.store(true, std::memory_order_release);

  std::string out = "{\n  \"traceEvents\": [],\n  \"stackFrames\": {\n";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    out += "    \"" + std::to_string(i + 1) + "\": {\"name\": \"" +
           JsonEscapeName(frames[i].second) + "\"";
    if (frames[i].first != 0) {
      out += ", \"parent\": \"" + std::to_string(frames[i].first) + "\"";
    }
    out += "}";
    if (i + 1 < frames.size()) out += ",";
    out += "\n";
  }
  out += "  },\n  \"samples\": [\n" + samples_json + "\n  ]\n}\n";
  return out;
}

bool WriteProfileFolded(const std::string& path) {
  const std::string body = Profiler::Global().RenderFolded();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    TSDIST_LOG(LogLevel::kWarn, "profile write failed", F("path", path));
    return false;
  }
  out << body;
  out.flush();
  if (!out) {
    TSDIST_LOG(LogLevel::kWarn, "profile write failed", F("path", path));
    return false;
  }
  TSDIST_LOG(LogLevel::kInfo, "profile written", F("path", path));
  return true;
}

// ---------------------------------------------------------------------------
// PerfRegion: per-label self-cost attribution.

namespace {

constexpr int kMaxRegionDepth = 16;

struct RegionFrame {
  std::string label;
  std::uint64_t start_ns = 0;
  std::uint64_t child_wall_ns = 0;
  PerfReading entry;       // raw totals at region entry (ReadNow)
  PerfReading child_perf;  // summed inclusive deltas of finished children
};

struct RegionStack {
  RegionFrame frames[kMaxRegionDepth];
  int depth = 0;
};

thread_local RegionStack t_regions;

// One long-lived counter group per thread: Start() once, then boundary
// ReadNow() snapshots. The open verdict is latched per thread, so region
// entry/exit never re-probes a denied perf_event_open.
PerfCounterGroup* ThreadPerfGroup() {
  thread_local std::unique_ptr<PerfCounterGroup> group;
  thread_local bool probed = false;
  if (!probed) {
    probed = true;
    if (PerfCountersSupported()) {
      auto g = std::make_unique<PerfCounterGroup>();
      if (g->available()) {
        g->Start();
        group = std::move(g);
      }
    }
  }
  return group.get();
}

// Field-wise a - b, saturating at zero (group reads race with nothing, but
// child sums can exceed a parent delta by rounding of multiplexed counts).
PerfReading SubSaturating(const PerfReading& a, const PerfReading& b) {
  auto sub = [](std::uint64_t x, std::uint64_t y) {
    return x > y ? x - y : 0;
  };
  PerfReading out;
  out.valid = a.valid;
  out.cycles = sub(a.cycles, b.cycles);
  out.instructions = sub(a.instructions, b.instructions);
  out.cache_references = sub(a.cache_references, b.cache_references);
  out.cache_misses = sub(a.cache_misses, b.cache_misses);
  out.branches = sub(a.branches, b.branches);
  out.branch_misses = sub(a.branch_misses, b.branch_misses);
  out.time_enabled_ns = sub(a.time_enabled_ns, b.time_enabled_ns);
  out.time_running_ns = sub(a.time_running_ns, b.time_running_ns);
  return out;
}

void AddRaw(PerfReading* into, const PerfReading& delta) {
  into->cycles += delta.cycles;
  into->instructions += delta.instructions;
  into->cache_references += delta.cache_references;
  into->cache_misses += delta.cache_misses;
  into->branches += delta.branches;
  into->branch_misses += delta.branch_misses;
  into->time_enabled_ns += delta.time_enabled_ns;
  into->time_running_ns += delta.time_running_ns;
}

void BumpKernel(const std::string& field, const std::string& label,
                std::uint64_t delta) {
  if (delta == 0) return;
  MetricsRegistry::Global()
      .GetCounter("tsdist.kernel." + field + "." + label)
      .Add(delta);
}

std::string SanitizeLabel(std::string_view label) {
  std::string out(label.empty() ? std::string_view("unlabeled") : label);
  for (char& c : out) {
    if (c == ' ' || c == '\n' || c == '"') c = '_';
  }
  return out;
}

}  // namespace

PerfRegion::PerfRegion(std::string_view label) {
  if (!Enabled()) return;
  RegionStack& st = t_regions;
  // Past the depth limit, cost folds into the nearest tracked ancestor.
  if (st.depth >= kMaxRegionDepth) return;
  RegionFrame& f = st.frames[st.depth++];
  f.label = SanitizeLabel(label);
  f.start_ns = NowNs();
  f.child_wall_ns = 0;
  f.child_perf = PerfReading{};
  if (PerfCounterGroup* g = ThreadPerfGroup()) {
    f.entry = g->ReadNow();
  } else {
    f.entry = PerfReading{};
  }
  active_ = true;
}

PerfRegion::~PerfRegion() {
  if (!active_) return;
  RegionStack& st = t_regions;
  RegionFrame& f = st.frames[st.depth - 1];
  const std::uint64_t end_ns = NowNs();
  const std::uint64_t incl_wall =
      end_ns > f.start_ns ? end_ns - f.start_ns : 0;
  const std::uint64_t self_wall =
      incl_wall > f.child_wall_ns ? incl_wall - f.child_wall_ns : 0;

  PerfReading incl_perf;
  if (f.entry.valid) {
    if (PerfCounterGroup* g = ThreadPerfGroup()) {
      const PerfReading exit = g->ReadNow();
      if (exit.valid) incl_perf = SubSaturating(exit, f.entry);
    }
  }

  BumpKernel("calls", f.label, 1);
  BumpKernel("wall_ns", f.label, self_wall);
  if (incl_perf.valid) {
    const PerfReading self = SubSaturating(incl_perf, f.child_perf);
    BumpKernel("cycles", f.label, self.cycles);
    BumpKernel("instructions", f.label, self.instructions);
    BumpKernel("cache_references", f.label, self.cache_references);
    BumpKernel("cache_misses", f.label, self.cache_misses);
    BumpKernel("branches", f.label, self.branches);
    BumpKernel("branch_misses", f.label, self.branch_misses);
    BumpKernel("time_enabled_ns", f.label, self.time_enabled_ns);
    BumpKernel("time_running_ns", f.label, self.time_running_ns);
  }

  --st.depth;
  if (st.depth > 0) {
    RegionFrame& parent = st.frames[st.depth - 1];
    parent.child_wall_ns += incl_wall;
    if (incl_perf.valid) AddRaw(&parent.child_perf, incl_perf);
  }
  f.label.clear();
}

}  // namespace tsdist::obs

#endif  // !TSDIST_OBS_NOOP
