#include "src/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/obs/obs.h"

namespace tsdist::obs {

namespace {

#if !defined(TSDIST_OBS_NOOP)
std::atomic<bool> g_enabled{true};
#endif

// JSON string escaping for metric names (ASCII control chars, quote,
// backslash).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Formats a double so the output is valid JSON (no inf/nan literals).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

#if !defined(TSDIST_OBS_NOOP)
bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    seen += bucket_counts[i];
    if (seen >= target && bucket_counts[i] > 0) {
      // Overflow bucket has no finite bound; report the observed max.
      if (i >= Histogram::kFiniteBuckets) return static_cast<double>(max);
      return static_cast<double>(
          std::min<std::uint64_t>(Histogram::BucketBound(i), max));
    }
  }
  return static_cast<double>(max);
}

std::size_t Histogram::BucketIndex(std::uint64_t value) {
  if (value <= 64) return 0;
  const std::size_t idx = static_cast<std::size_t>(std::bit_width(value - 1)) - 6;
  return std::min(idx, kFiniteBuckets);  // kFiniteBuckets == overflow slot
}

void Histogram::Record(std::uint64_t value) {
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t observed = shard.min.load(std::memory_order_relaxed);
  while (value < observed &&
         !shard.min.compare_exchange_weak(observed, value,
                                          std::memory_order_relaxed)) {
  }
  observed = shard.max.load(std::memory_order_relaxed);
  while (value > observed &&
         !shard.max.compare_exchange_weak(observed, value,
                                          std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  out.bucket_counts.assign(kFiniteBuckets + 1, 0);
  std::uint64_t min = ~std::uint64_t{0};
  for (const Shard& shard : shards_) {
    for (std::size_t i = 0; i <= kFiniteBuckets; ++i) {
      out.bucket_counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    out.max = std::max(out.max, shard.max.load(std::memory_order_relaxed));
  }
  out.min = out.count == 0 ? 0 : min;
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms[name] = histogram->Snapshot();
  }
  return out;
}

std::string SnapshotToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"tsdist.metrics.v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << JsonNumber(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name) << "\": {"
       << "\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < Histogram::kFiniteBuckets) {
        os << Histogram::BucketBound(i);
      } else {
        os << "\"+Inf\"";
      }
      os << ", \"count\": " << h.bucket_counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

std::string MetricsRegistry::ToJson() const { return SnapshotToJson(Snapshot()); }

std::string MetricsRegistry::ToCsv() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::ostringstream os;
  os << "type,name,count,sum,min,max,mean,p50,p90,p99\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << "counter," << name << ",," << value << ",,,,,,\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "gauge," << name << ",," << JsonNumber(value) << ",,,,,,\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << "histogram," << name << "," << h.count << "," << h.sum << ","
       << h.min << "," << h.max << "," << JsonNumber(h.Mean()) << ","
       << JsonNumber(h.Quantile(0.5)) << "," << JsonNumber(h.Quantile(0.9))
       << "," << JsonNumber(h.Quantile(0.99)) << "\n";
  }
  return os.str();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tsdist::obs
