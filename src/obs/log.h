// Structured, leveled event logging (`tsdist.log.v1`).
//
// Every event carries a monotonic timestamp, a small sequential thread id,
// a level (debug/info/warn/error), a message, and free-form key/value
// fields. Producers never block and never take a lock: events go through a
// bounded lock-free MPSC ring (Vyukov-style sequenced slots) drained by a
// single sink thread. When the ring is full the event is dropped and
// counted in `tsdist.log.suppressed` — logging degrades, it never stalls
// the evaluation.
//
// Sinks (all fed by the one drain loop, in ring order):
//   * stderr  — human-readable line per event at >= info (colored when
//               stderr is a TTY); this replaces the ad-hoc fprintf/cerr
//               sites that used to be scattered through the pipeline;
//   * file    — JSON-lines `tsdist.log.v1` records (tsdist_eval
//               --log-json FILE);
//   * tail    — a bounded in-memory ring of the most recent formatted JSON
//               lines, served live at the exposition server's /logz.
//
// Noisy call-sites are rate limited with a per-site token bucket
// (TSDIST_LOG declares one static LogSite per expansion); suppressed events
// are counted globally and per site, and the next admitted event from a
// throttled site carries a "suppressed" field with the dropped count.
//
// Determinism: logging only reads the clock and formats strings — it never
// feeds back into numerical results. For byte-identical output in tests the
// clock can be replaced (SetClockForTest).
//
// Under TSDIST_OBS_NOOP the TSDIST_LOG macro bypasses the ring, the
// metrics, and the rate limiter entirely and degrades to a direct stderr
// print (operator-facing messages must survive the no-op build); the Logger
// class itself stays functional so tools keep linking.

#ifndef TSDIST_OBS_LOG_H_
#define TSDIST_OBS_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tsdist::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// "debug" / "info" / "warn" / "error".
const char* ToString(LogLevel level);

/// One key/value field. `json` holds the value as a ready-to-emit JSON
/// token (quoted string, bare number, true/false) — built via F() so the
/// formatting decision happens once, at the call site.
struct LogField {
  std::string key;
  std::string json;
};

/// Field constructors (string values are JSON-escaped and quoted; numbers
/// are emitted bare; non-finite doubles degrade to 0).
LogField F(std::string key, const std::string& value);
LogField F(std::string key, const char* value);
LogField F(std::string key, double value);
LogField F(std::string key, std::uint64_t value);
LogField F(std::string key, std::int64_t value);
LogField F(std::string key, int value);
LogField F(std::string key, unsigned int value);
LogField F(std::string key, bool value);

/// One fully formed event, as it travels through the ring.
struct LogEvent {
  std::uint64_t ts_ns = 0;  ///< monotonic, arbitrary epoch (obs::NowNs)
  std::uint32_t tid = 0;    ///< small sequential thread id
  LogLevel level = LogLevel::kInfo;
  std::string message;
  std::vector<LogField> fields;
};

/// Per-call-site rate-limiter state: a token bucket refilled at `rate_per_sec`
/// up to `burst` tokens. Declared `static` by the TSDIST_LOG macro so each
/// textual call site throttles independently. Zero-initialization is a full
/// bucket.
struct LogSite {
  constexpr LogSite(const char* file_in, int line_in)
      : file(file_in), line(line_in) {}

  const char* file = "";
  int line = 0;
  double burst = 20.0;
  double rate_per_sec = 10.0;

  // State below is guarded by the spin flag; log sites are warm paths at
  // most, never per-cell hot paths.
  std::atomic_flag lock;  // default-clear since C++20
  double tokens = -1.0;  ///< -1 = not yet initialized (treated as full)
  std::uint64_t last_refill_ns = 0;
  std::uint64_t suppressed = 0;  ///< drops since the last admitted event
};

/// Process-wide logger. Thread-safe; the Global() instance is never
/// destroyed (drivers call Flush()/CloseJsonSink() before exit).
class Logger {
 public:
  /// Capacity of the producer ring (events in flight between producers and
  /// the sink thread) — power of two.
  static constexpr std::size_t kRingCapacity = 8192;
  /// Formatted JSON lines retained for /logz.
  static constexpr std::size_t kDefaultTailCapacity = 256;

  Logger();
  ~Logger();

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  static Logger& Global();

  /// Enqueues one event (non-blocking). Drops + counts when the ring is
  /// full or the site's token bucket is empty. `site` may be null (no rate
  /// limiting). Events below the level floor are dropped silently.
  void Log(LogLevel level, std::string message,
           std::vector<LogField> fields = {}, LogSite* site = nullptr);

  /// Minimum level that enters the ring at all (default: debug — the
  /// stderr sink applies its own floor).
  void SetLevel(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Opens the JSON-lines sink (tsdist.log.v1 records, one per line).
  /// Returns false and fills `error` when the file cannot be opened.
  bool OpenJsonSink(const std::string& path, std::string* error);
  /// Flushes and closes the JSON sink (idempotent).
  void CloseJsonSink();

  /// Stderr sink master switch (default on) and its level floor (default
  /// info). The sink renders one human-readable line per event, with ANSI
  /// colors only when stderr is a terminal.
  void SetStderrSink(bool enabled) {
    stderr_sink_.store(enabled, std::memory_order_relaxed);
  }
  void SetStderrLevel(LogLevel level) {
    stderr_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// The most recent formatted JSON lines (oldest first), newest-`max_lines`
  /// capped; serves /logz.
  std::vector<std::string> Tail(std::size_t max_lines = kDefaultTailCapacity) const;

  /// Blocks until every event enqueued before the call has been drained to
  /// all sinks (and fflushes them). Safe from any thread except the sink
  /// thread itself.
  void Flush();

  /// Events dropped because the ring was full or a site was throttled
  /// (mirrors the tsdist.log.suppressed counter, but usable when the
  /// metrics registry was Reset() by a test).
  std::uint64_t suppressed_events() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  /// Events accepted into the ring over the logger's lifetime.
  std::uint64_t enqueued_events() const {
    return enqueued_.load(std::memory_order_relaxed);
  }

  /// Replaces the timestamp source (nullptr restores obs::NowNs). Test-only:
  /// lets determinism tests produce byte-identical JSON sinks.
  void SetClockForTest(std::function<std::uint64_t()> clock);

 private:
  struct Cell;

  bool TryEnqueue(LogEvent event);
  void SinkLoop();
  void DrainOnce();          // sink thread: dequeue + dispatch everything
  void Dispatch(const LogEvent& event);
  std::uint64_t Now() const;

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kDebug)};
  std::atomic<bool> stderr_sink_{true};
  std::atomic<int> stderr_level_{static_cast<int>(LogLevel::kInfo)};
  bool stderr_tty_ = false;

  // MPSC ring (Vyukov sequenced slots).
  std::unique_ptr<Cell[]> cells_;
  std::atomic<std::uint64_t> enqueue_pos_{0};
  std::uint64_t dequeue_pos_ = 0;  // sink thread only
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> suppressed_{0};

  // Sink thread + wakeup.
  std::mutex sink_mu_;
  std::condition_variable sink_cv_;
  std::condition_variable flush_cv_;
  std::uint64_t drained_ = 0;  // events dispatched so far (sink_mu_)
  bool stop_ = false;
  std::thread sink_thread_;

  // Sinks (sink thread writes; config calls take sink_mu_).
  std::FILE* json_file_ = nullptr;
  mutable std::mutex tail_mu_;
  std::deque<std::string> tail_;

  std::mutex clock_mu_;
  std::function<std::uint64_t()> clock_;  // empty = obs::NowNs
};

/// Serializes one event as a tsdist.log.v1 JSON line (no trailing newline).
std::string LogEventToJson(const LogEvent& event);

/// Human-readable rendering used by the stderr sink (no trailing newline).
std::string LogEventPretty(const LogEvent& event, bool color);

/// Direct, ring-free stderr print for TSDIST_OBS_NOOP builds: keeps
/// operator-facing messages alive when the instrumentation is compiled out.
void LogDirect(LogLevel level, const std::string& message,
               std::vector<LogField> fields = {});

#if defined(TSDIST_OBS_NOOP)
#define TSDIST_LOG(level_, msg_, ...) \
  ::tsdist::obs::LogDirect((level_), (msg_), {__VA_ARGS__})
#else
/// Logs through the global logger with one static rate-limiter per textual
/// call site. Fields are built with obs::F, e.g.
///   TSDIST_LOG(obs::LogLevel::kWarn, "eigensolve failed",
///              obs::F("n", n), obs::F("reason", e.what()));
#define TSDIST_LOG(level_, msg_, ...)                                      \
  do {                                                                     \
    static ::tsdist::obs::LogSite tsdist_log_site_{__FILE__, __LINE__};    \
    ::tsdist::obs::Logger::Global().Log((level_), (msg_), {__VA_ARGS__},   \
                                        &tsdist_log_site_);                \
  } while (0)
#endif

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_LOG_H_
