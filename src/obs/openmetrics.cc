#include "src/obs/openmetrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace tsdist::obs {

namespace {

// Gauges are doubles but almost always carry integral values (RSS bytes,
// thread counts); print those without an exponent so the exposition stays
// human-readable, and fall back to %.17g for true fractions.
std::string GaugeNumber(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::string OpenMetricsName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  if (out.empty()) return "_";
  if (std::isdigit(static_cast<unsigned char>(out.front())) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string RenderOpenMetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " counter\n";
    out += om + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " gauge\n";
    out += om + " " + GaugeNumber(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string om = OpenMetricsName(name);
    out += "# TYPE " + om + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bucket_counts.size(); ++i) {
      cumulative += h.bucket_counts[i];
      out += om + "_bucket{le=\"";
      if (i < Histogram::kFiniteBuckets) {
        out += std::to_string(Histogram::BucketBound(i));
      } else {
        out += "+Inf";
      }
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += om + "_sum " + std::to_string(h.sum) + "\n";
    out += om + "_count " + std::to_string(h.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

}  // namespace tsdist::obs
