// Run provenance and the tsdist.bench.v2 report writer.
//
// A benchmark number without provenance cannot be compared across commits:
// the same binary name may have been built from a dirty tree, with different
// flags, or run on a different CPU. RunManifest captures that context once
// per run — git SHA + dirty flag (baked in at build time via the generated
// buildinfo header), compiler id and flags, build type, CPU model and core
// count, thread count, RNG seed, and the schema version — and every
// tsdist.bench.v2 artifact embeds it.
//
// BenchReport is the in-memory form of one BENCH_<name>.json file: a set of
// named cases, each holding the raw per-iteration wall-clock samples (warmup
// iterations are discarded before recording), plus the peak-RSS gauge and an
// embedded tsdist.metrics.v1 snapshot. bench_compare consumes the sample
// arrays directly — min/median/p90 in the JSON are derived conveniences.

#ifndef TSDIST_OBS_RUNINFO_H_
#define TSDIST_OBS_RUNINFO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/heap_profiler.h"
#include "src/obs/perf_counters.h"
#include "src/obs/profiler.h"

namespace tsdist::obs {

/// Provenance for one benchmark run; serialized into every v2 artifact.
struct RunManifest {
  int schema_version = 2;
  std::string git_sha;        ///< HEAD commit at build time ("unknown" if absent)
  bool git_dirty = false;     ///< uncommitted changes at build time
  std::string compiler;       ///< e.g. "GNU 13.2.0"
  std::string compiler_flags; ///< base + build-type CXX flags
  std::string build_type;     ///< e.g. "Release"
  std::string cpu_model;      ///< from /proc/cpuinfo ("unknown" if unreadable)
  int cpu_cores = 0;          ///< hardware concurrency
  std::uint64_t threads = 0;  ///< worker threads the run was configured with
  std::uint64_t rng_seed = 0; ///< archive/data generator seed
  std::string scale;          ///< archive scale preset the run used
};

/// Fills a manifest from the build-time constants and the live host.
RunManifest CollectRunManifest(std::uint64_t threads, std::uint64_t rng_seed,
                               std::string scale);

/// Serializes a manifest as a JSON object, each line prefixed by `indent`
/// spaces (the opening brace is not indented so the value can follow a key).
std::string ManifestToJson(const RunManifest& manifest, int indent);

/// Peak resident set size of this process in bytes (0 when unavailable).
/// Monotone over the process lifetime by definition.
std::uint64_t PeakRssBytes();

/// Sets the `tsdist.proc.peak_rss_bytes` gauge to the current peak RSS.
/// Successive calls can only raise the gauge value.
void UpdatePeakRssGauge();

/// Current (not peak) resident set size in bytes, read from
/// /proc/self/status VmRSS. Returns 0 on non-Linux platforms or when the
/// file is unreadable — callers treat 0 as "unavailable".
std::uint64_t CurrentRssBytes();

/// Sets the `tsdist.proc.current_rss_bytes` gauge to CurrentRssBytes().
/// Unlike the peak gauge this can move in both directions; /healthz and the
/// expo sampler use it to show live footprint, not just high-water.
void UpdateCurrentRssGauge();

/// One measured case: `samples_ms` holds exactly the measured iterations
/// (never the warmup ones), in execution order.
struct BenchCaseResult {
  std::string name;
  int warmup = 0;
  std::vector<double> samples_ms;
  /// Hardware counters summed over the measured iterations (calling-thread
  /// scope — see perf_counters.h). `perf.valid` false (counters unavailable
  /// or disabled) omits the `perf` block from the JSON entirely.
  PerfReading perf;
  /// Per-label kernel self-cost over the measured iterations (PerfRegion
  /// deltas of the tsdist.kernel.* family). Empty map omits the
  /// `kernel_attribution` block from the JSON.
  std::map<std::string, KernelStats> kernel;
  /// Per-label heap attribution over the measured iterations (MemRegion
  /// deltas of the tsdist.mem.* family; see MemStatsBetween). Empty map
  /// omits the `memory_attribution` block from the JSON.
  std::map<std::string, MemStats> memory;
};

/// In-memory form of one tsdist.bench.v2 benchmark artifact.
struct BenchReport {
  std::string bench;
  std::string scale;
  std::uint64_t threads = 0;
  double wall_ms = 0.0;
  RunManifest manifest;
  std::uint64_t peak_rss_bytes = 0;
  std::vector<BenchCaseResult> cases;
  std::string metrics_json;  ///< serialized tsdist.metrics.v1 object
};

/// Serializes a report as the tsdist.bench.v2 JSON document (schema
/// validated by tools/check_metrics_schema.py). Derives min/median/p90/mean
/// per case from the sample arrays.
std::string BenchReportToJson(const BenchReport& report);

/// Median of `samples` (0 for empty); does not require sorted input.
double SampleMedian(std::vector<double> samples);

/// Quantile q in [0,1] of `samples` by nearest-rank (0 for empty).
double SampleQuantile(std::vector<double> samples, double q);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_RUNINFO_H_
