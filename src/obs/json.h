// Minimal read-only JSON parser for tsdist's own artifacts.
//
// The observability layer emits JSON (tsdist.metrics.v1 snapshots,
// tsdist.bench.v2 reports, Chrome traces) and several tools consume it back:
// the bench orchestrator aggregates per-bench reports into a suite file and
// bench_compare diffs two suites. This parser covers exactly the JSON those
// writers produce — objects, arrays, strings with the escapes JsonEscape
// emits, numbers, booleans, null — with no external dependency. It is a
// tooling/test path, not a hot path: documents are a few MB at most.

#ifndef TSDIST_OBS_JSON_H_
#define TSDIST_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace tsdist::obs {

/// One parsed JSON value. Object keys are unique (last wins, like most
/// parsers); numbers are stored as double, which is exact for every integer
/// the tsdist writers emit below 2^53.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::runtime_error on type mismatch.
  bool AsBool() const;
  double AsDouble() const;
  std::int64_t AsInt() const;  ///< AsDouble() truncated; throws if non-finite
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object member lookup: nullptr when absent or when this is not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups with defaults (absent or wrong type -> fallback).
  double GetDouble(const std::string& key, double fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  // Construction is internal to the parser.
  static JsonValue MakeNull() { return JsonValue(Type::kNull); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

 private:
  explicit JsonValue(Type type) : type_(type) {}

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses `text` as one JSON document; throws std::runtime_error with a
/// byte offset on malformed input or trailing garbage.
JsonValue ParseJson(const std::string& text);

/// Reads and parses a JSON file; throws std::runtime_error naming the path
/// when the file cannot be read or parsed.
JsonValue ParseJsonFile(const std::string& path);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_JSON_H_
