#include "src/obs/heap_profiler.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace tsdist::obs {

namespace {

// Fixed field set of the tsdist.mem.* family. alloc_bytes/alloc_count are
// counters; peak_live_bytes is a gauge (a high-water mark, not a rate).
constexpr const char* kMemFields[] = {
    "alloc_bytes",
    "alloc_count",
    "peak_live_bytes",
};

}  // namespace

bool ParseMemMetricName(const std::string& name, std::string* field,
                        std::string* label) {
  constexpr const char kPrefix[] = "tsdist.mem.";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return false;
  const std::size_t dot = name.find('.', kPrefixLen);
  if (dot == std::string::npos || dot + 1 >= name.size()) return false;
  const std::string f = name.substr(kPrefixLen, dot - kPrefixLen);
  for (const char* known : kMemFields) {
    if (f == known) {
      if (field != nullptr) *field = f;
      if (label != nullptr) *label = name.substr(dot + 1);
      return true;
    }
  }
  return false;
}

std::map<std::string, MemStats> MemStatsBetween(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after,
    const std::map<std::string, double>& gauges_after) {
  std::map<std::string, MemStats> out;
  for (const auto& [name, value] : after) {
    std::string field, label;
    if (!ParseMemMetricName(name, &field, &label)) continue;
    const auto it = before.find(name);
    const std::uint64_t prev = it == before.end() ? 0 : it->second;
    const std::uint64_t delta = value > prev ? value - prev : 0;
    if (delta == 0) continue;
    if (field == "alloc_bytes") {
      out[label].alloc_bytes += delta;
    } else if (field == "alloc_count") {
      out[label].alloc_count += delta;
    }
    // peak_live_bytes lives in the gauge map; a counter with that name is
    // outside the contract and ignored.
  }
  // Labels whose counters never moved are dropped before peaks are attached,
  // so an idle label with a stale peak gauge does not resurface.
  for (auto it = out.begin(); it != out.end();) {
    if (it->second.alloc_bytes == 0 && it->second.alloc_count == 0) {
      it = out.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [name, value] : gauges_after) {
    std::string field, label;
    if (!ParseMemMetricName(name, &field, &label)) continue;
    if (field != "peak_live_bytes") continue;
    const auto it = out.find(label);
    if (it == out.end()) continue;
    it->second.peak_live_bytes =
        value > 0 ? static_cast<std::uint64_t>(value) : 0;
  }
  return out;
}

}  // namespace tsdist::obs

#if defined(TSDIST_OBS_NOOP)

namespace tsdist::obs {

bool HeapProfilingAvailable() { return false; }

void ResetMemPeaks() {}

}  // namespace tsdist::obs

#else  // !TSDIST_OBS_NOOP

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>
#include <utility>

#include "src/obs/log.h"

// The wrappers are only compiled when glibc backs the allocator (so the
// __libc_* entry points exist) and no sanitizer owns malloc — ASan/TSan
// interpose the same symbols and must win.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define TSDIST_HEAP_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define TSDIST_HEAP_SANITIZED 1
#endif
#endif

#if !defined(TSDIST_HEAP_SANITIZED) && defined(__GLIBC__)
#define TSDIST_HEAP_INTERPOSE 1
#endif

#if defined(TSDIST_HEAP_INTERPOSE)
// The real glibc allocator entry points. Resolved directly (not via dlsym,
// which itself allocates) so the wrappers work from the first pre-main
// allocation onward.
extern "C" void* __libc_malloc(std::size_t size);
extern "C" void __libc_free(void* ptr);
extern "C" void* __libc_realloc(void* ptr, std::size_t size);
extern "C" void* __libc_calloc(std::size_t n, std::size_t size);
extern "C" void* __libc_memalign(std::size_t alignment, std::size_t size);
#endif

#define TSDIST_HEAP_NOINLINE __attribute__((noinline))

namespace tsdist::obs {
namespace {

constexpr int kMaxHeapStackDepth = 32;
constexpr std::uint64_t kMinIntervalBytes = 1024;
constexpr std::size_t kLiveShardCount = 16;  // power of two
constexpr std::size_t kMaxTrackedStacks = 1 << 14;
constexpr int kMaxMemRegionDepth = 16;

// Per-label attribution state. Counter/gauge pointers are resolved once at
// MemRegion entry (registry lookup takes a mutex — never safe inside the
// hook); the hook only performs lock-free adds on them. Entries are never
// freed: labels are low-cardinality by contract.
struct MemLabelStats {
  Counter* bytes_counter = nullptr;
  Counter* count_counter = nullptr;
  Gauge* peak_gauge = nullptr;
  std::atomic<std::uint64_t> live_bytes{0};       // sampled upscaled estimate
  std::atomic<std::uint64_t> peak_live_bytes{0};  // high-water of live_bytes
};

// One sampled call stack with its byte aggregates. pcs are leaf-first as
// captured; aggregates are atomics because frees retire bytes without the
// stack-table mutex.
struct StackRec {
  std::vector<void*> pcs;
  std::atomic<std::uint64_t> cum_bytes{0};
  std::atomic<std::uint64_t> cum_count{0};
  std::atomic<std::uint64_t> live_bytes{0};
  std::atomic<std::uint64_t> live_count{0};
};

// One sampled live allocation, keyed by pointer in its shard.
struct LiveRec {
  std::uint64_t weight = 0;
  StackRec* stack = nullptr;
  MemLabelStats* label = nullptr;
};

struct alignas(64) LiveShard {
  std::mutex mu;
  std::unordered_map<std::uintptr_t, LiveRec> map;
};

// Fast-path gates. All constant-initialized: the wrappers run before any
// static constructor, so nothing here may require dynamic initialization.
std::atomic<bool> g_sampling{false};
std::atomic<std::uint64_t> g_tracked{0};  // live-table entries
std::atomic<std::uint64_t> g_epoch{0};
std::atomic<std::int64_t> g_interval{512 * 1024};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<std::uint64_t> g_live_bytes_total{0};
std::atomic<std::uint64_t> g_cum_bytes_total{0};

std::mutex g_heap_mu;  // API state below
bool g_heap_running = false;
HeapProfilerOptions g_heap_options;

// Sampled-stack table and live shards, allocated at first Start() and
// intentionally leaked so late frees in static destructors stay safe.
std::mutex g_stacks_mu;
std::map<std::vector<void*>, std::unique_ptr<StackRec>>* g_stacks = nullptr;
LiveShard* g_live_shards = nullptr;

// Label registry (MemRegion entry only — never the hook).
std::mutex g_labels_mu;
std::map<std::string, std::unique_ptr<MemLabelStats>>* g_labels = nullptr;

// Trivially-initialized thread state: byte countdown to the next sample
// (epoch-stamped so Start() resets every thread lazily) and the reentrancy
// guard that keeps profiler-internal allocations out of the accounting.
struct ThreadHeapState {
  std::uint64_t epoch;
  std::int64_t countdown;
  bool in_hook;
};
thread_local ThreadHeapState t_heap;  // zero-initialized

struct MemRegionStack {
  MemLabelStats* stack[kMaxMemRegionDepth];
  int depth;
};
thread_local MemRegionStack t_mem;                 // zero-initialized
thread_local MemLabelStats* t_mem_current;         // innermost active label

// RAII reentrancy guard for profiler-internal code paths (render, table
// bookkeeping): their allocations neither sample nor attribute.
class ScopedHookGuard {
 public:
  ScopedHookGuard() : saved_(t_heap.in_hook) { t_heap.in_hook = true; }
  ~ScopedHookGuard() { t_heap.in_hook = saved_; }
  ScopedHookGuard(const ScopedHookGuard&) = delete;
  ScopedHookGuard& operator=(const ScopedHookGuard&) = delete;

 private:
  bool saved_;
};

// The next three helpers serve the wrapper hook paths; without the
// interposed wrappers (sanitizer / non-glibc builds) nothing calls them.
[[maybe_unused]] std::size_t ShardIndex(const void* ptr) {
  const auto p = reinterpret_cast<std::uintptr_t>(ptr);
  return ((p >> 4) ^ (p >> 12)) & (kLiveShardCount - 1);
}

[[maybe_unused]] void SubClamped(std::atomic<std::uint64_t>* value,
                                 std::uint64_t delta) {
  std::uint64_t observed = value->load(std::memory_order_relaxed);
  while (!value->compare_exchange_weak(
      observed, observed > delta ? observed - delta : 0,
      std::memory_order_relaxed)) {
  }
}

// Raises the label's live high-water mark and mirrors it into the gauge.
[[maybe_unused]] void RaiseLabelPeak(MemLabelStats* label,
                                     std::uint64_t live_now) {
  std::uint64_t peak = label->peak_live_bytes.load(std::memory_order_relaxed);
  while (live_now > peak &&
         !label->peak_live_bytes.compare_exchange_weak(
             peak, live_now, std::memory_order_relaxed)) {
  }
  if (live_now > peak) {
    label->peak_gauge->Set(static_cast<double>(live_now));
  }
}

// Offline symbolization with a per-dump cache (same contract as the CPU
// profiler's: pc-1 lookup, demangle, module+offset fallback, folded-format
// character sanitization).
std::string SymbolizeHeapPc(void* pc, std::map<void*, std::string>* cache) {
  const auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info{};
  void* lookup = static_cast<char*>(pc) - 1;
  if (dladdr(lookup, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    free(demangled);  // NOLINT: __cxa_demangle mallocs
  } else if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    char buf[256];
    std::snprintf(buf, sizeof buf, "%s+0x%zx", base,
                  static_cast<std::size_t>(static_cast<char*>(pc) -
                                           static_cast<char*>(info.dli_fbase)));
    name = buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%zx",
                  reinterpret_cast<std::size_t>(pc));
    name = buf;
  }
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n') c = '_';
  }
  (*cache)[pc] = name;
  return name;
}

// Caller holds g_heap_mu (Start path). Leaked on purpose — see above.
void EnsureTablesLocked() {
  if (g_live_shards == nullptr) g_live_shards = new LiveShard[kLiveShardCount];
  std::lock_guard<std::mutex> lock(g_stacks_mu);
  if (g_stacks == nullptr) {
    g_stacks = new std::map<std::vector<void*>, std::unique_ptr<StackRec>>();
  }
}

std::string SanitizeMemLabel(std::string_view label) {
  std::string out(label.empty() ? std::string_view("unlabeled") : label);
  for (char& c : out) {
    if (c == ' ' || c == '\n' || c == '"') c = '_';
  }
  return out;
}

// MemRegion entry only: resolves (or creates) the per-label stats record.
// Takes g_labels_mu and the registry mutex — never callable from the hook.
MemLabelStats* GetLabelStats(const std::string& label) {
  std::lock_guard<std::mutex> lock(g_labels_mu);
  if (g_labels == nullptr) {
    g_labels = new std::map<std::string, std::unique_ptr<MemLabelStats>>();
  }
  auto it = g_labels->find(label);
  if (it == g_labels->end()) {
    auto stats = std::make_unique<MemLabelStats>();
    MetricsRegistry& registry = MetricsRegistry::Global();
    stats->bytes_counter =
        &registry.GetCounter("tsdist.mem.alloc_bytes." + label);
    stats->count_counter =
        &registry.GetCounter("tsdist.mem.alloc_count." + label);
    stats->peak_gauge =
        &registry.GetGauge("tsdist.mem.peak_live_bytes." + label);
    it = g_labels->emplace(label, std::move(stats)).first;
  }
  return it->second.get();
}

// One merged folded row after symbolization.
struct HeapRow {
  std::uint64_t live = 0;
  std::uint64_t cum = 0;
  std::uint64_t count = 0;
};

// Snapshots the stack table and symbolizes it into "root;...;leaf" rows.
// Totals are summed from the emitted rows so the rendered header always
// equals the column sums, even while frees race with the copy.
std::map<std::string, HeapRow> CollectHeapRows() {
  ScopedHookGuard guard;
  struct RawRow {
    std::vector<void*> pcs;
    std::uint64_t live = 0;
    std::uint64_t cum = 0;
    std::uint64_t count = 0;
  };
  std::vector<RawRow> raw;
  {
    std::lock_guard<std::mutex> lock(g_stacks_mu);
    if (g_stacks != nullptr) {
      raw.reserve(g_stacks->size());
      for (const auto& [pcs, rec] : *g_stacks) {
        RawRow row;
        row.pcs = pcs;
        row.live = rec->live_bytes.load(std::memory_order_relaxed);
        row.cum = rec->cum_bytes.load(std::memory_order_relaxed);
        row.count = rec->cum_count.load(std::memory_order_relaxed);
        raw.push_back(std::move(row));
      }
    }
  }
  std::map<void*, std::string> cache;
  std::map<std::string, HeapRow> rows;
  for (const RawRow& r : raw) {
    if (r.cum == 0) continue;
    std::string key;
    for (auto it = r.pcs.rbegin(); it != r.pcs.rend(); ++it) {
      if (!key.empty()) key += ';';
      key += SymbolizeHeapPc(*it, &cache);
    }
    if (key.empty()) key = "[truncated]";
    HeapRow& row = rows[key];
    row.live += r.live;
    row.cum += r.cum;
    row.count += r.count;
  }
  return rows;
}

}  // namespace
}  // namespace tsdist::obs

#if defined(TSDIST_HEAP_INTERPOSE)

namespace tsdist::obs {
namespace {

// Forward declaration so the marker table below can reference it.
TSDIST_HEAP_NOINLINE void RecordSample(void* ptr, std::size_t size,
                                       MemLabelStats* label);

// Attributes and (countdown permitting) samples one successful allocation.
// Runs on every malloc in the process: the no-region, no-sampling path is
// two thread-local reads and one relaxed atomic load.
TSDIST_HEAP_NOINLINE void AccountAlloc(void* ptr, std::size_t size) {
  if (ptr == nullptr) return;
  ThreadHeapState& ts = t_heap;
  if (ts.in_hook) return;
  MemLabelStats* label = t_mem_current;
  const bool sampling = g_sampling.load(std::memory_order_acquire);
  if (label == nullptr && !sampling) return;
  ts.in_hook = true;
  if (label != nullptr) {
    label->bytes_counter->Add(size);
    label->count_counter->Add(1);
  }
  if (sampling) {
    const std::uint64_t epoch = g_epoch.load(std::memory_order_relaxed);
    if (ts.epoch != epoch) {
      ts.epoch = epoch;
      ts.countdown = g_interval.load(std::memory_order_relaxed);
    }
    ts.countdown -= static_cast<std::int64_t>(size);
    if (ts.countdown <= 0) RecordSample(ptr, size, label);
  }
  ts.in_hook = false;
}

// Retires a sampled allocation. Runs on every free, but costs a single
// relaxed load while the live table is empty (profiler never armed).
void AccountFree(void* ptr) {
  if (ptr == nullptr) return;
  if (g_tracked.load(std::memory_order_acquire) == 0) return;
  if (t_heap.in_hook) return;
  t_heap.in_hook = true;
  LiveShard& shard = g_live_shards[ShardIndex(ptr)];
  LiveRec rec;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(reinterpret_cast<std::uintptr_t>(ptr));
    if (it != shard.map.end()) {
      rec = it->second;
      shard.map.erase(it);
      found = true;
    }
  }
  if (found) {
    g_tracked.fetch_sub(1, std::memory_order_release);
    SubClamped(&rec.stack->live_bytes, rec.weight);
    SubClamped(&rec.stack->live_count, 1);
    SubClamped(&g_live_bytes_total, rec.weight);
    if (rec.label != nullptr) SubClamped(&rec.label->live_bytes, rec.weight);
  }
  t_heap.in_hook = false;
}

// Fold-time trimming markers: frames inside these functions are profiler
// plumbing, not the allocation site. Addresses are compared by range because
// the hook chain is partly internal-linkage (dladdr cannot name it).
const std::array<const char*, 10>& TrimMarkers();

int TrimmedHeapStart(void* const* pcs, int depth) {
  const int scan = std::min(depth, 8);
  int start = 0;
  for (int i = 0; i < scan; ++i) {
    const char* pc = static_cast<const char*>(pcs[i]);
    for (const char* marker : TrimMarkers()) {
      if (pc >= marker && pc < marker + 1024) {
        start = i + 1;
        break;
      }
    }
  }
  return std::min(start, depth);
}

// Caller set t_heap.in_hook (so everything allocated here — the backtrace
// warmup, table nodes, vectors — bypasses accounting and cannot recurse).
TSDIST_HEAP_NOINLINE void RecordSample(void* ptr, std::size_t size,
                                       MemLabelStats* label) {
  const std::int64_t interval = g_interval.load(std::memory_order_relaxed);
  // Deterministic upscaling: a sample stands for every whole interval the
  // countdown crossed, so an allocation of B >= interval bytes weighs
  // within one interval of B and small allocations aggregate unbiased.
  const std::uint64_t deficit = static_cast<std::uint64_t>(-t_heap.countdown);
  const std::uint64_t intervals =
      1 + deficit / static_cast<std::uint64_t>(interval);
  t_heap.countdown += static_cast<std::int64_t>(intervals) * interval;
  const std::uint64_t weight = intervals * static_cast<std::uint64_t>(interval);
  (void)size;

  void* pcs[kMaxHeapStackDepth];
  const int depth = backtrace(pcs, kMaxHeapStackDepth);
  const int start = depth > 0 ? TrimmedHeapStart(pcs, depth) : 0;

  StackRec* rec = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_stacks_mu);
    if (g_stacks == nullptr) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    std::vector<void*> key(pcs + start, pcs + std::max(depth, start));
    auto it = g_stacks->find(key);
    if (it == g_stacks->end()) {
      if (g_stacks->size() >= kMaxTrackedStacks) {
        g_dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      it = g_stacks->emplace(std::move(key), std::make_unique<StackRec>())
               .first;
      it->second->pcs = it->first;
    }
    rec = it->second.get();
  }
  rec->cum_bytes.fetch_add(weight, std::memory_order_relaxed);
  rec->cum_count.fetch_add(1, std::memory_order_relaxed);
  rec->live_bytes.fetch_add(weight, std::memory_order_relaxed);
  rec->live_count.fetch_add(1, std::memory_order_relaxed);
  g_samples.fetch_add(1, std::memory_order_relaxed);
  g_cum_bytes_total.fetch_add(weight, std::memory_order_relaxed);
  g_live_bytes_total.fetch_add(weight, std::memory_order_relaxed);

  if (label != nullptr) {
    const std::uint64_t live_now =
        label->live_bytes.fetch_add(weight, std::memory_order_relaxed) +
        weight;
    RaiseLabelPeak(label, live_now);
  }

  LiveShard& shard = g_live_shards[ShardIndex(ptr)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map[reinterpret_cast<std::uintptr_t>(ptr)] =
        LiveRec{weight, rec, label};
  }
  g_tracked.fetch_add(1, std::memory_order_release);
}

// glibc's memalign entry backs both aligned_alloc and the aligned operator
// new family.
TSDIST_HEAP_NOINLINE void* AlignedAllocate(std::size_t alignment,
                                           std::size_t size) {
  void* ptr = __libc_memalign(alignment, size);
  AccountAlloc(ptr, size);
  return ptr;
}

}  // namespace
}  // namespace tsdist::obs

// ---------------------------------------------------------------------------
// Link-order allocator wrappers. These strong definitions live in the tsdist
// archive, which the linker scans before libc: every tsdist binary binds its
// allocation calls here. Each wrapper delegates to the real glibc allocator
// and then observes — it never changes what the caller gets back.

extern "C" void* malloc(std::size_t size) noexcept {
  void* ptr = __libc_malloc(size);
  tsdist::obs::AccountAlloc(ptr, size);
  return ptr;
}

extern "C" void free(void* ptr) noexcept {
  tsdist::obs::AccountFree(ptr);
  __libc_free(ptr);
}

extern "C" void* calloc(std::size_t n, std::size_t size) noexcept {
  void* ptr = __libc_calloc(n, size);
  tsdist::obs::AccountAlloc(ptr, n * size);
  return ptr;
}

extern "C" void* realloc(void* ptr, std::size_t size) noexcept {
  void* out = __libc_realloc(ptr, size);
  // Accounting model: realloc = free(old) + alloc(new), including in-place
  // growth. On failure (null with size != 0) the old block survives and
  // keeps its tracking entry.
  if (out != nullptr || size == 0) tsdist::obs::AccountFree(ptr);
  if (out != nullptr) tsdist::obs::AccountAlloc(out, size);
  return out;
}

extern "C" void* aligned_alloc(std::size_t alignment,
                               std::size_t size) noexcept {
  return tsdist::obs::AlignedAllocate(alignment, size);
}

void* operator new(std::size_t size) {
  for (;;) {
    void* ptr = malloc(size);  // NOLINT: routes through the wrapper above
    if (ptr != nullptr) return ptr;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ::operator new(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return ::operator new(size);
  } catch (...) {
    return nullptr;
  }
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  for (;;) {
    void* ptr = tsdist::obs::AlignedAllocate(
        static_cast<std::size_t>(alignment), size);
    if (ptr != nullptr) return ptr;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  try {
    return ::operator new(size, alignment);
  } catch (...) {
    return nullptr;
  }
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  try {
    return ::operator new(size, alignment);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* ptr) noexcept { free(ptr); }
void operator delete[](void* ptr) noexcept { free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept { free(ptr); }
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept { free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { free(ptr); }
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  free(ptr);
}

namespace tsdist::obs {
namespace {

const std::array<const char*, 10>& TrimMarkers() {
  static const std::array<const char*, 10> markers = {
      reinterpret_cast<const char*>(&RecordSample),
      reinterpret_cast<const char*>(&AccountAlloc),
      reinterpret_cast<const char*>(&AlignedAllocate),
      reinterpret_cast<const char*>(&::malloc),
      reinterpret_cast<const char*>(&::calloc),
      reinterpret_cast<const char*>(&::realloc),
      reinterpret_cast<const char*>(&::aligned_alloc),
      reinterpret_cast<const char*>(
          static_cast<void* (*)(std::size_t)>(&::operator new)),
      reinterpret_cast<const char*>(
          static_cast<void* (*)(std::size_t)>(&::operator new[])),
      reinterpret_cast<const char*>(
          static_cast<void* (*)(std::size_t, std::align_val_t)>(
              &::operator new)),
  };
  return markers;
}

}  // namespace
}  // namespace tsdist::obs

#endif  // TSDIST_HEAP_INTERPOSE

namespace tsdist::obs {

bool HeapProfilingAvailable() {
#if defined(TSDIST_HEAP_INTERPOSE)
  return true;
#else
  return false;
#endif
}

HeapProfiler& HeapProfiler::Global() {
  static HeapProfiler* instance = new HeapProfiler();
  return *instance;
}

bool HeapProfiler::Start(const HeapProfilerOptions& options) {
  if (!Enabled()) {
    TSDIST_LOG(LogLevel::kWarn,
               "heap profiler start ignored: observability disabled");
    return false;
  }
  if (!HeapProfilingAvailable()) {
    // One-shot so a sanitize-preset sweep does not drown in warnings.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      TSDIST_LOG(LogLevel::kWarn,
                 "heap profiler unavailable: allocator wrappers disabled "
                 "(sanitizer owns malloc, or non-glibc libc)");
    }
    return false;
  }
  std::lock_guard<std::mutex> lock(g_heap_mu);
  if (g_heap_running) {
    TSDIST_LOG(LogLevel::kWarn, "heap profiler start ignored: already running");
    return false;
  }
  g_heap_options = options;
  if (g_heap_options.sample_interval_bytes < kMinIntervalBytes) {
    g_heap_options.sample_interval_bytes = kMinIntervalBytes;
  }
  {
    ScopedHookGuard guard;
    EnsureTablesLocked();
#if defined(TSDIST_HEAP_INTERPOSE)
    // First backtrace call may dlopen/allocate inside libgcc; force that
    // now, outside the allocation hook.
    void* warm[4];
    backtrace(warm, 4);
#endif
  }
  g_interval.store(
      static_cast<std::int64_t>(g_heap_options.sample_interval_bytes),
      std::memory_order_relaxed);
  // Epoch bump: every thread resets its countdown to the new interval on
  // its next allocation — deterministic, no cross-thread TLS pokes.
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  g_sampling.store(true, std::memory_order_release);
  g_heap_running = true;
  TSDIST_LOG(LogLevel::kInfo, "heap profiler started",
             F("interval_bytes", g_heap_options.sample_interval_bytes));
  return true;
}

bool HeapProfiler::Stop() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  if (!g_heap_running) return false;
  g_sampling.store(false, std::memory_order_release);
  g_heap_running = false;
  TSDIST_LOG(LogLevel::kInfo, "heap profiler stopped",
             F("samples", g_samples.load(std::memory_order_relaxed)),
             F("live_bytes",
               g_live_bytes_total.load(std::memory_order_relaxed)));
  return true;
}

bool HeapProfiler::running() const {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  return g_heap_running;
}

HeapProfilerStatus HeapProfiler::Status() const {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  HeapProfilerStatus st;
  st.running = g_heap_running;
  st.available = HeapProfilingAvailable();
  st.samples = g_samples.load(std::memory_order_relaxed);
  st.dropped = g_dropped.load(std::memory_order_relaxed);
  st.live_allocs = g_tracked.load(std::memory_order_relaxed);
  st.live_bytes = g_live_bytes_total.load(std::memory_order_relaxed);
  st.cumulative_bytes = g_cum_bytes_total.load(std::memory_order_relaxed);
  st.sample_interval_bytes = g_heap_options.sample_interval_bytes != 0
                                 ? g_heap_options.sample_interval_bytes
                                 : static_cast<std::uint64_t>(
                                       g_interval.load(
                                           std::memory_order_relaxed));
  return st;
}

void HeapProfiler::Clear() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  if (g_heap_running) return;
  ScopedHookGuard guard;
  {
    std::lock_guard<std::mutex> stacks_lock(g_stacks_mu);
    if (g_stacks != nullptr) g_stacks->clear();
  }
  if (g_live_shards != nullptr) {
    for (std::size_t i = 0; i < kLiveShardCount; ++i) {
      std::lock_guard<std::mutex> shard_lock(g_live_shards[i].mu);
      g_live_shards[i].map.clear();
    }
  }
  g_tracked.store(0, std::memory_order_release);
  g_samples.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_live_bytes_total.store(0, std::memory_order_relaxed);
  g_cum_bytes_total.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> labels_lock(g_labels_mu);
  if (g_labels != nullptr) {
    for (auto& [label, stats] : *g_labels) {
      (void)label;
      stats->live_bytes.store(0, std::memory_order_relaxed);
    }
  }
}

std::string HeapProfiler::RenderFolded() {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  const std::map<std::string, HeapRow> rows = CollectHeapRows();
  ScopedHookGuard guard;

  std::uint64_t samples = 0, live = 0, cum = 0;
  for (const auto& [stack, row] : rows) {
    (void)stack;
    samples += row.count;
    live += row.live;
    cum += row.cum;
  }
  std::string out = "# ";
  out += kHeapProfileSchema;
  out += " samples=" + std::to_string(samples);
  out += " dropped=" +
         std::to_string(g_dropped.load(std::memory_order_relaxed));
  out += " live_bytes=" + std::to_string(live);
  out += " cumulative_bytes=" + std::to_string(cum);
  out += " interval_bytes=" +
         std::to_string(static_cast<std::uint64_t>(
             g_interval.load(std::memory_order_relaxed)));
  out += '\n';
  // Hottest live stacks first; cumulative breaks ties so fully-freed stacks
  // still order deterministically.
  std::vector<std::pair<const std::string*, const HeapRow*>> sorted;
  sorted.reserve(rows.size());
  for (const auto& [stack, row] : rows) sorted.emplace_back(&stack, &row);
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second->live != b.second->live) return a.second->live > b.second->live;
    if (a.second->cum != b.second->cum) return a.second->cum > b.second->cum;
    return *a.first < *b.first;
  });
  for (const auto& [stack, row] : sorted) {
    out += *stack;
    out += ' ';
    out += std::to_string(row->live);
    out += ' ';
    out += std::to_string(row->cum);
    out += '\n';
  }
  return out;
}

std::string HeapProfiler::RenderLeakReport(std::size_t max_stacks) {
  std::lock_guard<std::mutex> lock(g_heap_mu);
  const std::map<std::string, HeapRow> rows = CollectHeapRows();
  ScopedHookGuard guard;

  std::vector<std::pair<const std::string*, const HeapRow*>> live;
  std::uint64_t live_bytes = 0;
  for (const auto& [stack, row] : rows) {
    if (row.live == 0) continue;
    live.emplace_back(&stack, &row);
    live_bytes += row.live;
  }
  if (live.empty()) {
    return "heap live report: no live sampled allocations\n";
  }
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    if (a.second->live != b.second->live)
      return a.second->live > b.second->live;
    return *a.first < *b.first;
  });
  std::string out = "heap live report: " + std::to_string(live.size()) +
                    " stack(s), " + std::to_string(live_bytes) +
                    " bytes live (estimated; interval=" +
                    std::to_string(static_cast<std::uint64_t>(
                        g_interval.load(std::memory_order_relaxed))) +
                    ")\n";
  const std::size_t shown = std::min(max_stacks, live.size());
  for (std::size_t i = 0; i < shown; ++i) {
    out += "  " + std::to_string(i + 1) + ". " +
           std::to_string(live[i].second->live) + " bytes: " +
           *live[i].first + "\n";
  }
  if (shown < live.size()) {
    out += "  ... " + std::to_string(live.size() - shown) +
           " more stack(s)\n";
  }
  return out;
}

bool WriteHeapProfileFolded(const std::string& path) {
  const std::string body = HeapProfiler::Global().RenderFolded();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    TSDIST_LOG(LogLevel::kWarn, "heap profile write failed", F("path", path));
    return false;
  }
  out << body;
  out.flush();
  if (!out) {
    TSDIST_LOG(LogLevel::kWarn, "heap profile write failed", F("path", path));
    return false;
  }
  TSDIST_LOG(LogLevel::kInfo, "heap profile written", F("path", path));
  return true;
}

void ResetMemPeaks() {
  std::lock_guard<std::mutex> lock(g_labels_mu);
  if (g_labels == nullptr) return;
  ScopedHookGuard guard;
  for (auto& [label, stats] : *g_labels) {
    (void)label;
    const std::uint64_t live =
        stats->live_bytes.load(std::memory_order_relaxed);
    stats->peak_live_bytes.store(live, std::memory_order_relaxed);
    stats->peak_gauge->Set(static_cast<double>(live));
  }
}

MemRegion::MemRegion(std::string_view label) {
  if (!Enabled()) return;
  MemRegionStack& st = t_mem;
  // Past the depth limit, allocations attribute to the nearest tracked
  // ancestor (t_mem_current keeps pointing at it).
  if (st.depth >= kMaxMemRegionDepth) return;
  MemLabelStats* stats = nullptr;
  {
    ScopedHookGuard guard;  // region bookkeeping is not the region's memory
    stats = GetLabelStats(SanitizeMemLabel(label));
  }
  if (stats == nullptr) return;
  st.stack[st.depth++] = stats;
  t_mem_current = stats;
  active_ = true;
}

MemRegion::~MemRegion() {
  if (!active_) return;
  MemRegionStack& st = t_mem;
  --st.depth;
  t_mem_current = st.depth > 0 ? st.stack[st.depth - 1] : nullptr;
}

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_NOOP
