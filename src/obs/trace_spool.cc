#include "src/obs/trace_spool.h"

#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace tsdist::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

#if !defined(TSDIST_OBS_NOOP)
std::uint32_t OwnPid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint32_t>(::getpid());
#else
  return 0;
#endif
}
#endif

void Bump(const char* name, std::uint64_t n = 1) {
  if (Enabled()) MetricsRegistry::Global().GetCounter(name).Add(n);
}

void SyncFile(std::FILE* file) {
#if defined(__unix__) || defined(__APPLE__)
  ::fsync(::fileno(file));
#else
  (void)file;
#endif
}

// All spool-writer state lives behind the singleton so the flusher thread,
// Status() callers (expo server, worker health), and Stop() share one lock.
struct SpoolState {
  std::mutex mu;
  std::condition_variable cv;
  std::thread flusher;
  bool active = false;
  bool stopping = false;
  std::FILE* file = nullptr;
  std::string path;
  std::uint64_t flush_interval_ms = 200;
  std::uint64_t spans_spooled = 0;
  std::uint64_t flushes = 0;
  std::uint64_t errors = 0;
};

SpoolState& State() {
  static SpoolState* state = new SpoolState();  // never destroyed
  return *state;
}

// Appends every drained span as one line, then makes the batch durable.
// Called with the state lock held (drain itself takes only recorder locks).
void FlushLocked(SpoolState& state) {
  if (state.file == nullptr) return;
  const std::vector<TraceEvent> events =
      TraceRecorder::Global().DrainEvents();
  if (events.empty()) return;
  std::string batch;
  for (const TraceEvent& event : events) {
    batch += TraceSpoolEventLine(event);
  }
  if (std::fwrite(batch.data(), 1, batch.size(), state.file) != batch.size() ||
      std::fflush(state.file) != 0) {
    ++state.errors;
    Bump("tsdist.trace.spool_errors");
    return;
  }
  SyncFile(state.file);
  state.spans_spooled += events.size();
  ++state.flushes;
  Bump("tsdist.trace.spooled_spans", events.size());
  Bump("tsdist.trace.spool_flushes");
}

#if !defined(TSDIST_OBS_NOOP)
bool RotateExisting(const std::string& dir, const std::string& proc,
                    const std::string& path, std::string* error) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) ||
      std::filesystem::file_size(path, ec) == 0) {
    return true;
  }
  for (unsigned r = 1; r < 1000; ++r) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".r%03u.trace.jsonl", r);
    const std::string rotated = dir + "/" + proc + suffix;
    if (std::filesystem::exists(rotated, ec)) continue;
    std::filesystem::rename(path, rotated, ec);
    if (ec) {
      *error = "cannot rotate existing spool " + path + ": " + ec.message();
      return false;
    }
    return true;
  }
  *error = "cannot rotate existing spool " + path + ": 999 rotations exist";
  return false;
}
#endif  // !TSDIST_OBS_NOOP

}  // namespace

std::string TraceRunIdFromBytes(const std::string& bytes) {
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, h);
  return buf;
}

std::string TraceSpoolHeaderLine(const TraceContext& context,
                                 const WallAnchor& anchor, std::uint32_t pid) {
  std::ostringstream os;
  os << "{\"schema\": \"" << kTraceSpoolSchema << "\", \"run_id\": \""
     << JsonEscape(context.run_id) << "\", \"role\": \""
     << JsonEscape(context.role) << "\", \"worker\": \""
     << JsonEscape(context.worker_id) << "\", \"pid\": " << pid
     << ", \"epoch\": " << context.epoch
     << ", \"anchor_wall_us\": " << anchor.wall_us << "}\n";
  return os.str();
}

std::string TraceSpoolEventLine(const TraceEvent& event) {
  std::ostringstream os;
  os << "{\"name\": \"" << JsonEscape(event.name) << "\", \"cat\": \""
     << JsonEscape(event.category) << "\", \"ts_ns\": " << event.ts_ns
     << ", \"dur_ns\": " << event.dur_ns << ", \"tid\": " << event.tid
     << ", \"id\": " << event.id << ", \"parent\": " << event.parent;
  if (event.instant) os << ", \"ph\": \"i\"";
  if (!event.args.empty()) {
    os << ", \"args\": {";
    bool first = true;
    for (const TraceArg& arg : event.args) {
      os << (first ? "" : ", ") << "\"" << JsonEscape(arg.key) << "\": ";
      if (arg.is_string) {
        os << "\"" << JsonEscape(arg.value) << "\"";
      } else {
        os << arg.value;
      }
      first = false;
    }
    os << "}";
  }
  os << "}\n";
  return os.str();
}

TraceSpool& TraceSpool::Global() {
  static TraceSpool* spool = new TraceSpool();  // never destroyed
  return *spool;
}

bool TraceSpool::Start(const TraceSpoolOptions& options, std::string* error) {
#if defined(TSDIST_OBS_NOOP)
  (void)options;
  *error = "tracing is compiled out (TSDIST_OBS_NOOP)";
  return false;
#else
  if (options.proc.empty() ||
      options.proc.find('/') != std::string::npos) {
    *error = "spool proc name must be non-empty and '/'-free, got '" +
             options.proc + "'";
    return false;
  }
  SpoolState& state = State();
  std::unique_lock<std::mutex> lock(state.mu);
  if (state.active) {
    *error = "trace spool already active at " + state.path;
    return false;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    *error = "cannot create spool dir " + options.dir + ": " + ec.message();
    return false;
  }
  const std::string path = options.dir + "/" + options.proc + ".trace.jsonl";
  if (!RotateExisting(options.dir, options.proc, path, error)) return false;
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    *error = "cannot open spool file " + path;
    return false;
  }

  // Tracing on before the header so the anchor is pinned by the time it is
  // rendered; the header is durable before the first span can possibly be.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.SetEnabled(true);
  const std::string header = TraceSpoolHeaderLine(
      recorder.context(), recorder.anchor(), OwnPid());
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    *error = "cannot write spool header to " + path;
    return false;
  }
  SyncFile(file);

  state.file = file;
  state.path = path;
  state.flush_interval_ms =
      options.flush_interval_ms > 0 ? options.flush_interval_ms : 200;
  state.spans_spooled = 0;
  state.flushes = 0;
  state.errors = 0;
  state.active = true;
  state.stopping = false;
  state.flusher = std::thread([&state] {
    std::unique_lock<std::mutex> flusher_lock(state.mu);
    while (!state.stopping) {
      state.cv.wait_for(flusher_lock,
                        std::chrono::milliseconds(state.flush_interval_ms),
                        [&state] { return state.stopping; });
      if (state.stopping) break;
      FlushLocked(state);
    }
  });
  return true;
#endif
}

void TraceSpool::Stop() {
  SpoolState& state = State();
  std::thread flusher;
  {
    std::unique_lock<std::mutex> lock(state.mu);
    if (!state.active) return;
    state.stopping = true;
    flusher = std::move(state.flusher);
  }
  state.cv.notify_all();
  if (flusher.joinable()) flusher.join();
  std::unique_lock<std::mutex> lock(state.mu);
  FlushLocked(state);  // final drain: spans completed since the last tick
  if (state.file != nullptr) {
    std::fflush(state.file);
    SyncFile(state.file);
    std::fclose(state.file);
    state.file = nullptr;
  }
  state.active = false;
  state.stopping = false;
}

TraceSpool::Status TraceSpool::status() const {
  SpoolState& state = State();
  std::unique_lock<std::mutex> lock(state.mu);
  Status status;
  status.active = state.active;
  status.spans_spooled = state.spans_spooled;
  status.flushes = state.flushes;
  status.errors = state.errors;
  status.path = state.path;
  return status;
}

bool ReadTraceSpool(const std::string& path, TraceSpoolContents* out,
                    std::string* error) {
  *out = TraceSpoolContents{};
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream content;
  content << in.rdbuf();
  const std::string data = content.str();

  std::size_t pos = 0;
  bool have_header = false;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated final line: torn
    const std::string line = data.substr(pos, nl - pos);
    if (!have_header) {
      // The header is fsynced before any span; a file whose first line is
      // not a valid header is not a spool (or died before Start finished).
      try {
        const JsonValue v = ParseJson(line);
        if (v.GetString("schema", "") != kTraceSpoolSchema) {
          *error = path + ": first line is not a " +
                   std::string(kTraceSpoolSchema) + " header";
          return false;
        }
        out->header.run_id = v.GetString("run_id", "");
        out->header.role = v.GetString("role", "");
        out->header.worker = v.GetString("worker", "");
        out->header.pid = static_cast<std::uint32_t>(v.GetDouble("pid", 0));
        out->header.anchor_wall_us =
            static_cast<std::uint64_t>(v.GetDouble("anchor_wall_us", 0));
      } catch (const std::exception&) {
        *error = path + ": unparseable spool header";
        return false;
      }
      have_header = true;
      ++out->valid_lines;
      pos = nl + 1;
      continue;
    }
    TraceEvent event;
    bool parsed = false;
    try {
      const JsonValue v = ParseJson(line);
      const JsonValue* name = v.Find("name");
      const JsonValue* ts = v.Find("ts_ns");
      if (name != nullptr && name->is_string() && ts != nullptr &&
          ts->is_number()) {
        event.name = name->AsString();
        event.category = v.GetString("cat", "");
        event.ts_ns = static_cast<std::uint64_t>(ts->AsDouble());
        event.dur_ns = static_cast<std::uint64_t>(v.GetDouble("dur_ns", 0));
        event.tid = static_cast<std::uint32_t>(v.GetDouble("tid", 0));
        event.id = static_cast<std::int64_t>(v.GetDouble("id", -1));
        event.parent = static_cast<std::int64_t>(v.GetDouble("parent", -1));
        event.instant = v.GetString("ph", "") == "i";
        if (const JsonValue* args = v.Find("args");
            args != nullptr && args->is_object()) {
          for (const auto& member : args->AsObject()) {
            TraceArg arg;
            arg.key = member.first;
            if (member.second.is_string()) {
              arg.value = member.second.AsString();
              arg.is_string = true;
            } else if (member.second.is_bool()) {
              arg.value = member.second.AsBool() ? "true" : "false";
              arg.is_string = false;
            } else if (member.second.is_number()) {
              char buf[40];
              std::snprintf(buf, sizeof buf, "%.17g",
                            member.second.AsDouble());
              arg.value = buf;
              arg.is_string = false;
            } else {
              continue;
            }
            event.args.push_back(std::move(arg));
          }
        }
        parsed = true;
      }
    } catch (const std::exception&) {
      parsed = false;
    }
    if (!parsed) break;  // torn tail starts at this line
    out->events.push_back(std::move(event));
    ++out->valid_lines;
    pos = nl + 1;
  }
  if (!have_header) {
    *error = path + ": no complete header line (died before Start finished)";
    return false;
  }
  // Whatever follows the valid prefix is the kill tail: count lines (a
  // trailing fragment without '\n' counts as one) and bytes, never reject.
  out->torn_bytes = data.size() - pos;
  for (std::size_t p = pos; p < data.size();) {
    ++out->torn_lines;
    const std::size_t nl = data.find('\n', p);
    if (nl == std::string::npos) break;
    p = nl + 1;
  }
  return true;
}

}  // namespace tsdist::obs
