#include "src/obs/log.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/obs/metrics.h"
#include "src/obs/obs.h"

namespace tsdist::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Small sequential thread id, assigned on a thread's first log event.
// Independent of the trace/metric shard ids: log tids must start at 0 for
// the process's first logging thread so single-threaded runs are stable.
std::uint32_t ThisThreadLogId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void BumpSuppressedCounter(std::uint64_t n) {
#if !defined(TSDIST_OBS_NOOP)
  if (obs::Enabled()) {
    MetricsRegistry::Global().GetCounter("tsdist.log.suppressed").Add(n);
  }
#else
  (void)n;
#endif
}

}  // namespace

const char* ToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

LogField F(std::string key, const std::string& value) {
  std::string json = "\"";
  json += JsonEscape(value);
  json += "\"";
  return LogField{std::move(key), std::move(json)};
}
LogField F(std::string key, const char* value) {
  return F(std::move(key), std::string(value == nullptr ? "" : value));
}
LogField F(std::string key, double value) {
  if (!std::isfinite(value)) return LogField{std::move(key), "0"};
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", value);
  return LogField{std::move(key), buf};
}
LogField F(std::string key, std::uint64_t value) {
  return LogField{std::move(key), std::to_string(value)};
}
LogField F(std::string key, std::int64_t value) {
  return LogField{std::move(key), std::to_string(value)};
}
LogField F(std::string key, int value) {
  return LogField{std::move(key), std::to_string(value)};
}
LogField F(std::string key, unsigned int value) {
  return F(std::move(key), static_cast<std::uint64_t>(value));
}
LogField F(std::string key, bool value) {
  return LogField{std::move(key), value ? "true" : "false"};
}

std::string LogEventToJson(const LogEvent& event) {
  std::string out = "{\"schema\": \"tsdist.log.v1\", \"ts_ns\": ";
  out += std::to_string(event.ts_ns);
  out += ", \"level\": \"";
  out += ToString(event.level);
  out += "\", \"tid\": ";
  out += std::to_string(event.tid);
  out += ", \"msg\": \"";
  out += JsonEscape(event.message);
  out += "\", \"fields\": {";
  bool first = true;
  for (const LogField& f : event.fields) {
    if (!first) out += ", ";
    out += "\"";
    out += JsonEscape(f.key);
    out += "\": ";
    out += f.json;
    first = false;
  }
  out += "}}";
  return out;
}

std::string LogEventPretty(const LogEvent& event, bool color) {
  const char* level = ToString(event.level);
  std::string out;
  if (color) {
    const char* code = "36";  // info: cyan
    switch (event.level) {
      case LogLevel::kDebug: code = "2"; break;   // dim
      case LogLevel::kInfo: code = "36"; break;   // cyan
      case LogLevel::kWarn: code = "33"; break;   // yellow
      case LogLevel::kError: code = "31"; break;  // red
    }
    out = std::string("\x1b[") + code + "m[" + level + "]\x1b[0m ";
  } else {
    out = std::string("[") + level + "] ";
  }
  out += event.message;
  for (const LogField& f : event.fields) {
    out += " " + f.key + "=" + f.json;
  }
  return out;
}

void LogDirect(LogLevel level, const std::string& message,
               std::vector<LogField> fields) {
  if (level < LogLevel::kInfo) return;
  LogEvent event;
  event.level = level;
  event.message = message;
  event.fields = std::move(fields);
  const std::string line = LogEventPretty(event, /*color=*/false);
  std::fprintf(stderr, "%s\n", line.c_str());
}

// One ring slot: `seq` is the Vyukov sequence number (== slot index when
// free for the producer that owns that turn, == index + 1 once published).
struct Logger::Cell {
  std::atomic<std::uint64_t> seq{0};
  LogEvent event;
};

Logger::Logger() : cells_(new Cell[kRingCapacity]) {
  for (std::uint64_t i = 0; i < kRingCapacity; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
#if defined(__unix__) || defined(__APPLE__)
  stderr_tty_ = isatty(fileno(stderr)) != 0;
#endif
  sink_thread_ = std::thread([this] { SinkLoop(); });
}

Logger::~Logger() {
  {
    std::lock_guard<std::mutex> lock(sink_mu_);
    stop_ = true;
  }
  sink_cv_.notify_all();
  if (sink_thread_.joinable()) sink_thread_.join();
  // The sink thread drained everything enqueued before stop; close the file.
  if (json_file_ != nullptr) {
    std::fclose(json_file_);
    json_file_ = nullptr;
  }
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // never destroyed
  return *logger;
}

std::uint64_t Logger::Now() const {
  {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(clock_mu_));
    if (clock_) return clock_();
  }
  return NowNs();
}

void Logger::SetClockForTest(std::function<std::uint64_t()> clock) {
  std::lock_guard<std::mutex> lock(clock_mu_);
  clock_ = std::move(clock);
}

void Logger::Log(LogLevel level, std::string message,
                 std::vector<LogField> fields, LogSite* site) {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  std::uint64_t backlog = 0;  // drops this site accumulated while throttled
  if (site != nullptr) {
    const std::uint64_t now = Now();
    bool admitted = false;
    while (site->lock.test_and_set(std::memory_order_acquire)) {
    }
    if (site->tokens < 0.0) {
      site->tokens = site->burst;
      site->last_refill_ns = now;
    }
    const double elapsed_sec =
        now > site->last_refill_ns
            ? static_cast<double>(now - site->last_refill_ns) / 1e9
            : 0.0;
    site->tokens = std::min(site->burst,
                            site->tokens + elapsed_sec * site->rate_per_sec);
    site->last_refill_ns = now;
    if (site->tokens >= 1.0) {
      site->tokens -= 1.0;
      admitted = true;
      backlog = site->suppressed;
      site->suppressed = 0;
    } else {
      ++site->suppressed;
    }
    site->lock.clear(std::memory_order_release);
    if (!admitted) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      BumpSuppressedCounter(1);
      return;
    }
  }

  LogEvent event;
  event.ts_ns = Now();
  event.tid = ThisThreadLogId();
  event.level = level;
  event.message = std::move(message);
  event.fields = std::move(fields);
  if (backlog > 0) event.fields.push_back(F("suppressed", backlog));
  if (!TryEnqueue(std::move(event))) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    BumpSuppressedCounter(1);
    return;
  }
  enqueued_.fetch_add(1, std::memory_order_relaxed);
  sink_cv_.notify_one();
}

bool Logger::TryEnqueue(LogEvent event) {
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Cell* cell;
  for (;;) {
    cell = &cells_[pos & (kRingCapacity - 1)];
    const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      return false;  // ring full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  cell->event = std::move(event);
  cell->seq.store(pos + 1, std::memory_order_release);
  return true;
}

void Logger::SinkLoop() {
  std::unique_lock<std::mutex> lock(sink_mu_);
  for (;;) {
    // The producers' notify races with this wait (they do not hold the
    // mutex); the timeout bounds any missed wakeup to one poll interval.
    sink_cv_.wait_for(lock, std::chrono::milliseconds(50));
    DrainOnce();
    flush_cv_.notify_all();
    if (stop_) {
      DrainOnce();  // drain anything that raced with the stop flag
      flush_cv_.notify_all();
      return;
    }
  }
}

void Logger::DrainOnce() {
  // Runs on the sink thread with sink_mu_ held (sinks are configured under
  // the same mutex).
  for (;;) {
    Cell& cell = cells_[dequeue_pos_ & (kRingCapacity - 1)];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    if (seq != dequeue_pos_ + 1) return;  // next slot not yet published
    LogEvent event = std::move(cell.event);
    cell.event = LogEvent{};
    cell.seq.store(dequeue_pos_ + kRingCapacity, std::memory_order_release);
    ++dequeue_pos_;
    Dispatch(event);
    ++drained_;
  }
}

void Logger::Dispatch(const LogEvent& event) {
  const std::string json = LogEventToJson(event);
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    tail_.push_back(json);
    while (tail_.size() > kDefaultTailCapacity) tail_.pop_front();
  }
  if (json_file_ != nullptr) {
    std::fputs(json.c_str(), json_file_);
    std::fputc('\n', json_file_);
  }
  if (stderr_sink_.load(std::memory_order_relaxed) &&
      static_cast<int>(event.level) >=
          stderr_level_.load(std::memory_order_relaxed)) {
    const std::string line = LogEventPretty(event, stderr_tty_);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

bool Logger::OpenJsonSink(const std::string& path, std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open log file '" + path + "'";
    return false;
  }
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (json_file_ != nullptr) std::fclose(json_file_);
  json_file_ = file;
  return true;
}

void Logger::CloseJsonSink() {
  Flush();
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (json_file_ != nullptr) {
    std::fclose(json_file_);
    json_file_ = nullptr;
  }
}

std::vector<std::string> Logger::Tail(std::size_t max_lines) const {
  std::lock_guard<std::mutex> lock(tail_mu_);
  const std::size_t n = std::min(max_lines, tail_.size());
  return std::vector<std::string>(tail_.end() - static_cast<std::ptrdiff_t>(n),
                                  tail_.end());
}

void Logger::Flush() {
  const std::uint64_t target = enqueued_.load(std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(sink_mu_);
  while (drained_ < target && !stop_) {
    sink_cv_.notify_all();
    flush_cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  if (json_file_ != nullptr) std::fflush(json_file_);
  std::fflush(stderr);
}

}  // namespace tsdist::obs
