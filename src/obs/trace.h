// Scoped tracing: RAII spans collected into per-thread buffers, exportable
// as an in-memory span tree or as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is opt-in (TraceRecorder::SetEnabled) because a long evaluation
// can produce millions of spans; when disabled a TraceSpan is two relaxed
// atomic loads. Span begin/end never locks on the hot path — events append
// to a thread-local buffer whose mutex is only contended when a snapshot or
// export runs concurrently.
//
// The recorder keeps at most max_spans() completed spans (default
// kDefaultMaxSpans; configurable, 0 = unbounded). Once the cap is reached
// further spans are dropped — counted in tsdist.trace.dropped_spans — rather
// than growing the buffers without bound. Dropping never corrupts the
// export: the Chrome JSON stays a valid event array and SpanForest() turns
// children of dropped parents into roots.
//
// Fleet alignment (docs/TRACING.md): the recorder carries a TraceContext
// (run id, process role, worker id, fencing epoch) and a wall-clock anchor —
// CLOCK_REALTIME and CLOCK_MONOTONIC sampled back to back when the recorder
// epoch is pinned — so spans from N cooperating processes can be placed on
// one wall-clock timeline by trace_merge even though each process records
// monotonic timestamps relative to its own epoch.

#ifndef TSDIST_OBS_TRACE_H_
#define TSDIST_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/perf_counters.h"

namespace tsdist::obs {

/// One key/value annotation on a span or instant event. `value` is held
/// pre-rendered: a raw JSON literal (number, boolean) when `is_string` is
/// false, an unescaped string otherwise (escaped at export time).
struct TraceArg {
  std::string key;
  std::string value;
  bool is_string = true;
};

/// One completed span. Timestamps are nanoseconds relative to the recorder
/// epoch (process start of tracing).
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t ts_ns = 0;   ///< span start
  std::uint64_t dur_ns = 0;  ///< span duration
  std::uint32_t tid = 0;     ///< small sequential thread id
  std::int64_t id = -1;      ///< unique span id
  std::int64_t parent = -1;  ///< id of the enclosing span, -1 for roots
  bool instant = false;      ///< point event (Chrome "ph":"i"), dur_ns == 0
  std::vector<TraceArg> args;  ///< user annotations (Chrome "args" block)
  /// Hardware-counter reading covering the span (TraceSpan perf
  /// attachment); `perf.valid` false means none was taken. Rendered into
  /// the Chrome JSON "args" block.
  PerfReading perf;
};

/// Identity of the recording process within a fleet-wide run. All fields are
/// advisory labels: they ride along in the spool header so trace_merge can
/// stitch per-process spools into one timeline and name each pid row.
struct TraceContext {
  std::string run_id;     ///< shared across the fleet (plan fingerprint)
  std::string role;       ///< "driver", "coordinator", "worker", "merge", ...
  std::string worker_id;  ///< non-empty for shard workers
  std::uint32_t epoch = 0;  ///< current fencing epoch (0 = none)
};

/// CLOCK_REALTIME / CLOCK_MONOTONIC pair sampled back to back at recorder
/// init: the wall-clock time of a span is wall_us + (ts_ns / 1000), because
/// every ts_ns is relative to the monotonic instant mono_ns was read at.
struct WallAnchor {
  std::uint64_t wall_us = 0;  ///< CLOCK_REALTIME microseconds at the epoch
  std::uint64_t mono_ns = 0;  ///< CLOCK_MONOTONIC nanoseconds at the epoch
};

/// Process-wide collector of completed spans.
class TraceRecorder {
 public:
  static TraceRecorder& Global();

  /// Default retained-span cap (see set_max_spans).
  static constexpr std::size_t kDefaultMaxSpans = 1'000'000;

  /// Tracing master switch (default: off).
  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Caps the number of completed spans kept in memory; spans past the cap
  /// are dropped and counted in tsdist.trace.dropped_spans. 0 = unbounded.
  void set_max_spans(std::size_t cap) {
    max_spans_.store(cap, std::memory_order_relaxed);
  }
  std::size_t max_spans() const {
    return max_spans_.load(std::memory_order_relaxed);
  }

  /// Completed spans currently retained across all thread buffers.
  std::size_t recorded_spans() const {
    return recorded_.load(std::memory_order_relaxed);
  }

  /// Fleet identity attached to this process's spans (spool header fields).
  void SetContext(TraceContext context);
  TraceContext context() const;
  /// Updates just the fencing epoch (a worker moves through epochs as it
  /// claims shards; the rest of the context is fixed at startup).
  void set_context_epoch(std::uint32_t epoch);

  /// The wall-clock anchor pinned with the recorder epoch (first SetEnabled
  /// or first span). Stable for the life of the process.
  WallAnchor anchor() const;

  /// Records a zero-duration instant event ("ph":"i") at the current time
  /// on the calling thread, parented to the innermost open span. No-op when
  /// tracing is disabled or the span cap is hit.
  void Instant(std::string name, std::string category = "tsdist",
               std::vector<TraceArg> args = {});

  /// Drops all recorded events (open spans keep their parent linkage) and
  /// re-arms the span cap.
  void Clear();

  /// All completed events, sorted by (tid, ts_ns).
  std::vector<TraceEvent> Events() const;

  /// Moves all completed events out of the thread buffers (sorted by
  /// (ts_ns, id)) and re-arms the span cap by the number taken. The spool
  /// flusher calls this periodically so long sweeps stay bounded-memory;
  /// events drained here no longer appear in Events()/ToChromeJson().
  std::vector<TraceEvent> DrainEvents();

  /// Span tree rebuilt from parent links; one forest entry per root span.
  struct SpanNode {
    TraceEvent event;
    std::vector<SpanNode> children;
  };
  std::vector<SpanNode> SpanForest() const;

  /// Chrome trace-event format: a JSON array of complete ("ph":"X") and
  /// instant ("ph":"i") events with name/cat/ph/ts/dur/pid/tid fields. Per
  /// the spec ts and dur are microseconds; they are rendered with fixed
  /// sub-microsecond precision (ns/1000 with a 3-digit fraction), never
  /// through default double formatting, so timestamps beyond ~1 s keep
  /// nanosecond fidelity instead of collapsing to 6 significant digits.
  std::string ToChromeJson() const;

  /// Implementation detail shared with TraceSpan; not part of the API.
  struct ThreadBuf;

 private:
  friend class TraceSpan;
  ThreadBuf& BufForThisThread();

  /// True when the span may be retained; false counts it as dropped.
  bool ClaimSlot();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_spans_{kDefaultMaxSpans};
  std::atomic<std::size_t> recorded_{0};
};

/// RAII span: records a TraceEvent for its lifetime when tracing is enabled.
/// Cheap when disabled; never copy/move it across threads.
///
/// `with_perf = true` additionally opens a per-thread hardware counter
/// group for the span's lifetime and attaches the reading to the event
/// (Chrome "args"). The open/close are syscalls — reserve it for coarse
/// spans (a dataset evaluation, a bench case), never per-row spans. When
/// counters are unavailable the span silently records without them.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name, std::string category = "tsdist",
                     bool with_perf = false);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Annotates the span (Chrome "args"); no-ops when the span is inactive.
  /// String values are escaped at export; numeric overloads render exactly.
  void Arg(std::string key, std::string value);
  void Arg(std::string key, const char* value);
  void Arg(std::string key, std::uint64_t value);
  void Arg(std::string key, std::int64_t value);
  void Arg(std::string key, double value);
  void Arg(std::string key, bool value);

 private:
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
  std::int64_t id_ = -1;
  std::int64_t saved_parent_ = -1;
  bool active_ = false;
  std::vector<TraceArg> args_;
  std::unique_ptr<PerfCounterGroup> perf_;
};

/// RAII timer: records its lifetime in nanoseconds into a Histogram and
/// optionally bumps a Counter, honoring the obs::Enabled() master switch at
/// destruction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, Counter* counter = nullptr,
                       std::uint64_t counter_increment = 1);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Nanoseconds since construction.
  std::uint64_t ElapsedNs() const;

  /// Suppresses recording at destruction.
  void Cancel() { cancelled_ = true; }

 private:
  Histogram* histogram_;
  Counter* counter_;
  std::uint64_t counter_increment_;
  std::uint64_t start_ns_;
  bool cancelled_ = false;
};

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_TRACE_H_
