#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace tsdist::obs {

namespace {

[[noreturn]] void TypeError(const char* want, JsonValue::Type got) {
  throw std::runtime_error(std::string("JsonValue: expected ") + want +
                           ", got type " +
                           std::to_string(static_cast<int>(got)));
}

// Recursive-descent parser over the raw document text.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue ParseDocument() {
    JsonValue value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void ExpectLiteral(const char* literal) {
    for (const char* p = literal; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        Fail(std::string("expected literal '") + literal + "'");
      }
      ++pos_;
    }
  }

  JsonValue ParseValue() {
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return JsonValue::MakeString(ParseString());
      case 't':
        ExpectLiteral("true");
        return JsonValue::MakeBool(true);
      case 'f':
        ExpectLiteral("false");
        return JsonValue::MakeBool(false);
      case 'n':
        ExpectLiteral("null");
        return JsonValue::MakeNull();
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    std::map<std::string, JsonValue> members;
    if (!Consume('}')) {
      for (;;) {
        std::string key = ParseString();
        Expect(':');
        members.insert_or_assign(std::move(key), ParseValue());
        if (Consume('}')) break;
        Expect(',');
      }
    }
    return JsonValue::MakeObject(std::move(members));
  }

  JsonValue ParseArray() {
    Expect('[');
    std::vector<JsonValue> items;
    if (!Consume(']')) {
      for (;;) {
        items.push_back(ParseValue());
        if (Consume(']')) break;
        Expect(',');
      }
    }
    return JsonValue::MakeArray(std::move(items));
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("invalid \\u escape digit");
            }
          }
          // The tsdist writers only emit \u00xx for control bytes; encode
          // the general case as UTF-8 anyway.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("unknown escape character");
      }
    }
  }

  JsonValue ParseNumber() {
    SkipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') Fail("malformed number '" + token + "'");
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool JsonValue::AsBool() const {
  if (type_ != Type::kBool) TypeError("bool", type_);
  return bool_;
}

double JsonValue::AsDouble() const {
  if (type_ != Type::kNumber) TypeError("number", type_);
  return number_;
}

std::int64_t JsonValue::AsInt() const {
  const double d = AsDouble();
  if (!std::isfinite(d)) TypeError("finite integer", type_);
  return static_cast<std::int64_t>(d);
}

const std::string& JsonValue::AsString() const {
  if (type_ != Type::kString) TypeError("string", type_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  if (type_ != Type::kArray) TypeError("array", type_);
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  if (type_ != Type::kObject) TypeError("object", type_);
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v(Type::kBool);
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v(Type::kNumber);
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v(Type::kString);
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v(Type::kArray);
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v(Type::kObject);
  v.object_ = std::move(members);
  return v;
}

JsonValue ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

JsonValue ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read JSON file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return ParseJson(buffer.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace tsdist::obs
