#include "src/obs/expo_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/obs/health.h"
#include "src/obs/heap_profiler.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/openmetrics.h"
#include "src/obs/profiler.h"
#include "src/obs/runinfo.h"
#include "src/obs/trace.h"
#include "src/obs/trace_spool.h"

namespace tsdist::obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 400: return "Bad Request";
  }
  return "OK";
}

// send() the whole buffer; MSG_NOSIGNAL so a client that hung up yields
// EPIPE instead of killing the process with SIGPIPE.
void SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

void BumpCounter(const char* name) {
#if !defined(TSDIST_OBS_NOOP)
  if (Enabled()) MetricsRegistry::Global().GetCounter(name).Add(1);
#else
  (void)name;
#endif
}

}  // namespace

ExpoServer::~ExpoServer() { Stop(); }

bool ExpoServer::Start(Options options, std::string* error) {
  if (running()) {
    if (error != nullptr) *error = "server already running";
    return false;
  }
  options_ = std::move(options);

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) {
      *error = "invalid bind address '" + options_.bind_address + "'";
    }
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(listen_fd_, 16) != 0) {
    if (error != nullptr) {
      *error = std::string("bind/listen on ") + options_.bind_address + ":" +
               std::to_string(options_.port) + ": " + std::strerror(errno);
    }
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof addr;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  } else {
    port_ = options_.port;
  }

  if (pipe(wake_fds_) != 0) {
    if (error != nullptr) {
      *error = std::string("pipe: ") + std::strerror(errno);
    }
    close(listen_fd_);
    listen_fd_ = -1;
    port_ = 0;
    return false;
  }

  running_.store(true, std::memory_order_release);
  HealthState::Global().SetEndpoints(
      "/metrics /healthz /fleetz /runinfo /logz /profilez /heapz /tracez");
  thread_ = std::thread([this] { ServeLoop(); });
  TSDIST_LOG(LogLevel::kInfo, "telemetry server listening",
             F("address", options_.bind_address), F("port", port_));
  return true;
}

void ExpoServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const char byte = 'x';
  // Best-effort wakeup; the poll loop also notices running_ on timeout.
  [[maybe_unused]] const ssize_t n = write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
  port_ = 0;
}

void ExpoServer::SetRunInfoJson(std::string json) {
  const std::lock_guard<std::mutex> lock(mu_);
  runinfo_json_ = json.empty() ? "{}" : std::move(json);
}

void ExpoServer::Sample() {
  UpdatePeakRssGauge();
  UpdateCurrentRssGauge();
  if (options_.sampler) options_.sampler();
}

void ExpoServer::ServeLoop() {
  Sample();  // expose sane gauge values before the first scrape
  std::uint64_t last_sample_ns = NowNs();
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_fds_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int r =
        poll(fds, 2, static_cast<int>(options_.sample_interval_ms));
    if (!running_.load(std::memory_order_acquire)) return;
    const std::uint64_t now = NowNs();
    if (now - last_sample_ns >= options_.sample_interval_ms * 1'000'000ULL) {
      Sample();
      last_sample_ns = now;
    }
    if (r <= 0) continue;  // timeout / EINTR
    if ((fds[1].revents & POLLIN) != 0) {
      char buf[16];
      [[maybe_unused]] const ssize_t n = read(wake_fds_[0], buf, sizeof buf);
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int conn = accept(listen_fd_, nullptr, nullptr);
      if (conn >= 0) HandleConnection(conn);
    }
  }
}

void ExpoServer::HandleConnection(int fd) {
  // A stalled client must not wedge the serving loop forever.
  timeval timeout{};
  timeout.tv_sec = 2;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

  std::string request;
  char buf[2048];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof buf, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  Response response;
  std::string method;
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response.status = 400;
    response.body = "bad request\n";
  } else {
    method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string query;
    const std::size_t qmark = path.find('?');
    if (qmark != std::string::npos) {
      query = path.substr(qmark + 1);
      path.resize(qmark);
    }
    response = Handle(method, path, query);
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    StatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (method != "HEAD") out += response.body;
  SendAll(fd, out);
  close(fd);
}

ExpoServer::Response ExpoServer::Handle(const std::string& method,
                                        const std::string& path,
                                        const std::string& query) {
  Response response;
  BumpCounter("tsdist.expo.requests");
  if (method != "GET" && method != "HEAD") {
    response.status = 405;
    response.body = "only GET and HEAD are supported\n";
    return response;
  }
  if (path == "/metrics") {
    BumpCounter("tsdist.expo.scrapes");
    BumpCounter("tsdist.expo.requests.metrics");
    [[maybe_unused]] const std::uint64_t t0 = NowNs();
    Sample();  // scrape sees current gauges even mid-interval
    response.content_type = OpenMetricsContentType();
    response.body =
        RenderOpenMetrics(MetricsRegistry::Global().Snapshot());
#if !defined(TSDIST_OBS_NOOP)
    // Self-latency of the scrape path (sample + snapshot + render), in the
    // unit the name promises. The render above predates the recording, so
    // the first exposed value lags one scrape behind — fine for telemetry.
    if (Enabled()) {
      MetricsRegistry::Global()
          .GetHistogram("tsdist.expo.scrape_ms")
          .Record((NowNs() - t0) / 1000000);
    }
#endif
    return response;
  }
  if (path == "/healthz") {
    BumpCounter("tsdist.expo.requests.healthz");
    response.content_type = "application/json; charset=utf-8";
    response.body = HealthState::Global().ToJson() + "\n";
    return response;
  }
  if (path == "/fleetz") {
    BumpCounter("tsdist.expo.requests.fleetz");
    response.content_type = "application/json; charset=utf-8";
    const std::string fleet = HealthState::Global().FleetJson();
    // No shard fleet federating health through this process: serve a valid
    // empty fleet so scrapers need no special case.
    response.body =
        fleet.empty()
            ? "{\"schema\": \"tsdist.fleethealth.v1\", \"stale_after_sec\": "
              "0, \"summary\": {\"workers\": 0, \"live\": 0, \"stale\": 0}, "
              "\"trace\": {\"spooling_workers\": 0, \"spooled_spans\": 0}, "
              "\"workers\": []}\n"
            : fleet + "\n";
    return response;
  }
  if (path == "/runinfo") {
    BumpCounter("tsdist.expo.requests.runinfo");
    response.content_type = "application/json; charset=utf-8";
    const std::lock_guard<std::mutex> lock(mu_);
    response.body = runinfo_json_ + "\n";
    return response;
  }
  if (path == "/logz") {
    BumpCounter("tsdist.expo.requests.logz");
    response.content_type = "application/x-ndjson; charset=utf-8";
    std::string body;
    for (const std::string& entry : Logger::Global().Tail()) {
      body += entry;
      body += '\n';
    }
    response.body = std::move(body);
    return response;
  }
  if (path == "/profilez") {
    BumpCounter("tsdist.expo.requests.profilez");
    Profiler& profiler = Profiler::Global();
    if (query == "start") {
      response.body = profiler.Start()
                          ? "profiler started\n"
                          : "profiler not started (already running or "
                            "observability disabled)\n";
    } else if (query == "stop") {
      response.body =
          profiler.Stop() ? "profiler stopped\n" : "profiler not running\n";
    } else if (query == "dump") {
      response.body = profiler.RenderFolded();
    } else if (query == "trace") {
      response.content_type = "application/json; charset=utf-8";
      response.body = profiler.RenderChromeTrace();
    } else if (query.empty() || query == "status") {
      const ProfilerStatus st = profiler.Status();
      response.body = std::string("profiler ") +
                      (st.running ? "running" : "idle") +
                      " samples=" + std::to_string(st.samples) +
                      " dropped=" + std::to_string(st.dropped) +
                      " threads=" + std::to_string(st.threads) +
                      " interval_us=" + std::to_string(st.interval_us) + "\n";
    } else {
      response.status = 400;
      response.body = "unknown action '" + query +
                      "' (use ?start, ?stop, ?dump, ?trace, or ?status)\n";
    }
    return response;
  }
  if (path == "/heapz") {
    BumpCounter("tsdist.expo.requests.heapz");
    HeapProfiler& heap = HeapProfiler::Global();
    if (query == "start") {
      response.body = heap.Start()
                          ? "heap profiler started\n"
                          : "heap profiler not started (already running, "
                            "unavailable, or observability disabled)\n";
    } else if (query == "stop") {
      response.body = heap.Stop() ? "heap profiler stopped\n"
                                  : "heap profiler not running\n";
    } else if (query == "dump") {
      response.body = heap.RenderFolded();
    } else if (query == "live") {
      response.body = heap.RenderLeakReport();
    } else if (query.empty() || query == "status") {
      const HeapProfilerStatus st = heap.Status();
      response.body =
          std::string("heap profiler ") + (st.running ? "running" : "idle") +
          " available=" + (st.available ? "1" : "0") +
          " samples=" + std::to_string(st.samples) +
          " dropped=" + std::to_string(st.dropped) +
          " live_allocs=" + std::to_string(st.live_allocs) +
          " live_bytes=" + std::to_string(st.live_bytes) +
          " cumulative_bytes=" + std::to_string(st.cumulative_bytes) +
          " interval_bytes=" + std::to_string(st.sample_interval_bytes) +
          "\n";
    } else {
      response.status = 400;
      response.body = "unknown action '" + query +
                      "' (use ?start, ?stop, ?dump, ?live, or ?status)\n";
    }
    return response;
  }
  if (path == "/tracez") {
    BumpCounter("tsdist.expo.requests.tracez");
    TraceRecorder& recorder = TraceRecorder::Global();
    if (query == "start") {
      recorder.SetEnabled(true);
      response.body = recorder.enabled()
                          ? "tracing started\n"
                          : "tracing not started (compiled out)\n";
    } else if (query == "stop") {
      const bool was_on = recorder.enabled();
      recorder.SetEnabled(false);
      response.body = was_on ? "tracing stopped\n" : "tracing not running\n";
    } else if (query == "dump") {
      // Spans still buffered in this process; with a spool active the
      // flusher drains them continuously, so the durable record is the
      // spool file named by ?status, not this dump.
      response.content_type = "application/json; charset=utf-8";
      response.body = recorder.ToChromeJson();
    } else if (query.empty() || query == "status") {
      const TraceSpool::Status spool = TraceSpool::Global().status();
      const TraceContext context = recorder.context();
      response.body =
          std::string("tracing ") + (recorder.enabled() ? "on" : "off") +
          " spans=" + std::to_string(recorder.recorded_spans()) +
          " run_id=" + (context.run_id.empty() ? "-" : context.run_id) +
          " role=" + (context.role.empty() ? "-" : context.role) +
          " spool=" + (spool.active ? "active" : "off") +
          " spooled=" + std::to_string(spool.spans_spooled) +
          " flushes=" + std::to_string(spool.flushes) +
          " errors=" + std::to_string(spool.errors) +
          (spool.path.empty() ? "" : " path=" + spool.path) + "\n";
    } else {
      response.status = 400;
      response.body = "unknown action '" + query +
                      "' (use ?start, ?stop, ?dump, or ?status)\n";
    }
    return response;
  }
  if (path == "/") {
    BumpCounter("tsdist.expo.requests.index");
    response.body =
        "tsdist telemetry\n"
        "  /metrics   OpenMetrics exposition\n"
        "  /healthz   run health JSON\n"
        "  /fleetz    federated shard-worker fleet health JSON\n"
        "  /runinfo   provenance manifest JSON\n"
        "  /logz      recent structured log lines\n"
        "  /profilez  sampling profiler (?start ?stop ?dump ?trace ?status)\n"
        "  /heapz     heap profiler (?start ?stop ?dump ?live ?status)\n"
        "  /tracez    span tracing (?start ?stop ?dump ?status)\n";
    return response;
  }
  BumpCounter("tsdist.expo.requests.other");
  response.status = 404;
  response.body =
      "not found — endpoints: /metrics /healthz /fleetz /runinfo /logz "
      "/profilez /heapz /tracez\n";
  return response;
}

}  // namespace tsdist::obs
