// Embedded, dependency-free telemetry HTTP server.
//
// One background thread runs a blocking poll() loop over the listening
// socket and a self-pipe (used to interrupt the loop on Stop()). Requests
// are handled synchronously, one at a time — scrapes are rare and cheap, so
// there is no connection pool and no keep-alive (every response closes the
// connection). The poll timeout doubles as the background sampling
// interval: on every pass the server refreshes the peak-RSS gauge (and any
// driver-supplied sampler, e.g. the live thread-pool gauges), so a
// long-running sweep exposes live values instead of exit-time ones.
//
// Endpoints (GET/HEAD only):
//   /metrics  — OpenMetrics text rendered from MetricsRegistry::Snapshot()
//               (gauges are re-sampled right before rendering);
//   /healthz  — tsdist.health.v1 JSON: uptime, phase, current sweep cell,
//               checkpoint/cell progress, live ProgressReporter state;
//   /runinfo  — the run's provenance manifest as JSON (driver-provided);
//   /logz     — the most recent structured log lines (tsdist.log.v1,
//               newline-delimited JSON);
//   /profilez — sampling-profiler control: ?start begins sampling, ?stop
//               ends it, ?dump returns the folded profile, ?trace the
//               Chrome-trace JSON view; bare /profilez reports status;
//   /         — plain-text index of the endpoints above.
//
// The server also reports on itself: per-endpoint request counters
// (tsdist.expo.requests.<endpoint>) and a /metrics render-latency histogram
// (tsdist.expo.scrape_ms) appear in the exposition it serves.
//
// The server binds 127.0.0.1 by default; pass bind_address "0.0.0.0" to
// expose it beyond the host. Port 0 picks an ephemeral port (see port()).

#ifndef TSDIST_OBS_EXPO_SERVER_H_
#define TSDIST_OBS_EXPO_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace tsdist::obs {

class ExpoServer {
 public:
  struct Options {
    int port = 0;                       ///< 0 = ephemeral (read back via port())
    std::string bind_address = "127.0.0.1";
    std::uint64_t sample_interval_ms = 1000;
    /// Extra gauges to refresh on every sampling pass (the peak-RSS gauge is
    /// always refreshed); drivers hook the pool live gauges in here.
    std::function<void()> sampler;
  };

  ExpoServer() = default;
  ~ExpoServer();

  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Binds, listens, and starts the serving thread. Returns false (with
  /// `error` filled) when the socket cannot be set up; the server is then
  /// inert and Start may be retried.
  bool Start(Options options, std::string* error);

  /// Stops the serving thread and closes the socket. Idempotent; also run
  /// by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves ephemeral port 0); 0 when not running.
  int port() const { return port_; }

  /// Sets the JSON document served at /runinfo (typically
  /// ManifestToJson(CollectRunManifest(...), 0)).
  void SetRunInfoJson(std::string json);

 private:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  void ServeLoop();
  void Sample();
  void HandleConnection(int fd);
  Response Handle(const std::string& method, const std::string& path,
                  const std::string& query);

  Options options_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: Stop() writes, poll loop reads
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;

  mutable std::mutex mu_;  // guards runinfo_json_
  std::string runinfo_json_ = "{}";
};

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_EXPO_SERVER_H_
