// Process-wide metrics: named counters, gauges, and fixed-bucket histograms.
//
// Write path: each metric is split into kMetricShards cache-line-padded
// shards; a thread picks its shard once (sequential assignment, wrapping past
// kMetricShards) and increments it with a relaxed atomic add, so concurrent
// writers almost never touch the same cache line and never take a lock.
// Read path: Snapshot()/ToJson() sum the shards; readers may race with
// writers, so a snapshot is a consistent-enough aggregate, not a linearizable
// point-in-time cut (fine for telemetry).
//
// Histograms use fixed power-of-two bucket bounds — bucket i counts values
// v <= 64 << i (nanosecond-oriented: 64 ns up to ~36.7 min) plus an overflow
// bucket — so histograms from different runs and different builds are always
// mergeable bucket-by-bucket.

#ifndef TSDIST_OBS_METRICS_H_
#define TSDIST_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tsdist::obs {

/// Number of cache-line-padded shards per metric.
inline constexpr std::size_t kMetricShards = 16;

/// Stable shard index for the calling thread (assigned sequentially on first
/// use, wrapping past kMetricShards).
std::size_t ThisThreadShard();

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-write-wins scalar (plus atomic add for accumulating gauges).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only aggregate of one histogram.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< sum of recorded values (ns for latency metrics)
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  /// One count per finite bucket plus the trailing overflow bucket.
  std::vector<std::uint64_t> bucket_counts;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Approximate quantile (q in [0,1]) from the bucket upper bounds.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram of non-negative integer values.
class Histogram {
 public:
  /// Number of finite buckets; bucket i holds values v <= kBucketBound(i).
  /// Grew from 28 to 36 (last finite bound ~8.6 s -> ~36.7 min) because
  /// elastic-measure LOOCV cells on long-series datasets routinely exceed
  /// 8.6 s and used to pile into the overflow bucket. The first 28 bounds
  /// are unchanged, so histograms from older runs merge bucket-by-bucket as
  /// a prefix of newer ones.
  static constexpr std::size_t kFiniteBuckets = 36;
  /// Upper (inclusive) bound of finite bucket i: 64 << i.
  static constexpr std::uint64_t BucketBound(std::size_t i) {
    return static_cast<std::uint64_t>(64) << i;
  }

  void Record(std::uint64_t value);

  HistogramSnapshot Snapshot() const;

 private:
  static std::size_t BucketIndex(std::uint64_t value);

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kFiniteBuckets + 1> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Consistent-enough aggregate of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Registry of named metrics. Lookup takes a mutex; cache the returned
/// reference outside hot loops. References stay valid until Reset(), which
/// is test-only.
class MetricsRegistry {
 public:
  /// The process-wide registry used by all tsdist instrumentation.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  /// Serializes the snapshot as the `tsdist.metrics.v1` JSON schema
  /// (validated by tools/check_metrics_schema.py).
  std::string ToJson() const;

  /// Flat CSV: type,name,count,sum,min,max,mean,p50,p90,p99 (counters and
  /// gauges use the `sum` column only).
  std::string ToCsv() const;

  /// Drops every registered metric. Invalidates previously returned
  /// references — test-only; never call while instrumented code may run.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Renders a MetricsSnapshot as the `tsdist.metrics.v1` JSON object.
std::string SnapshotToJson(const MetricsSnapshot& snapshot);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_METRICS_H_
