// Hardware performance-counter groups via perf_event_open(2).
//
// A PerfCounterGroup opens six hardware events as one scheduled group for
// the *calling thread* (pid = 0, cpu = -1): cycles (leader), instructions,
// cache references, cache misses, branches, branch misses. Group scheduling
// means the six values always cover the same slice of time, so derived
// ratios (IPC, cache-miss rate, branch-miss rate) are internally consistent.
// The leader carries PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING, so a reading
// exposes how much the kernel multiplexed the group off the PMU.
//
// Scope: counters measure the thread that opened the group. Worker-pool
// threads are not included — for bench cases the submitting thread
// participates in every ParallelFor, so its counters characterize the
// kernel mix (IPC, miss rates) even though totals are per-thread, and the
// bench.v2 `perf` block documents that scope.
//
// Availability: perf_event_open commonly fails in containers and CI
// (EPERM under perf_event_paranoid >= 3 or seccomp, ENOSYS when compiled
// out). PerfCountersSupported() probes once per process and emits exactly
// one `warn` log event on failure; after that every group is silently
// unavailable and readings are marked invalid, so runs degrade to reports
// without a `perf` block instead of failing. Events are opened with
// exclude_kernel/exclude_hv so the probe works at perf_event_paranoid <= 2
// (the common unprivileged setting).

#ifndef TSDIST_OBS_PERF_COUNTERS_H_
#define TSDIST_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

namespace tsdist::obs {

/// One group reading (deltas since Start()). `valid` is false when the
/// group could not be opened or the read failed.
struct PerfReading {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t time_enabled_ns = 0;  ///< group was requested for this long
  std::uint64_t time_running_ns = 0;  ///< ... and actually on the PMU this long

  /// Instructions per cycle (0 when cycles == 0).
  double Ipc() const;
  /// cache_misses / cache_references (0 when no references).
  double CacheMissRate() const;
  /// branch_misses / branches (0 when no branches).
  double BranchMissRate() const;
  /// time_running / time_enabled in [0,1]; < 1 means the kernel multiplexed
  /// the group and the raw counts are a sampled fraction of the work.
  double RunningRatio() const;

  /// Element-wise accumulation (used to sum per-iteration readings into one
  /// per-case block). Keeps `valid` only if both sides are valid.
  void Accumulate(const PerfReading& other);
};

/// Serializes a reading as a JSON object with raw counts, the derived
/// ratios, and the multiplex ratio. `indent` spaces prefix the inner lines
/// (the opening brace is not indented, so the value can follow a key).
std::string PerfReadingToJson(const PerfReading& reading, int indent);

/// RAII group of per-thread hardware counters. Open/close are syscalls —
/// construct once per measured region (a bench case, a coarse trace span),
/// never per distance call.
class PerfCounterGroup {
 public:
  /// Opens the group for the calling thread. On failure (or when
  /// PerfCountersSupported() already probed false) the group is simply
  /// unavailable; nothing throws.
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  bool available() const { return leader_fd_ >= 0; }

  /// Resets and enables the whole group.
  void Start();

  /// Disables the group and returns the counts since Start(). Invalid
  /// reading when unavailable or the read failed.
  PerfReading Stop();

  /// Reads the counts since Start() without disabling the group, for
  /// long-lived per-thread groups sampled at region boundaries (PerfRegion
  /// takes the difference of two ReadNow() snapshots). Invalid reading when
  /// unavailable or the read failed.
  PerfReading ReadNow() const;

 private:
  static constexpr std::size_t kEvents = 6;
  int leader_fd_ = -1;
  std::array<int, kEvents> fds_{};  // fds_[0] == leader_fd_
};

/// One-time probe: true iff a counter group can be opened on this system.
/// The first failing probe logs a single `warn` event (errno attached) and
/// the result is cached for the process lifetime.
bool PerfCountersSupported();

/// Force-disables (or re-enables consulting the probe) perf counters for
/// this process; tests use it to exercise the unavailable path
/// deterministically.
void SetPerfCountersEnabled(bool enabled);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_PERF_COUNTERS_H_
