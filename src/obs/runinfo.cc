#include "src/obs/runinfo.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <thread>

#include "src/obs/log.h"
#include "src/obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

// Generated at build time (cmake/BuildInfo.cmake); carries git SHA + dirty
// flag, compiler id/version, resolved CXX flags, and the build type. The
// __has_include fallback keeps this file compiling standalone (IDE
// indexers, ad-hoc builds) with "unknown" provenance.
#if __has_include("tsdist/buildinfo.h")
#include "tsdist/buildinfo.h"
#endif

#ifndef TSDIST_BUILD_GIT_SHA
#define TSDIST_BUILD_GIT_SHA "unknown"
#endif
#ifndef TSDIST_BUILD_GIT_DIRTY
#define TSDIST_BUILD_GIT_DIRTY 0
#endif
#ifndef TSDIST_BUILD_COMPILER
#define TSDIST_BUILD_COMPILER "unknown"
#endif
#ifndef TSDIST_BUILD_FLAGS
#define TSDIST_BUILD_FLAGS ""
#endif
#ifndef TSDIST_BUILD_TYPE
#define TSDIST_BUILD_TYPE "unknown"
#endif

namespace tsdist::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Fixed-precision milliseconds: enough to round-trip microsecond timings
// without dumping 17 significant digits into every sample array.
std::string MsNumber(double v) {
  if (!std::isfinite(v) || v < 0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
  return "unknown";
}

}  // namespace

RunManifest CollectRunManifest(std::uint64_t threads, std::uint64_t rng_seed,
                               std::string scale) {
  RunManifest m;
  m.git_sha = TSDIST_BUILD_GIT_SHA;
  m.git_dirty = TSDIST_BUILD_GIT_DIRTY != 0;
  m.compiler = TSDIST_BUILD_COMPILER;
  m.compiler_flags = TSDIST_BUILD_FLAGS;
  m.build_type = TSDIST_BUILD_TYPE;
  // Computed once: the manifest is collected at most a handful of times per
  // run, but /proc parsing in a loop would be silly.
  static const std::string cpu_model = CpuModelName();
  m.cpu_model = cpu_model;
  m.cpu_cores = static_cast<int>(std::thread::hardware_concurrency());
  m.threads = threads;
  m.rng_seed = rng_seed;
  m.scale = std::move(scale);
  return m;
}

std::string ManifestToJson(const RunManifest& m, int indent) {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream os;
  os << "{\n"
     << pad << "  \"schema_version\": " << m.schema_version << ",\n"
     << pad << "  \"git_sha\": \"" << JsonEscape(m.git_sha) << "\",\n"
     << pad << "  \"git_dirty\": " << (m.git_dirty ? "true" : "false") << ",\n"
     << pad << "  \"compiler\": \"" << JsonEscape(m.compiler) << "\",\n"
     << pad << "  \"compiler_flags\": \"" << JsonEscape(m.compiler_flags)
     << "\",\n"
     << pad << "  \"build_type\": \"" << JsonEscape(m.build_type) << "\",\n"
     << pad << "  \"cpu_model\": \"" << JsonEscape(m.cpu_model) << "\",\n"
     << pad << "  \"cpu_cores\": " << m.cpu_cores << ",\n"
     << pad << "  \"threads\": " << m.threads << ",\n"
     << pad << "  \"rng_seed\": " << m.rng_seed << ",\n"
     << pad << "  \"scale\": \"" << JsonEscape(m.scale) << "\"\n"
     << pad << "}";
  return os.str();
}

std::uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    // A failing getrusage would silently zero every peak-RSS artifact; warn
    // once and keep an error counter so downstream consumers can tell
    // "0 = tiny process" apart from "0 = reads failing".
    MetricsRegistry::Global()
        .GetCounter("tsdist.proc.rss_read_errors")
        .Add(1);
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      TSDIST_LOG(LogLevel::kWarn, "getrusage failed; peak RSS reads as 0");
    }
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // kB on Linux
#endif
#else
  return 0;
#endif
}

void UpdatePeakRssGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("tsdist.proc.peak_rss_bytes");
  gauge.Set(static_cast<double>(PeakRssBytes()));
}

std::uint64_t CurrentRssBytes() {
#if defined(__linux__)
  // VmRSS from /proc/self/status; getrusage has no "current" equivalent.
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, 6, "VmRSS:") != 0) continue;
    std::uint64_t kb = 0;
    if (std::sscanf(line.c_str() + 6, "%llu",
                    reinterpret_cast<unsigned long long*>(&kb)) == 1) {
      return kb * 1024;
    }
    break;
  }
  return 0;
#else
  return 0;
#endif
}

void UpdateCurrentRssGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("tsdist.proc.current_rss_bytes");
  gauge.Set(static_cast<double>(CurrentRssBytes()));
}

double SampleMedian(std::vector<double> samples) {
  return SampleQuantile(std::move(samples), 0.5);
}

double SampleQuantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  q = std::clamp(q, 0.0, 1.0);
  const std::size_t n = samples.size();
  if (q == 0.5 && n % 2 == 0) {
    // Conventional even-n median: midpoint of the two central samples.
    return 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  }
  const std::size_t rank = std::min(
      n - 1, static_cast<std::size_t>(std::ceil(q * static_cast<double>(n))) -
                 (q > 0.0 ? 1 : 0));
  return samples[rank];
}

std::string BenchReportToJson(const BenchReport& report) {
  std::ostringstream os;
  os << "{\n  \"schema\": \"tsdist.bench.v2\",\n"
     << "  \"bench\": \"" << JsonEscape(report.bench) << "\",\n"
     << "  \"scale\": \"" << JsonEscape(report.scale) << "\",\n"
     << "  \"threads\": " << report.threads << ",\n"
     << "  \"wall_ms\": " << MsNumber(report.wall_ms) << ",\n"
     << "  \"manifest\": " << ManifestToJson(report.manifest, 2) << ",\n"
     << "  \"peak_rss_bytes\": " << report.peak_rss_bytes << ",\n"
     << "  \"cases\": [";
  for (std::size_t i = 0; i < report.cases.size(); ++i) {
    const BenchCaseResult& c = report.cases[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"name\": \"" << JsonEscape(c.name)
       << "\", \"warmup\": " << c.warmup
       << ", \"iters\": " << c.samples_ms.size() << ",\n     \"samples_ms\": [";
    double min_ms = 0.0;
    double sum = 0.0;
    for (std::size_t s = 0; s < c.samples_ms.size(); ++s) {
      if (s > 0) os << ", ";
      os << MsNumber(c.samples_ms[s]);
      min_ms = s == 0 ? c.samples_ms[s] : std::min(min_ms, c.samples_ms[s]);
      sum += c.samples_ms[s];
    }
    const double mean =
        c.samples_ms.empty()
            ? 0.0
            : sum / static_cast<double>(c.samples_ms.size());
    os << "],\n     \"min_ms\": " << MsNumber(min_ms)
       << ", \"median_ms\": " << MsNumber(SampleMedian(c.samples_ms))
       << ", \"p90_ms\": " << MsNumber(SampleQuantile(c.samples_ms, 0.9))
       << ", \"mean_ms\": " << MsNumber(mean);
    if (c.perf.valid) {
      os << ",\n     \"perf\": " << PerfReadingToJson(c.perf, 5);
    }
    if (!c.kernel.empty()) {
      os << ",\n     \"kernel_attribution\": {";
      bool first = true;
      for (const auto& [label, stats] : c.kernel) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "      \"" << JsonEscape(label)
           << "\": {\"calls\": " << stats.calls
           << ", \"wall_ns\": " << stats.wall_ns;
        if (stats.perf.valid) {
          os << ",\n       \"perf\": " << PerfReadingToJson(stats.perf, 7);
        }
        os << "}";
      }
      os << "\n     }";
    }
    if (!c.memory.empty()) {
      os << ",\n     \"memory_attribution\": {";
      bool first = true;
      for (const auto& [label, stats] : c.memory) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "      \"" << JsonEscape(label)
           << "\": {\"alloc_bytes\": " << stats.alloc_bytes
           << ", \"alloc_count\": " << stats.alloc_count
           << ", \"peak_live_bytes\": " << stats.peak_live_bytes << "}";
      }
      os << "\n     }";
    }
    os << "}";
  }
  os << (report.cases.empty() ? "" : "\n  ") << "],\n";
  os << "  \"metrics\": ";
  // The metrics snapshot is already a serialized JSON object; strip its
  // trailing newline so the enclosing document stays tidy.
  std::string metrics = report.metrics_json;
  while (!metrics.empty() &&
         (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  os << (metrics.empty() ? "{}" : metrics) << "\n}\n";
  return os.str();
}

}  // namespace tsdist::obs
