// OpenMetrics / Prometheus text exposition of a MetricsSnapshot.
//
// The exposition is what the embedded telemetry server (expo_server.h)
// serves at /metrics, and what check_metrics_schema.py --openmetrics
// validates. Mangling rules from the dotted tsdist scheme:
//   * every character outside [A-Za-z0-9_:] becomes '_'
//     ("tsdist.pool.jobs" -> "tsdist_pool_jobs");
//   * a name that would start with a digit gets a '_' prefix;
//   * counters expose the sample as `<name>_total` per the OpenMetrics
//     counter convention;
//   * histograms expose cumulative `<name>_bucket{le="<bound>"}` series
//     (bounds are the raw nanosecond values, ending with le="+Inf") plus
//     `<name>_sum` and `<name>_count`.
// Families are emitted in name order, each preceded by its `# TYPE` line,
// and the document ends with `# EOF`.

#ifndef TSDIST_OBS_OPENMETRICS_H_
#define TSDIST_OBS_OPENMETRICS_H_

#include <string>

#include "src/obs/metrics.h"

namespace tsdist::obs {

/// Mangles one dotted metric name into an OpenMetrics-legal name.
std::string OpenMetricsName(const std::string& name);

/// Renders the whole snapshot as OpenMetrics text (ends with "# EOF\n").
std::string RenderOpenMetrics(const MetricsSnapshot& snapshot);

/// Content-Type header value for the exposition.
inline const char* OpenMetricsContentType() {
  return "application/openmetrics-text; version=1.0.0; charset=utf-8";
}

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_OPENMETRICS_H_
