// In-process sampling profiler and per-measure kernel attribution.
//
// Sampling profiler: every registered thread gets its own POSIX interval
// timer (timer_create with SIGEV_THREAD_ID) firing SIGPROF on that thread's
// CPU clock. The signal handler is async-signal-safe by construction — it
// calls backtrace() (pre-warmed at Start so libgcc is already loaded) into a
// pre-allocated per-thread ring buffer and touches nothing but relaxed
// atomics: no malloc, no locks, no formatting. Symbolization is entirely
// offline (dladdr + __cxa_demangle at dump time), so the hot path costs one
// unwind per sample. Output is the collapsed-stack ("folded") format that
// flamegraph.pl and speedscope consume, plus a Chrome-trace-compatible
// sampling JSON (chrome://tracing / Perfetto "stackFrames"+"samples" form).
//
// Kernel attribution: PerfRegion is a scoped RAII region that attributes
// work to a label (typically a distance-measure name). On exit it publishes
// the region's *self* cost — wall-clock always, plus the 6-event
// perf_counters group delta when the kernel allows perf_event_open — into
// the `tsdist.kernel.<field>.<label>` counter family. Nested regions
// subtract child inclusive cost from the parent, so a tuned measure that
// evaluates candidate kernels attributes each candidate to itself, not to
// the driver. bench_common snapshots the family around each case to build
// the per-case `kernel_attribution` block in tsdist.bench.v2 reports.
//
// Under TSDIST_OBS_NOOP everything here compiles to inert stubs; with
// observability on but the profiler idle, register/unregister is a mutex
// acquisition and PerfRegion a few counter adds. Profiling must never change
// evaluation results: the profiler only observes, and tools assert output
// bit-identity with sampling on vs. off.

#ifndef TSDIST_OBS_PROFILER_H_
#define TSDIST_OBS_PROFILER_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

#include "src/obs/perf_counters.h"

namespace tsdist::obs {

/// Header line every folded profile starts with (see RenderFolded).
inline constexpr const char kProfileSchema[] = "tsdist.profile.v1";

struct ProfilerOptions {
  /// Per-thread sampling period in microseconds of *thread CPU time*
  /// (an idle thread takes no samples).
  std::uint64_t interval_us = 1000;
  /// Samples retained per thread; older samples are overwritten (and
  /// counted as dropped) once a thread's ring wraps. 8192 slots at the
  /// default 1 ms period cover ~8 s of busy CPU per thread (~2 MiB each).
  std::size_t ring_capacity = 1 << 13;
};

/// Aggregate state for /profilez and tools.
struct ProfilerStatus {
  bool running = false;
  std::uint64_t samples = 0;  ///< captured and still retained
  std::uint64_t dropped = 0;  ///< overwritten by ring wrap
  std::uint64_t threads = 0;  ///< rings ever armed (live + retired)
  std::uint64_t interval_us = 0;
};

#if !defined(TSDIST_OBS_NOOP)

/// Makes the calling thread sampleable: records its kernel tid and, when the
/// profiler is already running, arms a per-thread interval timer on the
/// spot. Idempotent. ThreadPool workers call this at loop entry; Start()
/// implicitly registers the calling thread.
void RegisterProfilerThread();

/// Disarms and deletes the calling thread's timer (if any) and retires its
/// ring. The ring's samples survive until Clear() so a dump after heavy
/// thread churn still sees short-lived workers. Must be called before the
/// thread exits if RegisterProfilerThread was called.
void UnregisterProfilerThread();

class Profiler {
 public:
  /// The process-wide profiler used by /profilez and --profile-out.
  static Profiler& Global();

  /// Installs the SIGPROF handler, pre-warms backtrace, arms one timer per
  /// registered thread, and begins sampling. Returns false (and logs) when
  /// already running or when observability is disabled.
  bool Start(const ProfilerOptions& options = {});

  /// Disarms every timer and stops sampling. Samples are retained for
  /// RenderFolded/RenderChromeTrace until Clear(). Returns false when not
  /// running.
  bool Stop();

  bool running() const;
  ProfilerStatus Status() const;

  /// Drops all retained samples and retired rings. No-op while running.
  void Clear();

  /// Collapsed-stack text: a `# tsdist.profile.v1 samples=N dropped=M
  /// interval_us=U threads=T` header followed by `frame;frame;frame count`
  /// lines (root first, leaf last), sorted by descending count. Safe to call
  /// while running: sampling is briefly paused for a consistent read.
  std::string RenderFolded();

  /// Chrome-trace sampling JSON: {"traceEvents":[],"stackFrames":{...},
  /// "samples":[...]} — loadable by chrome://tracing and Perfetto.
  std::string RenderChromeTrace();

 private:
  Profiler() = default;
};

/// Writes RenderFolded() to `path`; returns false (and logs) on I/O error.
bool WriteProfileFolded(const std::string& path);

/// RAII kernel-attribution region. Label should be a stable low-cardinality
/// name (a measure name, "tuning/<measure>", ...); it becomes a metric-name
/// suffix. Safe to nest (self-time accounting) up to an internal depth
/// limit, beyond which extra levels are attributed to the nearest tracked
/// ancestor. Does nothing when observability is disabled at runtime.
class PerfRegion {
 public:
  explicit PerfRegion(std::string_view label);
  ~PerfRegion();

  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

 private:
  bool active_ = false;
};

#else  // TSDIST_OBS_NOOP

inline void RegisterProfilerThread() {}
inline void UnregisterProfilerThread() {}

class Profiler {
 public:
  static Profiler& Global() {
    static Profiler p;
    return p;
  }
  bool Start(const ProfilerOptions& = {}) { return false; }
  bool Stop() { return false; }
  bool running() const { return false; }
  ProfilerStatus Status() const { return ProfilerStatus{}; }
  void Clear() {}
  std::string RenderFolded() {
    return std::string("# ") + kProfileSchema +
           " samples=0 dropped=0 interval_us=0 threads=0\n";
  }
  std::string RenderChromeTrace() {
    return "{\"traceEvents\": [], \"stackFrames\": {}, \"samples\": []}\n";
  }
};

// Still writes a schema-valid (header-only) profile, so --profile-out does
// not become an export failure in NOOP builds.
inline bool WriteProfileFolded(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << Profiler::Global().RenderFolded();
  return static_cast<bool>(out);
}

class PerfRegion {
 public:
  explicit PerfRegion(std::string_view) {}
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;
};

#endif  // TSDIST_OBS_NOOP

/// Fields every kernel-attribution label accumulates. `wall_ns` and `calls`
/// are always present; the perf-group fields stay zero/invalid when
/// perf_event_open is unavailable (the common container case).
struct KernelStats {
  std::uint64_t calls = 0;
  std::uint64_t wall_ns = 0;  ///< self time, excluding nested regions
  PerfReading perf;           ///< self counter deltas; valid only with PMU
};

/// Splits a `tsdist.kernel.<field>.<label>` counter name. Returns false for
/// anything outside the family (fields are a fixed set; labels may contain
/// dots). Available in NOOP builds too — consumers diff metric snapshots
/// that simply contain no kernel counters there.
bool ParseKernelMetricName(const std::string& name, std::string* field,
                           std::string* label);

/// Groups the per-label deltas between two counter snapshots (as returned
/// by MetricsSnapshot::counters) into KernelStats. Labels with zero calls
/// and zero wall_ns delta are omitted; `perf.valid` is set when the delta
/// carries PMU counts.
std::map<std::string, KernelStats> KernelStatsBetween(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_PROFILER_H_
