// Process-wide run-health state served at the telemetry server's /healthz.
//
// Drivers (tsdist_eval, tsdist_bench) and the tuning layer push coarse
// state here — phase, the sweep cell currently executing, done/total cell
// counts — and the server reads a JSON snapshot on demand. Updates are a
// mutex-guarded string/counter store: they happen per sweep cell or per
// tuning candidate, never in per-distance hot paths, so a mutex is the
// right tool (contrast with the sharded metrics write path).
//
// The snapshot also folds in the active ProgressReporter (done/total units,
// rate, ETA) via SnapshotActiveProgress, so /healthz shows live intra-cell
// progress without any extra instrumentation.

#ifndef TSDIST_OBS_HEALTH_H_
#define TSDIST_OBS_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>

namespace tsdist::obs {

class HealthState {
 public:
  static HealthState& Global();

  /// Coarse lifecycle label: "idle", "eval", "bench", "export", ...
  void SetPhase(std::string phase);

  /// The sweep cell currently executing, e.g. "dtw/Coffee"; empty = none.
  void SetCurrentCell(std::string cell);

  /// Sweep-level progress (cells finished this run / total planned), how
  /// many of those were resumed from a checkpoint instead of recomputed,
  /// and how many degraded — `dnf` budget-exhausted cells, `failed` cells
  /// that errored — so a sweep piling up DNFs is visible from /healthz
  /// while it runs, not just in the final report.
  void SetCells(std::uint64_t done, std::uint64_t total,
                std::uint64_t resumed, std::uint64_t dnf = 0,
                std::uint64_t failed = 0);

  /// Federated shard-fleet health: a tsdist.fleethealth.v1 JSON document
  /// aggregated from the checkpoint directory's per-worker snapshots (see
  /// src/shard/fleet.h). Empty (the default) removes the fleet block from
  /// /healthz and makes /fleetz report an empty fleet.
  void SetFleetJson(std::string fleet_json);

  /// The current fleet document ("" when no shard fleet is active).
  std::string FleetJson() const;

  /// HTTP endpoint inventory served in the /healthz document, e.g.
  /// "/metrics /healthz /profilez /heapz /tracez". The telemetry server
  /// sets this at Start so operators can discover every live endpoint from
  /// the health snapshot alone. Empty (the default) omits the block.
  void SetEndpoints(std::string endpoints);

  /// The whole state as a `tsdist.health.v1` JSON object: schema, status,
  /// uptime, phase, current cell, cell counts, a fleet block when shard
  /// workers are federating health, and (when a reporter is active) the
  /// live progress block.
  std::string ToJson() const;

 private:
  HealthState();

  mutable std::mutex mu_;
  std::uint64_t start_ns_;
  std::string phase_ = "idle";
  std::string current_cell_;
  std::uint64_t cells_done_ = 0;
  std::uint64_t cells_total_ = 0;
  std::uint64_t cells_resumed_ = 0;
  std::uint64_t cells_dnf_ = 0;
  std::uint64_t cells_failed_ = 0;
  std::string fleet_json_;
  std::string endpoints_;
};

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_HEALTH_H_
