// Allocation-sampling heap profiler and per-measure memory attribution.
//
// Heap profiler: the tsdist static library carries strong definitions of
// malloc/free/realloc/calloc/aligned_alloc and the operator new/delete
// family. Because the archive is scanned before libc, the linker binds every
// allocation in a tsdist binary to these wrappers, which delegate to the
// real glibc allocator (__libc_malloc and friends) and — when the profiler
// is armed — sample the stream tcmalloc-style: a deterministic per-thread
// byte countdown takes one sample every `sample_interval_bytes` allocated
// bytes (default 512 KiB). A sampled allocation captures a backtrace,
// upscales to an estimated byte weight (intervals consumed x interval, so an
// allocation of B >= interval bytes weighs ~B — byte-accurate for large
// blocks, statistically unbiased for small ones), and enters a lock-sharded
// live-allocation hash table keyed by pointer. free() retires the entry, so
// the table always holds the sampled *live* set. Symbolization is entirely
// offline (dladdr + __cxa_demangle at dump time). Output is collapsed-stack
// text under the `tsdist.heapprofile.v1` header — two counts per stack,
// live bytes then cumulative bytes, hottest-first — plus a leak-style
// end-of-run report of the top live stacks.
//
// Memory attribution: MemRegion is the heap companion of PerfRegion. While
// a region is active on a thread, every allocation that thread makes is
// attributed — exactly, independent of sampling — to the innermost label
// via the `tsdist.mem.{alloc_bytes,alloc_count}.<label>` counter family;
// the sampled live estimate additionally drives the
// `tsdist.mem.peak_live_bytes.<label>` gauge while the profiler is armed.
// bench_common snapshots the family around each case to build the per-case
// `memory_attribution` block in tsdist.bench.v2 reports.
//
// House rules: the wrappers only observe (results stay bit-identical with
// profiling on vs. off), TSDIST_OBS_NOOP compiles everything here to inert
// stubs, and when ASan/TSan own the allocator the wrappers are not compiled
// at all — Start() then refuses with a one-shot warning so the `sanitize`
// preset stays green. Non-glibc platforms degrade the same way.

#ifndef TSDIST_OBS_HEAP_PROFILER_H_
#define TSDIST_OBS_HEAP_PROFILER_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

namespace tsdist::obs {

/// Header line every heap profile starts with (see RenderFolded).
inline constexpr const char kHeapProfileSchema[] = "tsdist.heapprofile.v1";

struct HeapProfilerOptions {
  /// Mean allocated bytes between samples. Smaller intervals trade overhead
  /// for resolution; 1 KiB is the floor (tests pin it for determinism —
  /// every allocation of >= interval bytes is then sampled exactly once per
  /// interval it spans).
  std::uint64_t sample_interval_bytes = 512 * 1024;
};

/// Aggregate state for /heapz and tools.
struct HeapProfilerStatus {
  bool running = false;    ///< sampling new allocations right now
  bool available = false;  ///< wrappers compiled in and sanitizer-free
  std::uint64_t samples = 0;        ///< allocations ever sampled
  std::uint64_t dropped = 0;        ///< sampled but not recorded (table cap)
  std::uint64_t live_allocs = 0;    ///< sampled allocations still live
  std::uint64_t live_bytes = 0;     ///< upscaled live-byte estimate
  std::uint64_t cumulative_bytes = 0;  ///< upscaled ever-allocated estimate
  std::uint64_t sample_interval_bytes = 0;
};

/// True when the allocator wrappers are compiled in and no sanitizer owns
/// the heap — i.e. Start() can actually sample. Constant per build.
bool HeapProfilingAvailable();

/// Rebases every label's `tsdist.mem.peak_live_bytes.<label>` gauge to its
/// current sampled live estimate. bench_common calls this at the start of
/// each case so per-case peaks do not inherit an earlier case's high-water.
/// No-op in NOOP builds (defined out of line in both variants).
void ResetMemPeaks();

#if !defined(TSDIST_OBS_NOOP)

class HeapProfiler {
 public:
  /// The process-wide heap profiler used by /heapz and --heap-profile-out.
  static HeapProfiler& Global();

  /// Arms sampling: resets every thread's byte countdown to the interval
  /// (via an epoch bump) and pre-warms backtrace. Returns false (and logs)
  /// when already running, when observability is disabled, or when the
  /// wrappers are unavailable (sanitizer build / non-glibc) — the latter
  /// warns once per process.
  bool Start(const HeapProfilerOptions& options = {});

  /// Stops sampling new allocations. frees of already-sampled blocks keep
  /// retiring table entries until Clear(), so an end-of-run dump reports
  /// genuinely-live memory. Returns false when not running.
  bool Stop();

  bool running() const;
  HeapProfilerStatus Status() const;

  /// Drops every sampled stack and live entry. No-op while running.
  void Clear();

  /// Collapsed-stack text: a `# tsdist.heapprofile.v1 samples=N dropped=D
  /// live_bytes=L cumulative_bytes=C interval_bytes=I` header followed by
  /// `frame;frame;frame live cum` lines (root first, leaf last), sorted by
  /// descending live bytes, then descending cumulative bytes. The header
  /// totals are computed from the emitted rows, so they always equal the
  /// column sums. Safe to call while running.
  std::string RenderFolded();

  /// Human-readable top-`max_stacks` live stacks ("leak-style" because at
  /// process exit live == leaked): one summary line plus one indented line
  /// per stack. Empty live set renders a single "no live sampled
  /// allocations" line.
  std::string RenderLeakReport(std::size_t max_stacks = 10);

 private:
  HeapProfiler() = default;
};

/// Writes RenderFolded() to `path`; returns false (and logs) on I/O error.
bool WriteHeapProfileFolded(const std::string& path);

/// RAII memory-attribution region. Label should be a stable low-cardinality
/// name (a measure name, "tuning/<measure>", ...); it becomes a metric-name
/// suffix. Allocations are attributed to the innermost active region on the
/// allocating thread (no parent/child splitting — an allocation has exactly
/// one owner). Safe to nest up to an internal depth limit, beyond which
/// extra levels attribute to the nearest tracked ancestor. Does nothing when
/// observability is disabled at runtime.
class MemRegion {
 public:
  explicit MemRegion(std::string_view label);
  ~MemRegion();

  MemRegion(const MemRegion&) = delete;
  MemRegion& operator=(const MemRegion&) = delete;

 private:
  bool active_ = false;
};

#else  // TSDIST_OBS_NOOP

class HeapProfiler {
 public:
  static HeapProfiler& Global() {
    static HeapProfiler p;
    return p;
  }
  bool Start(const HeapProfilerOptions& = {}) { return false; }
  bool Stop() { return false; }
  bool running() const { return false; }
  HeapProfilerStatus Status() const { return HeapProfilerStatus{}; }
  void Clear() {}
  std::string RenderFolded() {
    return std::string("# ") + kHeapProfileSchema +
           " samples=0 dropped=0 live_bytes=0 cumulative_bytes=0"
           " interval_bytes=0\n";
  }
  std::string RenderLeakReport(std::size_t = 10) {
    return "heap live report: no live sampled allocations\n";
  }
};

// Still writes a schema-valid (header-only) profile, so --heap-profile-out
// does not become an export failure in NOOP builds.
inline bool WriteHeapProfileFolded(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << HeapProfiler::Global().RenderFolded();
  return static_cast<bool>(out);
}

class MemRegion {
 public:
  explicit MemRegion(std::string_view) {}
  MemRegion(const MemRegion&) = delete;
  MemRegion& operator=(const MemRegion&) = delete;
};

#endif  // TSDIST_OBS_NOOP

/// Fields every memory-attribution label accumulates. `alloc_bytes` and
/// `alloc_count` are exact (every allocation under the region is counted);
/// `peak_live_bytes` is the sampled upscaled estimate and stays 0 unless
/// the heap profiler was armed while the region ran.
struct MemStats {
  std::uint64_t alloc_bytes = 0;
  std::uint64_t alloc_count = 0;
  std::uint64_t peak_live_bytes = 0;
};

/// Splits a `tsdist.mem.<field>.<label>` metric name. Returns false for
/// anything outside the family (fields are a fixed set; labels may contain
/// dots). Available in NOOP builds too — consumers diff metric snapshots
/// that simply contain no mem metrics there.
bool ParseMemMetricName(const std::string& name, std::string* field,
                        std::string* label);

/// Groups the per-label deltas between two counter snapshots into MemStats.
/// `alloc_bytes`/`alloc_count` come from saturating counter deltas;
/// `peak_live_bytes` is read absolute from `gauges_after` (a peak is a
/// high-water mark, not a rate). Labels whose alloc_bytes and alloc_count
/// deltas are both zero are omitted.
std::map<std::string, MemStats> MemStatsBetween(
    const std::map<std::string, std::uint64_t>& before,
    const std::map<std::string, std::uint64_t>& after,
    const std::map<std::string, double>& gauges_after);

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_HEAP_PROFILER_H_
