#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "src/obs/obs.h"

namespace tsdist::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Chrome trace timestamps are microseconds. Rendering ns/1000.0 through a
// default-precision ostream collapses anything past ~1 s to 6 significant
// digits (scientific notation); fixed-point integer math keeps the full
// nanosecond resolution: 1234567 ns -> "1234.567".
std::string MicrosFixed(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::atomic<std::int64_t> g_next_span_id{0};
std::atomic<std::uint32_t> g_next_tid{0};

// The recorder epoch with its wall-clock anchor: CLOCK_MONOTONIC (NowNs)
// and CLOCK_REALTIME (system_clock) sampled back to back on first use, so
// ts values stay small, chrome://tracing renders from t=0, and trace_merge
// can place this process's spans on the fleet's shared wall-clock timeline.
struct EpochAnchor {
  std::uint64_t mono_ns = 0;
  std::uint64_t wall_us = 0;
};

const EpochAnchor& PinnedEpoch() {
  static const EpochAnchor pinned = [] {
    EpochAnchor a;
    a.mono_ns = NowNs();
    a.wall_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    return a;
  }();
  return pinned;
}

std::uint64_t EpochNs() { return PinnedEpoch().mono_ns; }

struct BufHolder;

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<BufHolder>> bufs;
};

// Guards the recorder's TraceContext (strings; too wide for atomics).
std::mutex& ContextMutex() {
  static std::mutex* mu = new std::mutex();  // never destroyed
  return *mu;
}

TraceContext& ContextStorage() {
  static TraceContext* context = new TraceContext();  // never destroyed
  return *context;
}

}  // namespace

struct TraceRecorder::ThreadBuf {
  std::mutex mu;  // guards events against concurrent snapshot/export
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
  std::int64_t open_parent = -1;  // innermost open span on this thread
};

namespace {

// Keeps ThreadBufs alive after their owning thread exits so a later export
// still sees their events.
struct BufHolder {
  TraceRecorder::ThreadBuf buf;
};

Registry& GlobalRegistry() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

TraceRecorder::ThreadBuf& TraceRecorder::BufForThisThread() {
  thread_local std::shared_ptr<BufHolder> holder = [] {
    auto h = std::make_shared<BufHolder>();
    h->buf.tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    Registry& registry = GlobalRegistry();
    std::lock_guard<std::mutex> lock(registry.mu);
    registry.bufs.push_back(h);
    return h;
  }();
  return holder->buf;
}

void TraceRecorder::SetEnabled(bool enabled) {
#if defined(TSDIST_OBS_NOOP)
  (void)enabled;  // tracing cannot be enabled in a no-op build
#else
  if (enabled) PinnedEpoch();  // pin epoch + wall anchor before the first span
  enabled_.store(enabled, std::memory_order_relaxed);
#endif
}

void TraceRecorder::SetContext(TraceContext context) {
  const std::lock_guard<std::mutex> lock(ContextMutex());
  ContextStorage() = std::move(context);
}

TraceContext TraceRecorder::context() const {
  const std::lock_guard<std::mutex> lock(ContextMutex());
  return ContextStorage();
}

void TraceRecorder::set_context_epoch(std::uint32_t epoch) {
  const std::lock_guard<std::mutex> lock(ContextMutex());
  ContextStorage().epoch = epoch;
}

WallAnchor TraceRecorder::anchor() const {
  const EpochAnchor& pinned = PinnedEpoch();
  WallAnchor anchor;
  anchor.wall_us = pinned.wall_us;
  anchor.mono_ns = pinned.mono_ns;
  return anchor;
}

void TraceRecorder::Instant(std::string name, std::string category,
                            std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuf& buf = BufForThisThread();
  if (!ClaimSlot()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args = std::move(args);
  const std::uint64_t now = NowNs();
  const std::uint64_t epoch = EpochNs();
  event.ts_ns = now >= epoch ? now - epoch : 0;
  event.dur_ns = 0;
  event.instant = true;
  event.tid = buf.tid;
  event.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  event.parent = buf.open_parent;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& holder : registry.bufs) {
    std::lock_guard<std::mutex> buf_lock(holder->buf.mu);
    holder->buf.events.clear();
  }
  recorded_.store(0, std::memory_order_relaxed);
}

bool TraceRecorder::ClaimSlot() {
  const std::size_t cap = max_spans_.load(std::memory_order_relaxed);
  if (cap == 0) {
    recorded_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Optimistically claim; on overshoot, roll back so recorded_spans() stays
  // an accurate retained-span count and Clear() re-arms cleanly.
  if (recorded_.fetch_add(1, std::memory_order_relaxed) < cap) return true;
  recorded_.fetch_sub(1, std::memory_order_relaxed);
  MetricsRegistry::Global().GetCounter("tsdist.trace.dropped_spans").Add(1);
  return false;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  Registry& registry = GlobalRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (auto& holder : registry.bufs) {
    std::lock_guard<std::mutex> buf_lock(holder->buf.mu);
    out.insert(out.end(), holder->buf.events.begin(), holder->buf.events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
    return a.id < b.id;
  });
  return out;
}

std::vector<TraceEvent> TraceRecorder::DrainEvents() {
  std::vector<TraceEvent> out;
  Registry& registry = GlobalRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (auto& holder : registry.bufs) {
      std::lock_guard<std::mutex> buf_lock(holder->buf.mu);
      for (TraceEvent& e : holder->buf.events) out.push_back(std::move(e));
      holder->buf.events.clear();
    }
  }
  if (!out.empty()) {
    // Re-arm the cap by exactly what was taken; clamp against a concurrent
    // Clear() having already zeroed the count.
    std::size_t expected = recorded_.load(std::memory_order_relaxed);
    while (true) {
      const std::size_t take = std::min(expected, out.size());
      if (recorded_.compare_exchange_weak(expected, expected - take,
                                          std::memory_order_relaxed)) {
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.id < b.id;
            });
  return out;
}

std::vector<TraceRecorder::SpanNode> TraceRecorder::SpanForest() const {
  std::vector<TraceEvent> events = Events();
  // A child span always starts at-or-after its parent and gets a larger id,
  // so processing events in decreasing (ts, id) order moves every node into
  // its parent only after all of its own children have been attached.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns > b.ts_ns;
              return a.id > b.id;
            });
  std::map<std::int64_t, SpanNode> nodes;
  for (const TraceEvent& e : events) nodes[e.id].event = e;
  std::vector<SpanNode> roots;
  for (const TraceEvent& e : events) {
    auto it = nodes.find(e.id);
    if (e.parent >= 0) {
      auto parent_it = nodes.find(e.parent);
      if (parent_it != nodes.end()) {
        parent_it->second.children.push_back(std::move(it->second));
        continue;
      }
    }
    roots.push_back(std::move(it->second));
  }
  // Attachment ran in reverse chronological order; restore start order.
  auto sort_children = [](auto&& self, std::vector<SpanNode>& list) -> void {
    std::sort(list.begin(), list.end(),
              [](const SpanNode& a, const SpanNode& b) {
                if (a.event.ts_ns != b.event.ts_ns) {
                  return a.event.ts_ns < b.event.ts_ns;
                }
                return a.event.id < b.event.id;
              });
    for (SpanNode& node : list) self(self, node.children);
  };
  sort_children(sort_children, roots);
  return roots;
}

std::string TraceRecorder::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  {\"name\": \"" << JsonEscape(e.name) << "\", \"cat\": \""
       << JsonEscape(e.category) << "\", \"ph\": \""
       << (e.instant ? "i" : "X") << "\", \"ts\": " << MicrosFixed(e.ts_ns);
    if (e.instant) {
      os << ", \"s\": \"t\"";
    } else {
      os << ", \"dur\": " << MicrosFixed(e.dur_ns);
    }
    os << ", \"pid\": 1, \"tid\": " << e.tid
       << ", \"args\": {\"id\": " << e.id << ", \"parent\": " << e.parent;
    for (const TraceArg& arg : e.args) {
      os << ", \"" << JsonEscape(arg.key) << "\": ";
      if (arg.is_string) {
        os << "\"" << JsonEscape(arg.value) << "\"";
      } else {
        os << arg.value;
      }
    }
    if (e.perf.valid) {
      os << ", \"perf\": " << PerfReadingToJson(e.perf, /*indent=*/0);
    }
    os << "}}";
  }
  os << "\n]\n";
  return os.str();
}

TraceSpan::TraceSpan(std::string name, std::string category, bool with_perf) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.enabled()) return;
  name_ = std::move(name);
  category_ = std::move(category);
  TraceRecorder::ThreadBuf& buf = recorder.BufForThisThread();
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  saved_parent_ = buf.open_parent;
  buf.open_parent = id_;
  if (with_perf && PerfCountersSupported()) {
    perf_ = std::make_unique<PerfCounterGroup>();
    if (perf_->available()) {
      perf_->Start();
    } else {
      perf_.reset();
    }
  }
  start_ns_ = NowNs();
  active_ = true;
}

void TraceSpan::Arg(std::string key, std::string value) {
  if (!active_) return;
  args_.push_back({std::move(key), std::move(value), /*is_string=*/true});
}

void TraceSpan::Arg(std::string key, const char* value) {
  Arg(std::move(key), std::string(value));
}

void TraceSpan::Arg(std::string key, std::uint64_t value) {
  if (!active_) return;
  args_.push_back({std::move(key), std::to_string(value), false});
}

void TraceSpan::Arg(std::string key, std::int64_t value) {
  if (!active_) return;
  args_.push_back({std::move(key), std::to_string(value), false});
}

void TraceSpan::Arg(std::string key, double value) {
  if (!active_) return;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  args_.push_back({std::move(key), buf, false});
}

void TraceSpan::Arg(std::string key, bool value) {
  if (!active_) return;
  args_.push_back({std::move(key), value ? "true" : "false", false});
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const std::uint64_t end_ns = NowNs();
  PerfReading perf;
  if (perf_ != nullptr) perf = perf_->Stop();
  TraceRecorder& recorder = TraceRecorder::Global();
  TraceRecorder::ThreadBuf& buf = recorder.BufForThisThread();
  buf.open_parent = saved_parent_;
  // Drop (but keep parent linkage restored) once the retained-span cap is
  // hit; children already recorded stay valid and export as roots.
  if (!recorder.ClaimSlot()) return;
  // Record even if tracing was switched off mid-span, so nesting stays
  // balanced for anything recorded while it was on.
  TraceEvent event;
  event.perf = perf;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.args = std::move(args_);
  const std::uint64_t epoch = EpochNs();
  event.ts_ns = start_ns_ >= epoch ? start_ns_ - epoch : 0;
  event.dur_ns = end_ns - start_ns_;
  event.tid = buf.tid;
  event.id = id_;
  event.parent = saved_parent_;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(event));
}

ScopedTimer::ScopedTimer(Histogram* histogram, Counter* counter,
                         std::uint64_t counter_increment)
    : histogram_(histogram),
      counter_(counter),
      counter_increment_(counter_increment),
      start_ns_(NowNs()) {}

std::uint64_t ScopedTimer::ElapsedNs() const { return NowNs() - start_ns_; }

ScopedTimer::~ScopedTimer() {
  if (cancelled_ || !Enabled()) return;
  const std::uint64_t elapsed = ElapsedNs();
  if (histogram_ != nullptr) histogram_->Record(elapsed);
  if (counter_ != nullptr) counter_->Add(counter_increment_);
}

}  // namespace tsdist::obs
