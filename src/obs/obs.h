// Umbrella header for the tsdist observability layer.
//
// The subsystem has three parts, all process-wide and thread-safe:
//   * metrics.h   — MetricsRegistry with named counters, gauges, and
//                   fixed-bucket latency histograms (sharded relaxed atomics;
//                   ~one uncontended atomic add per event on the write path);
//   * trace.h     — RAII TraceSpan/ScopedTimer producing an in-memory span
//                   tree exportable as Chrome trace-event JSON;
//   * progress.h  — ProgressReporter with rate + ETA for long matrix jobs.
//
// Instrumentation never changes numerical results: it only reads the clock
// and bumps counters, so matrix outputs are bit-identical with observability
// on or off. Two kill switches exist:
//   * runtime:      obs::SetEnabled(false)  (metrics + timers; tracing has
//                   its own opt-in toggle, TraceRecorder::SetEnabled);
//   * compile time: define TSDIST_OBS_NOOP (CMake -DTSDIST_OBS_NOOP=ON) to
//                   compile every instrumentation site down to nothing. The
//                   metric/trace *classes* stay functional so tools that dump
//                   JSON keep linking; only the hot-path hooks disappear.
//
// Metric naming scheme: tsdist.<layer>.<name>[.<qualifier>], e.g.
// tsdist.pairwise.cells.dtw or tsdist.linalg.eigen_ns. See
// docs/OBSERVABILITY.md for the full inventory.

#ifndef TSDIST_OBS_OBS_H_
#define TSDIST_OBS_OBS_H_

#include <chrono>
#include <cstdint>

#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"

namespace tsdist::obs {

/// Monotonic nanosecond timestamp (steady clock, arbitrary epoch).
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(TSDIST_OBS_NOOP)
/// Compile-time no-op build: every `if (obs::Enabled())` block is dead code
/// the optimizer removes entirely.
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
/// Runtime master switch for metrics + timers (default: on).
bool Enabled();
void SetEnabled(bool enabled);
#endif

}  // namespace tsdist::obs

#endif  // TSDIST_OBS_OBS_H_
