// Cross-correlation sequence utilities shared by the sliding measures.
//
// Cross-correlation "maximizes the correlation (or, equivalently, minimizes
// the ED) between a time series x and all shifted versions of another time
// series y" (paper Section 6). The full sequence CC_w has length 2m-1; the
// library computes it in O(m log m) via the FFT (eq. 10), falling back to the
// naive O(m^2) algorithm for tiny inputs where FFT setup dominates.

#ifndef TSDIST_SLIDING_CROSS_CORRELATION_H_
#define TSDIST_SLIDING_CROSS_CORRELATION_H_

#include <span>
#include <vector>

namespace tsdist {

/// Full cross-correlation sequence between two equal-length series:
/// entry w in [0, 2m-2] is the inner product at lag k = w - (m-1). Chooses
/// FFT or the direct algorithm based on the series length.
std::vector<double> CrossCorrelationSequence(std::span<const double> x,
                                             std::span<const double> y);

/// Maximum of the cross-correlation sequence (the NCC similarity before
/// normalization).
double MaxCrossCorrelation(std::span<const double> x, std::span<const double> y);

}  // namespace tsdist

#endif  // TSDIST_SLIDING_CROSS_CORRELATION_H_
