// The 4 sliding distance measures (paper Section 6, eq. 11): variants of
// normalized cross-correlation. Each maximizes a (possibly normalized)
// cross-correlation over all 2m-1 shifts and converts the similarity into a
// distance. NCCc is the Shape-Based Distance (SBD) of k-Shape, the measure
// the paper identifies as the strongest parameter-free baseline — the one
// most elastic measures fail to beat (debunked misconception M3).

#ifndef TSDIST_SLIDING_NCC_MEASURES_H_
#define TSDIST_SLIDING_NCC_MEASURES_H_

#include "src/core/distance_measure.h"
#include "src/core/registry.h"

namespace tsdist {

/// Common base for the sliding measures.
class SlidingMeasure : public DistanceMeasure {
 public:
  MeasureCategory category() const override { return MeasureCategory::kSliding; }
  CostClass cost_class() const override { return CostClass::kLinearithmic; }
};

/// Raw NCC: distance = -max_w CC_w(x, y). Assumes some underlying
/// per-series normalization of the inputs.
class NccDistance : public SlidingMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "ncc"; }
};

/// Biased estimator NCC_b: distance = -max_w CC_w(x, y) / m.
class NccBiasedDistance : public SlidingMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "nccb"; }
};

/// Unbiased estimator NCC_u: distance = -max_w CC_w(x, y) / (m - |w - m|),
/// dividing each lag by its overlap length.
class NccUnbiasedDistance : public SlidingMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "nccu"; }
};

/// Coefficient-normalized NCC_c, a.k.a. SBD:
/// distance = 1 - max_w CC_w(x, y) / (||x|| * ||y||), in [0, 2].
class NccCoefficientDistance : public SlidingMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "nccc"; }
};

/// Registers ncc, nccb, nccu, nccc.
void RegisterSlidingMeasures(Registry* registry);

/// Names of the 4 sliding measures in paper order.
const std::vector<std::string>& SlidingMeasureNames();

}  // namespace tsdist

#endif  // TSDIST_SLIDING_NCC_MEASURES_H_
