#include "src/sliding/cross_correlation.h"

#include <algorithm>
#include <cassert>

#include "src/linalg/fft.h"

namespace tsdist {

namespace {

// Below this length the O(m^2) direct method beats FFT setup cost.
constexpr std::size_t kFftThreshold = 64;

}  // namespace

std::vector<double> CrossCorrelationSequence(std::span<const double> x,
                                             std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < kFftThreshold) {
    return CrossCorrelationNaive(x, y);
  }
  return CrossCorrelationFft(x, y);
}

double MaxCrossCorrelation(std::span<const double> x,
                           std::span<const double> y) {
  const std::vector<double> cc = CrossCorrelationSequence(x, y);
  assert(!cc.empty());
  return *std::max_element(cc.begin(), cc.end());
}

}  // namespace tsdist
