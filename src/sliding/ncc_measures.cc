#include "src/sliding/ncc_measures.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>

#include "src/sliding/cross_correlation.h"

namespace tsdist {

namespace {

constexpr double kEps = 1e-12;

double Norm2(std::span<const double> v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

}  // namespace

double NccDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  assert(a.size() == b.size());
  return -MaxCrossCorrelation(a, b);
}

double NccBiasedDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  const double m = static_cast<double>(a.size());
  return -MaxCrossCorrelation(a, b) / m;
}

double NccUnbiasedDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::vector<double> cc = CrossCorrelationSequence(a, b);
  const std::size_t m = a.size();
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < cc.size(); ++w) {
    // Overlap length at index w: with lag k = w - (m-1), m - |k| points align.
    const std::ptrdiff_t k =
        static_cast<std::ptrdiff_t>(w) - static_cast<std::ptrdiff_t>(m - 1);
    const double overlap = static_cast<double>(m) - std::fabs(static_cast<double>(k));
    best = std::max(best, cc[w] / overlap);
  }
  return -best;
}

double NccCoefficientDistance::Distance(std::span<const double> a,
                                        std::span<const double> b) const {
  assert(a.size() == b.size());
  const double den = Norm2(a) * Norm2(b);
  if (den < kEps) return 1.0;
  return 1.0 - MaxCrossCorrelation(a, b) / den;
}

void RegisterSlidingMeasures(Registry* registry) {
  registry->Register("ncc", [](const ParamMap&) -> MeasurePtr {
    return std::make_unique<NccDistance>();
  });
  registry->Register("nccb", [](const ParamMap&) -> MeasurePtr {
    return std::make_unique<NccBiasedDistance>();
  });
  registry->Register("nccu", [](const ParamMap&) -> MeasurePtr {
    return std::make_unique<NccUnbiasedDistance>();
  });
  registry->Register("nccc", [](const ParamMap&) -> MeasurePtr {
    return std::make_unique<NccCoefficientDistance>();
  });
}

const std::vector<std::string>& SlidingMeasureNames() {
  static const std::vector<std::string> kNames = {"ncc", "nccb", "nccu", "nccc"};
  return kNames;
}

}  // namespace tsdist
