// 1-Nearest-Neighbor evaluation (Algorithm 1 of the paper).
//
// The paper's evaluation framework: classification accuracy of a 1-NN
// classifier driven by a dissimilarity matrix. Two entry points mirror the
// paper exactly:
//  * test accuracy from E (test x train) plus the two label vectors, and
//  * leave-one-out training accuracy from W (train x train), which excludes
//    the diagonal self-match and enables supervised parameter tuning.
// Ties are broken by the lowest training index, making results deterministic.
//
// The *FromIndices variants score precomputed 1-NN predictions — the output
// of PairwiseEngine's cascade-pruned search — under the same tie and miss
// policy, so matrix-path and pruned-path accuracies are identical by
// construction (docs/PRUNING.md).
//
// NaN policy: a NaN distance loses every `<` comparison, so it can never be
// selected as the nearest neighbour; a query row whose candidates are all
// NaN is counted as a misclassification. Every NaN distance encountered
// bumps the tsdist.classify.nan_distances counter so datasets or measures
// that silently produce NaNs are visible in the metrics export instead of
// just depressing accuracy.

#ifndef TSDIST_CLASSIFY_ONE_NN_H_
#define TSDIST_CLASSIFY_ONE_NN_H_

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.h"

namespace tsdist {

/// Fraction of test series whose nearest training series (per row of `e`)
/// shares their label. `e` is r-by-p, `test_labels` has r entries,
/// `train_labels` has p entries.
double OneNnAccuracy(const Matrix& e, const std::vector<int>& test_labels,
                     const std::vector<int>& train_labels);

/// Leave-one-out 1-NN accuracy over the self-dissimilarity matrix `w`
/// (p-by-p): each series is classified by its nearest *other* series.
double LeaveOneOutAccuracy(const Matrix& w, const std::vector<int>& labels);

/// Accuracy from precomputed 1-NN predictions: nn_indices[i] is the index
/// of query i's nearest training series. Any out-of-range index (notably
/// PairwiseEngine::kNoNeighbor, the all-NaN-row sentinel) counts as a miss.
double OneNnAccuracyFromIndices(const std::vector<std::size_t>& nn_indices,
                                const std::vector<int>& test_labels,
                                const std::vector<int>& train_labels);

/// Leave-one-out counterpart: nn_indices[i] is the nearest *other* series
/// of series i (as returned by PairwiseEngine::LeaveOneOutNeighborsPruned).
double LeaveOneOutAccuracyFromIndices(
    const std::vector<std::size_t>& nn_indices,
    const std::vector<int>& labels);

/// Index of the nearest reference for each query row of `e` (lowest index
/// wins ties). Exposed for similarity-search style examples.
std::vector<std::size_t> NearestNeighborIndices(const Matrix& e);

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_ONE_NN_H_
