// 1-Nearest-Neighbor evaluation (Algorithm 1 of the paper).
//
// The paper's evaluation framework: classification accuracy of a 1-NN
// classifier driven by a dissimilarity matrix. Two entry points mirror the
// paper exactly:
//  * test accuracy from E (test x train) plus the two label vectors, and
//  * leave-one-out training accuracy from W (train x train), which excludes
//    the diagonal self-match and enables supervised parameter tuning.
// Ties are broken by the lowest training index, making results deterministic.

#ifndef TSDIST_CLASSIFY_ONE_NN_H_
#define TSDIST_CLASSIFY_ONE_NN_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace tsdist {

/// Fraction of test series whose nearest training series (per row of `e`)
/// shares their label. `e` is r-by-p, `test_labels` has r entries,
/// `train_labels` has p entries.
double OneNnAccuracy(const Matrix& e, const std::vector<int>& test_labels,
                     const std::vector<int>& train_labels);

/// Leave-one-out 1-NN accuracy over the self-dissimilarity matrix `w`
/// (p-by-p): each series is classified by its nearest *other* series.
double LeaveOneOutAccuracy(const Matrix& w, const std::vector<int>& labels);

/// Index of the nearest reference for each query row of `e` (lowest index
/// wins ties). Exposed for similarity-search style examples.
std::vector<std::size_t> NearestNeighborIndices(const Matrix& e);

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_ONE_NN_H_
