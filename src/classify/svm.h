// Kernel SVM evaluation framework.
//
// Section 9 of the paper notes that kernel and embedding measures "achieve
// much higher accuracy under different evaluation frameworks (e.g., with
// SVM classifiers)" and leaves that analysis as future work. This module
// implements it: a binary C-SVM trained with simplified SMO on precomputed
// (normalized) kernel matrices, lifted to multiclass with one-vs-one
// voting, plus the end-to-end evaluation entry point mirroring the 1-NN
// pipeline.

#ifndef TSDIST_CLASSIFY_SVM_H_
#define TSDIST_CLASSIFY_SVM_H_

#include <cstdint>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/distance_measure.h"
#include "src/kernel/kernel_measure.h"
#include "src/linalg/matrix.h"

namespace tsdist {

/// Hyper-parameters for the SMO trainer.
struct SvmOptions {
  double c = 1.0;          ///< box constraint
  double tolerance = 1e-3; ///< KKT violation tolerance
  int max_passes = 10;     ///< consecutive violation-free passes to stop
  int max_iterations = 10000;  ///< hard cap on update sweeps
  std::uint64_t seed = 1;  ///< partner-selection randomization
};

/// Binary C-SVM over a precomputed kernel matrix.
class BinaryKernelSvm {
 public:
  /// Trains on gram (n x n, symmetric p.s.d.) with labels in {-1, +1}.
  void Train(const Matrix& gram, const std::vector<int>& labels,
             const SvmOptions& options);

  /// Decision value for a sample given its kernel row against the training
  /// set (same order as at Train time). Positive = class +1.
  double Decision(std::span<const double> kernel_row) const;

  const std::vector<double>& alphas() const { return alphas_; }
  double bias() const { return bias_; }

 private:
  std::vector<double> alphas_;
  std::vector<int> labels_;
  double bias_ = 0.0;
};

/// One-vs-one multiclass wrapper: trains k(k-1)/2 binary machines and
/// predicts by majority vote (ties broken by the smaller class id).
class OneVsOneSvm {
 public:
  /// Trains on a full training gram matrix and arbitrary integer labels.
  void Train(const Matrix& gram, const std::vector<int>& labels,
             const SvmOptions& options);

  /// Predicts the class of a sample from its kernel row against the full
  /// training set.
  int Predict(std::span<const double> kernel_row) const;

 private:
  struct PairMachine {
    int class_a = 0;  ///< mapped to +1
    int class_b = 0;  ///< mapped to -1
    std::vector<std::size_t> indices;  ///< training rows used
    BinaryKernelSvm svm;
  };
  std::vector<PairMachine> machines_;
};

/// End-to-end: builds normalized kernel matrices for `kernel`, trains a
/// one-vs-one SVM on the training split, and returns test accuracy.
double EvaluateSvm(const KernelFunction& kernel, const Dataset& dataset,
                   const SvmOptions& options, std::size_t num_threads = 0);

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_SVM_H_
