// Supervised (leave-one-out) parameter tuning and end-to-end evaluation.
//
// Implements the paper's two regimes:
//  * supervised "LOOCCV": every grid candidate is scored by leave-one-out
//    1-NN accuracy on the training split; the best (first on ties, making
//    tuning deterministic) is evaluated on the test split;
//  * unsupervised: a single fixed parameter set is evaluated directly.

#ifndef TSDIST_CLASSIFY_TUNING_H_
#define TSDIST_CLASSIFY_TUNING_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"

namespace tsdist {

/// Result of evaluating one measure on one dataset.
struct EvalResult {
  std::string measure;   ///< registry name
  ParamMap params;       ///< parameters actually used
  double train_accuracy = 0.0;  ///< leave-one-out accuracy (supervised only)
  double test_accuracy = 0.0;   ///< Algorithm-1 accuracy on the test split
};

/// Evaluates `measure_name` with fixed `params` on `dataset`.
EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry = Registry::Global());

/// Tunes `measure_name` over `grid` by leave-one-out accuracy on the train
/// split, then evaluates the winner on the test split. The first candidate
/// achieving the best training accuracy wins (deterministic).
EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry = Registry::Global());

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_TUNING_H_
