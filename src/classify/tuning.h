// Supervised (leave-one-out) parameter tuning and end-to-end evaluation.
//
// Implements the paper's two regimes:
//  * supervised "LOOCCV": every grid candidate is scored by leave-one-out
//    1-NN accuracy on the training split; the best (first on ties, making
//    tuning deterministic) is evaluated on the test split;
//  * unsupervised: a single fixed parameter set is evaluated directly.
//
// Both regimes support two execution paths selected by EvalOptions::pruned:
//  * the full-matrix path computes W / E via PairwiseEngine and scores them
//    with the matrix accuracy functions;
//  * the pruned path skips the matrices entirely and runs the
//    LB_Kim -> LB_Keogh -> early-abandon cascade per query
//    (PairwiseEngine::LeaveOneOutNeighborsPruned / NearestNeighborIndicesPruned),
//    producing bit-identical predictions — and therefore identical
//    accuracies — while skipping most full elastic-measure evaluations.
// See docs/PRUNING.md.

#ifndef TSDIST_CLASSIFY_TUNING_H_
#define TSDIST_CLASSIFY_TUNING_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"
#include "src/resilience/cancellation.h"

namespace tsdist {

/// Terminal state of one (measure, dataset) evaluation cell.
enum class EvalStatus {
  kOk,           ///< accuracies are valid
  kDnf,          ///< budget expired before the cell finished (paper's timeout
                 ///< treatment: the cell is excluded, the sweep continues)
  kFailed,       ///< the measure threw (degenerate kernel, injected fault...)
  kInterrupted,  ///< an external interrupt (SIGINT/SIGTERM) cancelled the cell
};

/// Lower-case wire name of a status ("ok", "dnf", "failed", "interrupted").
const char* ToString(EvalStatus status);

/// Result of evaluating one measure on one dataset.
struct EvalResult {
  std::string measure;   ///< registry name
  ParamMap params;       ///< parameters actually used
  double train_accuracy = 0.0;  ///< leave-one-out accuracy (supervised only)
  double test_accuracy = 0.0;   ///< Algorithm-1 accuracy on the test split
  EvalStatus status = EvalStatus::kOk;
  std::string reason;    ///< human-readable cause when status != kOk
};

/// Execution options shared by the evaluation entry points.
struct EvalOptions {
  /// Use the cascade-pruned 1-NN path instead of full dissimilarity
  /// matrices. Accuracies are exactly identical; runtime drops for elastic
  /// measures (most DTW evaluations are pruned or abandoned). Prune rates
  /// are exported through the tsdist.prune.* counters.
  bool pruned = false;

  /// Cooperative cancellation (budget and/or interrupt). On the full-matrix
  /// path the token is polled inside the engine (per row / per tile); on the
  /// pruned path it is polled between grid candidates, so a budget expiry
  /// cancels at candidate granularity there. A cancelled evaluation returns
  /// status kDnf (deadline) or kInterrupted (manual cancel), never partial
  /// accuracies.
  const CancellationToken* cancel = nullptr;

  /// Non-empty enables durable evaluation state for this cell under the
  /// given directory: per-candidate LOOCV matrices and the test matrix are
  /// tile-checkpointed (w<k>/, test/), and finished candidates' training
  /// accuracies are persisted to candidates.jsonl so a restarted run skips
  /// them entirely. Accuracies after resume are bit-identical to an
  /// uninterrupted run.
  std::string checkpoint_dir;

  /// Rows per checkpoint tile (see ComputeOptions::tile_rows).
  std::size_t tile_rows = 32;
};

/// Evaluates `measure_name` with fixed `params` on `dataset`.
EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry = Registry::Global(),
                         const EvalOptions& options = {});

/// Tunes `measure_name` over `grid` by leave-one-out accuracy on the train
/// split, then evaluates the winner on the test split. The first candidate
/// achieving the best training accuracy wins (deterministic).
EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry = Registry::Global(),
                         const EvalOptions& options = {});

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_TUNING_H_
