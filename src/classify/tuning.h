// Supervised (leave-one-out) parameter tuning and end-to-end evaluation.
//
// Implements the paper's two regimes:
//  * supervised "LOOCCV": every grid candidate is scored by leave-one-out
//    1-NN accuracy on the training split; the best (first on ties, making
//    tuning deterministic) is evaluated on the test split;
//  * unsupervised: a single fixed parameter set is evaluated directly.
//
// Both regimes support two execution paths selected by EvalOptions::pruned:
//  * the full-matrix path computes W / E via PairwiseEngine and scores them
//    with the matrix accuracy functions;
//  * the pruned path skips the matrices entirely and runs the
//    LB_Kim -> LB_Keogh -> early-abandon cascade per query
//    (PairwiseEngine::LeaveOneOutNeighborsPruned / NearestNeighborIndicesPruned),
//    producing bit-identical predictions — and therefore identical
//    accuracies — while skipping most full elastic-measure evaluations.
// See docs/PRUNING.md.

#ifndef TSDIST_CLASSIFY_TUNING_H_
#define TSDIST_CLASSIFY_TUNING_H_

#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/pairwise_engine.h"
#include "src/core/registry.h"

namespace tsdist {

/// Result of evaluating one measure on one dataset.
struct EvalResult {
  std::string measure;   ///< registry name
  ParamMap params;       ///< parameters actually used
  double train_accuracy = 0.0;  ///< leave-one-out accuracy (supervised only)
  double test_accuracy = 0.0;   ///< Algorithm-1 accuracy on the test split
};

/// Execution options shared by the evaluation entry points.
struct EvalOptions {
  /// Use the cascade-pruned 1-NN path instead of full dissimilarity
  /// matrices. Accuracies are exactly identical; runtime drops for elastic
  /// measures (most DTW evaluations are pruned or abandoned). Prune rates
  /// are exported through the tsdist.prune.* counters.
  bool pruned = false;
};

/// Evaluates `measure_name` with fixed `params` on `dataset`.
EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry = Registry::Global(),
                         const EvalOptions& options = {});

/// Tunes `measure_name` over `grid` by leave-one-out accuracy on the train
/// split, then evaluates the winner on the test split. The first candidate
/// achieving the best training accuracy wins (deterministic).
EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry = Registry::Global(),
                         const EvalOptions& options = {});

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_TUNING_H_
