#include "src/classify/svm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>

#include "src/core/pairwise_engine.h"
#include "src/linalg/rng.h"

namespace tsdist {

void BinaryKernelSvm::Train(const Matrix& gram, const std::vector<int>& labels,
                            const SvmOptions& options) {
  const std::size_t n = labels.size();
  assert(gram.rows() == n && gram.cols() == n);
  for (int y : labels) {
    assert(y == 1 || y == -1);
    (void)y;
  }
  labels_ = labels;
  alphas_.assign(n, 0.0);
  bias_ = 0.0;
  if (n == 0) return;

  Rng rng(options.seed);
  auto decision_on_train = [&](std::size_t i) {
    double acc = bias_;
    for (std::size_t t = 0; t < n; ++t) {
      if (alphas_[t] != 0.0) {
        acc += alphas_[t] * labels_[t] * gram(t, i);
      }
    }
    return acc;
  };

  // Simplified SMO: sweep over samples, fix KKT violations with a random
  // partner, stop after `max_passes` clean sweeps.
  int passes = 0;
  int iterations = 0;
  while (passes < options.max_passes && iterations < options.max_iterations) {
    ++iterations;
    int changed = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double error_i = decision_on_train(i) - labels_[i];
      const bool violates =
          (labels_[i] * error_i < -options.tolerance &&
           alphas_[i] < options.c) ||
          (labels_[i] * error_i > options.tolerance && alphas_[i] > 0.0);
      if (!violates) continue;
      // Random partner j != i.
      std::size_t j = rng.UniformInt(n - 1);
      if (j >= i) ++j;
      const double error_j = decision_on_train(j) - labels_[j];

      const double alpha_i_old = alphas_[i];
      const double alpha_j_old = alphas_[j];
      double lo, hi;
      if (labels_[i] != labels_[j]) {
        lo = std::max(0.0, alpha_j_old - alpha_i_old);
        hi = std::min(options.c, options.c + alpha_j_old - alpha_i_old);
      } else {
        lo = std::max(0.0, alpha_i_old + alpha_j_old - options.c);
        hi = std::min(options.c, alpha_i_old + alpha_j_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * gram(i, j) - gram(i, i) - gram(j, j);
      if (eta >= 0.0) continue;

      double alpha_j = alpha_j_old - labels_[j] * (error_i - error_j) / eta;
      alpha_j = std::clamp(alpha_j, lo, hi);
      if (std::fabs(alpha_j - alpha_j_old) < 1e-7) continue;
      const double alpha_i =
          alpha_i_old + labels_[i] * labels_[j] * (alpha_j_old - alpha_j);

      alphas_[i] = alpha_i;
      alphas_[j] = alpha_j;

      const double b1 = bias_ - error_i -
                        labels_[i] * (alpha_i - alpha_i_old) * gram(i, i) -
                        labels_[j] * (alpha_j - alpha_j_old) * gram(i, j);
      const double b2 = bias_ - error_j -
                        labels_[i] * (alpha_i - alpha_i_old) * gram(i, j) -
                        labels_[j] * (alpha_j - alpha_j_old) * gram(j, j);
      if (alpha_i > 0.0 && alpha_i < options.c) {
        bias_ = b1;
      } else if (alpha_j > 0.0 && alpha_j < options.c) {
        bias_ = b2;
      } else {
        bias_ = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }
}

double BinaryKernelSvm::Decision(std::span<const double> kernel_row) const {
  assert(kernel_row.size() == alphas_.size());
  double acc = bias_;
  for (std::size_t t = 0; t < alphas_.size(); ++t) {
    if (alphas_[t] != 0.0) {
      acc += alphas_[t] * labels_[t] * kernel_row[t];
    }
  }
  return acc;
}

void OneVsOneSvm::Train(const Matrix& gram, const std::vector<int>& labels,
                        const SvmOptions& options) {
  machines_.clear();
  std::set<int> classes(labels.begin(), labels.end());
  const std::vector<int> class_list(classes.begin(), classes.end());

  for (std::size_t a = 0; a < class_list.size(); ++a) {
    for (std::size_t b = a + 1; b < class_list.size(); ++b) {
      PairMachine machine;
      machine.class_a = class_list[a];
      machine.class_b = class_list[b];
      std::vector<int> binary_labels;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == machine.class_a) {
          machine.indices.push_back(i);
          binary_labels.push_back(1);
        } else if (labels[i] == machine.class_b) {
          machine.indices.push_back(i);
          binary_labels.push_back(-1);
        }
      }
      const std::size_t sub_n = machine.indices.size();
      Matrix sub_gram(sub_n, sub_n);
      for (std::size_t i = 0; i < sub_n; ++i) {
        for (std::size_t j = 0; j < sub_n; ++j) {
          sub_gram(i, j) = gram(machine.indices[i], machine.indices[j]);
        }
      }
      machine.svm.Train(sub_gram, binary_labels, options);
      machines_.push_back(std::move(machine));
    }
  }
}

int OneVsOneSvm::Predict(std::span<const double> kernel_row) const {
  assert(!machines_.empty());
  std::map<int, int> votes;
  for (const auto& machine : machines_) {
    std::vector<double> sub_row(machine.indices.size());
    for (std::size_t i = 0; i < machine.indices.size(); ++i) {
      sub_row[i] = kernel_row[machine.indices[i]];
    }
    const double decision = machine.svm.Decision(sub_row);
    votes[decision >= 0.0 ? machine.class_a : machine.class_b] += 1;
  }
  int best_class = votes.begin()->first;
  int best_votes = votes.begin()->second;
  for (const auto& [cls, count] : votes) {
    if (count > best_votes) {  // ties keep the smaller class id
      best_votes = count;
      best_class = cls;
    }
  }
  return best_class;
}

double EvaluateSvm(const KernelFunction& kernel, const Dataset& dataset,
                   const SvmOptions& options, std::size_t num_threads) {
  // Normalized-similarity matrices via the KernelDistance adapter
  // (similarity = 1 - distance), reusing its threading and self-similarity
  // caching.
  class Adapter : public KernelFunction {
   public:
    explicit Adapter(const KernelFunction& inner) : inner_(inner) {}
    double LogSimilarity(std::span<const double> a,
                         std::span<const double> b) const override {
      return inner_.LogSimilarity(a, b);
    }
    std::string name() const override { return inner_.name(); }
    ParamMap params() const override { return inner_.params(); }
    CostClass cost_class() const override { return inner_.cost_class(); }

   private:
    const KernelFunction& inner_;
  };
  const KernelDistance distance(std::make_unique<Adapter>(kernel));
  const PairwiseEngine engine(num_threads);

  Matrix train_gram = engine.ComputeSelf(dataset.train(), distance);
  for (std::size_t i = 0; i < train_gram.rows(); ++i) {
    for (std::size_t j = 0; j < train_gram.cols(); ++j) {
      train_gram(i, j) = 1.0 - train_gram(i, j);  // distance -> similarity
    }
  }
  Matrix test_rows = engine.Compute(dataset.test(), dataset.train(), distance);
  for (std::size_t i = 0; i < test_rows.rows(); ++i) {
    for (std::size_t j = 0; j < test_rows.cols(); ++j) {
      test_rows(i, j) = 1.0 - test_rows(i, j);
    }
  }

  OneVsOneSvm svm;
  svm.Train(train_gram, dataset.train_labels(), options);

  const std::vector<int> test_labels = dataset.test_labels();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < dataset.test_size(); ++i) {
    if (svm.Predict(test_rows.row(i)) == test_labels[i]) ++correct;
  }
  return dataset.test_size() == 0
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(dataset.test_size());
}

}  // namespace tsdist
