#include "src/classify/param_grids.h"

#include <cmath>

namespace tsdist {

namespace {

std::vector<ParamMap> Grid1(const std::string& key,
                            const std::vector<double>& values) {
  std::vector<ParamMap> out;
  out.reserve(values.size());
  for (double v : values) out.push_back({{key, v}});
  return out;
}

std::vector<ParamMap> Grid2(const std::string& key1,
                            const std::vector<double>& values1,
                            const std::string& key2,
                            const std::vector<double>& values2) {
  std::vector<ParamMap> out;
  out.reserve(values1.size() * values2.size());
  for (double v1 : values1) {
    for (double v2 : values2) {
      out.push_back({{key1, v1}, {key2, v2}});
    }
  }
  return out;
}

std::vector<double> PowersOfTwo(int lo, int hi) {
  std::vector<double> out;
  for (int e = lo; e <= hi; ++e) out.push_back(std::pow(2.0, e));
  return out;
}

const std::vector<double> kEpsilonGrid = {0.001, 0.003, 0.005, 0.007, 0.009,
                                          0.01,  0.03,  0.05,  0.07,  0.09,
                                          0.1,   0.2,   0.3,   0.4,   0.5,
                                          0.6,   0.7,   0.8,   0.9,   1.0};

}  // namespace

std::vector<ParamMap> ParamGridFor(const std::string& measure_name) {
  if (measure_name == "msm") {
    return Grid1("c", {0.01, 0.1, 1, 10, 100, 0.05, 0.5, 5, 50, 500});
  }
  if (measure_name == "dtw") {
    return Grid1("delta", {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                           12, 13, 14, 15, 16, 17, 18, 19, 20, 100});
  }
  if (measure_name == "edr") {
    return Grid1("epsilon", kEpsilonGrid);
  }
  if (measure_name == "lcss") {
    std::vector<double> eps = {0.001, 0.003, 0.005, 0.007, 0.009, 0.01, 0.03,
                               0.05,  0.07,  0.09,  0.1,   0.2,   0.3,  0.4,
                               0.5,   0.6,   0.7,   0.8,   0.9,   1.0};
    return Grid2("delta", {5, 10}, "epsilon", eps);
  }
  if (measure_name == "twe") {
    return Grid2("lambda", {0, 0.25, 0.5, 0.75, 1.0}, "nu",
                 {0.00001, 0.0001, 0.001, 0.01, 0.1, 1});
  }
  if (measure_name == "swale") {
    // p and r are fixed (p = 5, r = 1); only epsilon is swept.
    std::vector<ParamMap> out;
    for (double e : {0.01, 0.03, 0.05, 0.07, 0.09, 0.1, 0.2, 0.3, 0.4, 0.5,
                     0.6, 0.7, 0.8, 0.9, 1.0}) {
      out.push_back({{"epsilon", e}, {"p", 5.0}, {"r", 1.0}});
    }
    return out;
  }
  if (measure_name == "minkowski") {
    return Grid1("p", {0.1, 0.3, 0.5, 0.7, 0.9, 1, 1.3, 1.5, 1.7, 1.9,
                       2, 3, 5, 7, 9, 11, 13, 15, 17, 20});
  }
  if (measure_name == "kdtw" || measure_name == "rbf") {
    return Grid1("gamma", PowersOfTwo(-15, 0));
  }
  if (measure_name == "gak") {
    return Grid1("gamma", {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1, 2, 3, 4, 5, 6,
                           7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20});
  }
  if (measure_name == "sink" || measure_name == "grail") {
    return Grid1("gamma", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                           16, 17, 18, 19, 20});
  }
  if (measure_name == "rws") {
    return Grid1("gamma", {1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.14, 0.19, 0.28, 0.39,
                           0.56, 0.79, 1.12, 1.58, 2.23, 3.16, 4.46, 6.30,
                           8.91, 10, 31.62, 1e2, 3e2, 1e3});
  }
  if (measure_name == "sidl") {
    return Grid2("lambda", {0.1, 1, 10}, "r", {0.1, 0.25, 0.5});
  }
  return {ParamMap{}};
}

ParamMap UnsupervisedParamsFor(const std::string& measure_name) {
  if (measure_name == "msm") return {{"c", 0.5}};
  if (measure_name == "twe") return {{"lambda", 1.0}, {"nu", 0.0001}};
  if (measure_name == "dtw") return {{"delta", 10.0}};
  if (measure_name == "edr") return {{"epsilon", 0.1}};
  if (measure_name == "swale") return {{"epsilon", 0.2}, {"p", 5.0}, {"r", 1.0}};
  if (measure_name == "lcss") return {{"delta", 5.0}, {"epsilon", 0.2}};
  if (measure_name == "kdtw") return {{"gamma", 0.125}};
  if (measure_name == "gak") return {{"gamma", 0.1}};
  if (measure_name == "sink") return {{"gamma", 5.0}};
  if (measure_name == "rbf") return {{"gamma", 2.0}};
  return {};
}

}  // namespace tsdist
