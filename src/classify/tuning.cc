#include "src/classify/tuning.h"

#include <cassert>

#include "src/classify/one_nn.h"

namespace tsdist {

EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry) {
  const MeasurePtr measure = registry.Create(measure_name, params);
  assert(measure != nullptr && "unknown measure name");
  const Matrix e = engine.Compute(dataset.test(), dataset.train(), *measure);
  EvalResult result;
  result.measure = measure_name;
  result.params = params;
  result.test_accuracy =
      OneNnAccuracy(e, dataset.test_labels(), dataset.train_labels());
  return result;
}

EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry) {
  assert(!grid.empty());
  const std::vector<int> train_labels = dataset.train_labels();

  ParamMap best_params = grid.front();
  double best_train = -1.0;
  for (const ParamMap& candidate : grid) {
    const MeasurePtr measure = registry.Create(measure_name, candidate);
    assert(measure != nullptr && "unknown measure name");
    const Matrix w = engine.ComputeSelf(dataset.train(), *measure);
    const double train_acc = LeaveOneOutAccuracy(w, train_labels);
    if (train_acc > best_train) {
      best_train = train_acc;
      best_params = candidate;
    }
  }

  EvalResult result = EvaluateFixed(measure_name, best_params, dataset, engine,
                                    registry);
  result.train_accuracy = best_train;
  return result;
}

}  // namespace tsdist
