#include "src/classify/tuning.h"

#include <cassert>

#include "src/classify/one_nn.h"
#include "src/obs/obs.h"

namespace tsdist {

EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry, const EvalOptions& options) {
  const obs::TraceSpan span(
      obs::TraceRecorder::Global().enabled()
          ? "classify.evaluate_fixed/" + measure_name
          : std::string());
  obs::ScopedTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram(
                "tsdist.classify.evaluate_ns")
          : nullptr);
  const MeasurePtr measure = registry.Create(measure_name, params);
  assert(measure != nullptr && "unknown measure name");
  EvalResult result;
  result.measure = measure_name;
  result.params = params;
  if (options.pruned) {
    // Per-query cascade search; predictions (and hence the accuracy) are
    // bit-identical to the matrix path below.
    const std::vector<std::size_t> nn = engine.NearestNeighborIndicesPruned(
        dataset.test(), dataset.train(), *measure);
    result.test_accuracy = OneNnAccuracyFromIndices(
        nn, dataset.test_labels(), dataset.train_labels());
  } else {
    const Matrix e = engine.Compute(dataset.test(), dataset.train(), *measure);
    result.test_accuracy =
        OneNnAccuracy(e, dataset.test_labels(), dataset.train_labels());
  }
  return result;
}

EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry, const EvalOptions& options) {
  assert(!grid.empty());
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  const bool obs_on = obs::Enabled();
  const obs::TraceSpan span(
      trace_on ? "classify.evaluate_tuned/" + measure_name : std::string());
  obs::Histogram* candidate_ns = nullptr;
  obs::Counter* candidates = nullptr;
  if (obs_on) {
    auto& metrics = obs::MetricsRegistry::Global();
    candidate_ns = &metrics.GetHistogram("tsdist.tuning.candidate_ns");
    candidates = &metrics.GetCounter("tsdist.tuning.candidates");
  }
  const std::vector<int> train_labels = dataset.train_labels();

  ParamMap best_params = grid.front();
  double best_train = -1.0;
  for (const ParamMap& candidate : grid) {
    // One LOOCV span per grid point: the dominant cost of supervised tuning
    // (|grid| self-distance matrices per dataset on the full-matrix path;
    // the pruned path replaces each matrix with a cascade-pruned 1-NN pass).
    const obs::TraceSpan candidate_span(
        trace_on ? "tuning.loocv/" + measure_name + "{" + ToString(candidate) +
                       "}"
                 : std::string());
    obs::ScopedTimer candidate_timer(candidate_ns, candidates);
    const MeasurePtr measure = registry.Create(measure_name, candidate);
    assert(measure != nullptr && "unknown measure name");
    double train_acc = 0.0;
    if (options.pruned) {
      // LeaveOneOutAccuracy returns 0 for < 2 series; match it rather than
      // tripping the engine's 2-series precondition.
      if (dataset.train().size() >= 2) {
        const std::vector<std::size_t> nn =
            engine.LeaveOneOutNeighborsPruned(dataset.train(), *measure);
        train_acc = LeaveOneOutAccuracyFromIndices(nn, train_labels);
      }
    } else {
      const Matrix w = engine.ComputeSelf(dataset.train(), *measure);
      train_acc = LeaveOneOutAccuracy(w, train_labels);
    }
    if (train_acc > best_train) {
      best_train = train_acc;
      best_params = candidate;
    }
  }

  EvalResult result = EvaluateFixed(measure_name, best_params, dataset, engine,
                                    registry, options);
  result.train_accuracy = best_train;
  return result;
}

}  // namespace tsdist
