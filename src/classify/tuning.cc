#include "src/classify/tuning.h"

#include <cassert>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <system_error>

#include "src/classify/one_nn.h"
#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/heap_profiler.h"
#include "src/obs/profiler.h"
#include "src/resilience/checkpoint.h"

namespace tsdist {

namespace {

// Marks a result cancelled: an expired budget is a DNF (the paper's timeout
// treatment), a manual cancel is an interrupt. Accuracies stay at their
// zero-initialized values — a cancelled cell never reports partial numbers.
void MarkCancelled(EvalResult* result, const CancellationToken* cancel,
                   const std::string& where) {
  result->status = (cancel != nullptr && cancel->cancel_requested())
                       ? EvalStatus::kInterrupted
                       : EvalStatus::kDnf;
  result->reason = std::string(ToString(result->status)) + ": " + where;
}

// One line of the candidates.jsonl cache. %.17g round-trips a double exactly
// through the JSON parser's strtod, so resumed training accuracies (and
// therefore the tie-break winner) are bit-identical.
std::string CandidateLine(const std::string& measure, std::size_t index,
                          const std::string& params, double train_accuracy) {
  char acc[40];
  std::snprintf(acc, sizeof acc, "%.17g", train_accuracy);
  return "{\"schema\": \"tsdist.cand.v1\", \"measure\": \"" + measure +
         "\", \"index\": " + std::to_string(index) + ", \"params\": \"" +
         params + "\", \"train_accuracy\": " + acc + "}";
}

}  // namespace

const char* ToString(EvalStatus status) {
  switch (status) {
    case EvalStatus::kOk:
      return "ok";
    case EvalStatus::kDnf:
      return "dnf";
    case EvalStatus::kFailed:
      return "failed";
    case EvalStatus::kInterrupted:
      return "interrupted";
  }
  return "unknown";
}

EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry, const EvalOptions& options) {
  obs::TraceSpan span(
      obs::TraceRecorder::Global().enabled()
          ? "classify.evaluate_fixed/" + measure_name
          : std::string());
  span.Arg("measure", measure_name);
  span.Arg("dataset", dataset.name());
  span.Arg("params", ToString(params));
  span.Arg("pruned", options.pruned);
  // Nested pairwise regions claim the kernel itself; what stays on this
  // label is evaluation overhead (normalization, label bookkeeping).
  const obs::PerfRegion kernel_region("evaluate/" + measure_name);
  const obs::MemRegion mem_region("evaluate/" + measure_name);
  obs::ScopedTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram(
                "tsdist.classify.evaluate_ns")
          : nullptr);
  const MeasurePtr measure = registry.Create(measure_name, params);
  assert(measure != nullptr && "unknown measure name");
  EvalResult result;
  result.measure = measure_name;
  result.params = params;
  if (options.cancel != nullptr && options.cancel->cancelled()) {
    MarkCancelled(&result, options.cancel, "before test evaluation");
    return result;
  }
  if (options.pruned) {
    // Per-query cascade search; predictions (and hence the accuracy) are
    // bit-identical to the matrix path below.
    const std::vector<std::size_t> nn = engine.NearestNeighborIndicesPruned(
        dataset.test(), dataset.train(), *measure);
    result.test_accuracy = OneNnAccuracyFromIndices(
        nn, dataset.test_labels(), dataset.train_labels());
  } else if (options.cancel == nullptr && options.checkpoint_dir.empty()) {
    // Default options: the original hot path, untouched.
    const Matrix e = engine.Compute(dataset.test(), dataset.train(), *measure);
    result.test_accuracy =
        OneNnAccuracy(e, dataset.test_labels(), dataset.train_labels());
  } else {
    ComputeOptions copts;
    copts.cancel = options.cancel;
    copts.tile_rows = options.tile_rows;
    if (!options.checkpoint_dir.empty()) {
      copts.checkpoint_dir = options.checkpoint_dir + "/test";
    }
    const ComputeResult cr =
        engine.Compute(dataset.test(), dataset.train(), *measure, copts);
    if (!cr.complete) {
      MarkCancelled(&result, options.cancel, "test matrix cancelled");
      return result;
    }
    result.test_accuracy =
        OneNnAccuracy(cr.matrix, dataset.test_labels(), dataset.train_labels());
  }
  return result;
}

EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry, const EvalOptions& options) {
  assert(!grid.empty());
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  const bool obs_on = obs::Enabled();
  obs::TraceSpan span(
      trace_on ? "classify.evaluate_tuned/" + measure_name : std::string());
  if (trace_on) {
    span.Arg("measure", measure_name);
    span.Arg("dataset", dataset.name());
    span.Arg("grid", static_cast<std::uint64_t>(grid.size()));
    span.Arg("pruned", options.pruned);
  }
  obs::Histogram* candidate_ns = nullptr;
  obs::Counter* candidates = nullptr;
  if (obs_on) {
    auto& metrics = obs::MetricsRegistry::Global();
    candidate_ns = &metrics.GetHistogram("tsdist.tuning.candidate_ns");
    candidates = &metrics.GetCounter("tsdist.tuning.candidates");
  }
  const std::vector<int> train_labels = dataset.train_labels();

  // Resume: pull finished candidates' training accuracies from the cell's
  // candidates.jsonl. A cache line is honored only when its measure, index,
  // and rendered params all match the current grid — a changed grid silently
  // invalidates stale lines instead of mixing runs.
  std::vector<std::optional<double>> cached(grid.size());
  std::string candidate_log;
  if (!options.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.checkpoint_dir, ec);
    candidate_log = options.checkpoint_dir + "/candidates.jsonl";
    std::uint64_t resumed = 0;
    for (const std::string& line : LoadJsonLog(candidate_log)) {
      try {
        const obs::JsonValue v = obs::ParseJson(line);
        const double raw_index = v.GetDouble("index", -1.0);
        if (raw_index < 0 ||
            raw_index >= static_cast<double>(grid.size())) {
          continue;
        }
        const auto index = static_cast<std::size_t>(raw_index);
        if (v.GetString("measure", "") == measure_name &&
            v.GetString("params", "") == ToString(grid[index])) {
          cached[index] = v.GetDouble("train_accuracy", 0.0);
          ++resumed;
        }
      } catch (const std::exception&) {
        // LoadJsonLog already truncated torn tails; a line that parses but
        // carries the wrong shape is simply not a cache hit.
      }
    }
    if (resumed > 0 && obs_on) {
      obs::MetricsRegistry::Global()
          .GetCounter("tsdist.ckpt.candidates_resumed")
          .Add(resumed);
    }
    if (resumed > 0) {
      TSDIST_LOG(obs::LogLevel::kInfo, "tuning candidates resumed",
                 obs::F("measure", measure_name), obs::F("resumed", resumed),
                 obs::F("grid",
                        static_cast<std::uint64_t>(grid.size())));
    }
  }

  ParamMap best_params = grid.front();
  double best_train = -1.0;
  for (std::size_t k = 0; k < grid.size(); ++k) {
    const ParamMap& candidate = grid[k];
    double train_acc = 0.0;
    if (cached[k].has_value()) {
      train_acc = *cached[k];
    } else {
      if (options.cancel != nullptr && options.cancel->cancelled()) {
        EvalResult result;
        result.measure = measure_name;
        result.params = best_params;
        MarkCancelled(&result, options.cancel,
                      "tuning cancelled at candidate " + std::to_string(k) +
                          "/" + std::to_string(grid.size()));
        return result;
      }
      // One LOOCV span per grid point: the dominant cost of supervised tuning
      // (|grid| self-distance matrices per dataset on the full-matrix path;
      // the pruned path replaces each matrix with a cascade-pruned 1-NN pass).
      obs::TraceSpan candidate_span(
          trace_on ? "tuning.loocv/" + measure_name + "{" +
                         ToString(candidate) + "}"
                   : std::string());
      if (trace_on) {
        candidate_span.Arg("measure", measure_name);
        candidate_span.Arg("params", ToString(candidate));
        candidate_span.Arg("candidate", static_cast<std::uint64_t>(k));
      }
      const obs::PerfRegion kernel_region("tuning/" + measure_name);
      const obs::MemRegion mem_region("tuning/" + measure_name);
      obs::ScopedTimer candidate_timer(candidate_ns, candidates);
      const MeasurePtr measure = registry.Create(measure_name, candidate);
      assert(measure != nullptr && "unknown measure name");
      if (options.pruned) {
        // LeaveOneOutAccuracy returns 0 for < 2 series; match it rather than
        // tripping the engine's 2-series precondition.
        if (dataset.train().size() >= 2) {
          const std::vector<std::size_t> nn =
              engine.LeaveOneOutNeighborsPruned(dataset.train(), *measure);
          train_acc = LeaveOneOutAccuracyFromIndices(nn, train_labels);
        }
      } else if (options.cancel == nullptr && options.checkpoint_dir.empty()) {
        // Default options: the original hot path, untouched.
        const Matrix w = engine.ComputeSelf(dataset.train(), *measure);
        train_acc = LeaveOneOutAccuracy(w, train_labels);
      } else {
        ComputeOptions copts;
        copts.cancel = options.cancel;
        copts.tile_rows = options.tile_rows;
        if (!options.checkpoint_dir.empty()) {
          copts.checkpoint_dir =
              options.checkpoint_dir + "/w" + std::to_string(k);
        }
        const ComputeResult cr =
            engine.ComputeSelf(dataset.train(), *measure, copts);
        if (!cr.complete) {
          EvalResult result;
          result.measure = measure_name;
          result.params = best_params;
          MarkCancelled(&result, options.cancel,
                        "LOOCV matrix cancelled at candidate " +
                            std::to_string(k) + "/" +
                            std::to_string(grid.size()));
          return result;
        }
        train_acc = LeaveOneOutAccuracy(cr.matrix, train_labels);
      }
      if (!candidate_log.empty()) {
        // Best-effort: a failed append degrades to recomputing the candidate
        // on the next run, never to a wrong result.
        AppendJsonLogLine(candidate_log,
                          CandidateLine(measure_name, k, ToString(candidate),
                                        train_acc));
      }
    }
    if (train_acc > best_train) {
      best_train = train_acc;
      best_params = candidate;
    }
  }

  EvalResult result = EvaluateFixed(measure_name, best_params, dataset, engine,
                                    registry, options);
  result.train_accuracy = best_train;
  return result;
}

}  // namespace tsdist
