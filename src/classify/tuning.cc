#include "src/classify/tuning.h"

#include <cassert>

#include "src/classify/one_nn.h"
#include "src/obs/obs.h"

namespace tsdist {

EvalResult EvaluateFixed(const std::string& measure_name, const ParamMap& params,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry) {
  const obs::TraceSpan span(
      obs::TraceRecorder::Global().enabled()
          ? "classify.evaluate_fixed/" + measure_name
          : std::string());
  obs::ScopedTimer timer(
      obs::Enabled()
          ? &obs::MetricsRegistry::Global().GetHistogram(
                "tsdist.classify.evaluate_ns")
          : nullptr);
  const MeasurePtr measure = registry.Create(measure_name, params);
  assert(measure != nullptr && "unknown measure name");
  const Matrix e = engine.Compute(dataset.test(), dataset.train(), *measure);
  EvalResult result;
  result.measure = measure_name;
  result.params = params;
  result.test_accuracy =
      OneNnAccuracy(e, dataset.test_labels(), dataset.train_labels());
  return result;
}

EvalResult EvaluateTuned(const std::string& measure_name,
                         const std::vector<ParamMap>& grid,
                         const Dataset& dataset, const PairwiseEngine& engine,
                         const Registry& registry) {
  assert(!grid.empty());
  const bool trace_on = obs::TraceRecorder::Global().enabled();
  const bool obs_on = obs::Enabled();
  const obs::TraceSpan span(
      trace_on ? "classify.evaluate_tuned/" + measure_name : std::string());
  obs::Histogram* candidate_ns = nullptr;
  obs::Counter* candidates = nullptr;
  if (obs_on) {
    auto& metrics = obs::MetricsRegistry::Global();
    candidate_ns = &metrics.GetHistogram("tsdist.tuning.candidate_ns");
    candidates = &metrics.GetCounter("tsdist.tuning.candidates");
  }
  const std::vector<int> train_labels = dataset.train_labels();

  ParamMap best_params = grid.front();
  double best_train = -1.0;
  for (const ParamMap& candidate : grid) {
    // One LOOCV span per grid point: the dominant cost of supervised tuning
    // (|grid| self-distance matrices per dataset).
    const obs::TraceSpan candidate_span(
        trace_on ? "tuning.loocv/" + measure_name + "{" + ToString(candidate) +
                       "}"
                 : std::string());
    obs::ScopedTimer candidate_timer(candidate_ns, candidates);
    const MeasurePtr measure = registry.Create(measure_name, candidate);
    assert(measure != nullptr && "unknown measure name");
    const Matrix w = engine.ComputeSelf(dataset.train(), *measure);
    const double train_acc = LeaveOneOutAccuracy(w, train_labels);
    if (train_acc > best_train) {
      best_train = train_acc;
      best_params = candidate;
    }
  }

  EvalResult result = EvaluateFixed(measure_name, best_params, dataset, engine,
                                    registry);
  result.train_accuracy = best_train;
  return result;
}

}  // namespace tsdist
