#include "src/classify/one_nn.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "src/obs/obs.h"

namespace tsdist {

namespace {

// Timer + query counter for one classification entry point.
obs::ScopedTimer ClassifyTimer(const char* histogram_name,
                               const char* counter_name, std::size_t queries) {
  if (!obs::Enabled()) return obs::ScopedTimer(nullptr);
  auto& metrics = obs::MetricsRegistry::Global();
  return obs::ScopedTimer(&metrics.GetHistogram(histogram_name),
                          &metrics.GetCounter(counter_name), queries);
}

// Flushes a NaN-distance tally to tsdist.classify.nan_distances (see the
// NaN policy in the header). No-op when nothing was seen or obs is off.
void ReportNanDistances(std::uint64_t nan_count) {
  if (nan_count == 0 || !obs::Enabled()) return;
  obs::MetricsRegistry::Global()
      .GetCounter("tsdist.classify.nan_distances")
      .Add(nan_count);
}

}  // namespace

double OneNnAccuracy(const Matrix& e, const std::vector<int>& test_labels,
                     const std::vector<int>& train_labels) {
  const std::size_t r = e.rows();
  const std::size_t p = e.cols();
  assert(test_labels.size() == r);
  assert(train_labels.size() == p);
  if (r == 0 || p == 0) return 0.0;
  const obs::ScopedTimer timer = ClassifyTimer(
      "tsdist.classify.one_nn_ns", "tsdist.classify.one_nn_queries", r);

  std::size_t correct = 0;
  std::uint64_t nan_distances = 0;
  for (std::size_t i = 0; i < r; ++i) {
    double best_dist = std::numeric_limits<double>::infinity();
    int best_label = -1;
    const auto row = e.row(i);
    for (std::size_t j = 0; j < p; ++j) {
      if (std::isnan(row[j])) {
        ++nan_distances;  // loses every comparison below; never selected
        continue;
      }
      if (row[j] < best_dist) {
        best_dist = row[j];
        best_label = train_labels[j];
      }
    }
    if (best_label == test_labels[i]) ++correct;
  }
  ReportNanDistances(nan_distances);
  return static_cast<double>(correct) / static_cast<double>(r);
}

double LeaveOneOutAccuracy(const Matrix& w, const std::vector<int>& labels) {
  const std::size_t p = w.rows();
  assert(w.cols() == p);
  assert(labels.size() == p);
  if (p < 2) return 0.0;
  const obs::ScopedTimer timer = ClassifyTimer(
      "tsdist.classify.loocv_ns", "tsdist.classify.loocv_queries", p);

  std::size_t correct = 0;
  std::uint64_t nan_distances = 0;
  for (std::size_t i = 0; i < p; ++i) {
    double best_dist = std::numeric_limits<double>::infinity();
    int best_label = -1;
    const auto row = w.row(i);
    for (std::size_t j = 0; j < p; ++j) {
      if (j == i) continue;  // leave the query itself out
      if (std::isnan(row[j])) {
        ++nan_distances;
        continue;
      }
      if (row[j] < best_dist) {
        best_dist = row[j];
        best_label = labels[j];
      }
    }
    if (best_label == labels[i]) ++correct;
  }
  ReportNanDistances(nan_distances);
  return static_cast<double>(correct) / static_cast<double>(p);
}

double OneNnAccuracyFromIndices(const std::vector<std::size_t>& nn_indices,
                                const std::vector<int>& test_labels,
                                const std::vector<int>& train_labels) {
  assert(nn_indices.size() == test_labels.size());
  if (nn_indices.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < nn_indices.size(); ++i) {
    const std::size_t j = nn_indices[i];
    // Out-of-range covers the kNoNeighbor all-NaN sentinel: a miss, exactly
    // like the matrix path's best_label = -1.
    if (j < train_labels.size() && train_labels[j] == test_labels[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(nn_indices.size());
}

double LeaveOneOutAccuracyFromIndices(
    const std::vector<std::size_t>& nn_indices,
    const std::vector<int>& labels) {
  assert(nn_indices.size() == labels.size());
  if (nn_indices.size() < 2) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < nn_indices.size(); ++i) {
    const std::size_t j = nn_indices[i];
    // j != i guards against a caller passing self-matches; the pruned
    // search never produces them.
    if (j < labels.size() && j != i && labels[j] == labels[i]) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(nn_indices.size());
}

std::vector<std::size_t> NearestNeighborIndices(const Matrix& e) {
  std::vector<std::size_t> out(e.rows(), 0);
  for (std::size_t i = 0; i < e.rows(); ++i) {
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < e.cols(); ++j) {
      if (e(i, j) < best_dist) {
        best_dist = e(i, j);
        out[i] = j;
      }
    }
  }
  return out;
}

}  // namespace tsdist
