// Parameter grids of Table 4 of the paper.
//
// Each grid is the list of candidate ParamMaps evaluated by supervised
// (leave-one-out) tuning. Grids are declarative data so that experiment
// definitions read like the paper's table.

#ifndef TSDIST_CLASSIFY_PARAM_GRIDS_H_
#define TSDIST_CLASSIFY_PARAM_GRIDS_H_

#include <string>
#include <vector>

#include "src/core/distance_measure.h"

namespace tsdist {

/// The Table 4 grid for `measure_name` ("msm", "dtw", "edr", "lcss", "twe",
/// "swale", "minkowski", "kdtw", "gak", "sink", "rbf", "grail", "rws",
/// "sidl"). Returns a single empty ParamMap for parameter-free measures and
/// unknown names.
std::vector<ParamMap> ParamGridFor(const std::string& measure_name);

/// The paper's unsupervised ("fixed") parameter choice for `measure_name`,
/// from Tables 5 and 6 (e.g. msm: c = 0.5; dtw: delta = 10; kdtw:
/// gamma = 0.125). Empty for parameter-free measures.
ParamMap UnsupervisedParamsFor(const std::string& measure_name);

}  // namespace tsdist

#endif  // TSDIST_CLASSIFY_PARAM_GRIDS_H_
