#include "src/normalization/normalization.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

namespace {

constexpr double kEps = 1e-12;

struct Stats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Stats ComputeStats(std::span<const double> values) {
  Stats s;
  if (values.empty()) return s;
  s.min = s.max = values[0];
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

}  // namespace

TimeSeries Normalizer::Apply(const TimeSeries& series) const {
  return TimeSeries(Apply(series.values()), series.label());
}

Dataset Normalizer::Apply(const Dataset& dataset) const {
  std::vector<TimeSeries> train;
  train.reserve(dataset.train_size());
  for (const auto& s : dataset.train()) train.push_back(Apply(s));
  std::vector<TimeSeries> test;
  test.reserve(dataset.test_size());
  for (const auto& s : dataset.test()) test.push_back(Apply(s));
  return Dataset(dataset.name(), std::move(train), std::move(test));
}

std::vector<double> ZScoreNormalizer::Apply(std::span<const double> values) const {
  const Stats s = ComputeStats(values);
  double var = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    var += d * d;
  }
  const double stddev =
      values.empty() ? 0.0 : std::sqrt(var / static_cast<double>(values.size()));
  std::vector<double> out(values.size());
  if (stddev < kEps) {
    // Constant series: define the output as all-zeros (centred).
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - s.mean) / stddev;
  }
  return out;
}

MinMaxNormalizer::MinMaxNormalizer(double lo, double hi) : lo_(lo), hi_(hi) {
  assert(hi_ > lo_);
}

std::vector<double> MinMaxNormalizer::Apply(std::span<const double> values) const {
  const Stats s = ComputeStats(values);
  const double range = s.max - s.min;
  std::vector<double> out(values.size());
  if (range < kEps) {
    std::fill(out.begin(), out.end(), lo_);
    return out;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = lo_ + (values[i] - s.min) * (hi_ - lo_) / range;
  }
  return out;
}

std::vector<double> MeanNormalizer::Apply(std::span<const double> values) const {
  const Stats s = ComputeStats(values);
  const double range = s.max - s.min;
  std::vector<double> out(values.size());
  if (range < kEps) {
    std::fill(out.begin(), out.end(), 0.0);
    return out;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - s.mean) / range;
  }
  return out;
}

std::vector<double> MedianNormalizer::Apply(std::span<const double> values) const {
  std::vector<double> out(values.begin(), values.end());
  if (values.empty()) return out;
  std::vector<double> tmp = out;
  std::nth_element(tmp.begin(), tmp.begin() + tmp.size() / 2, tmp.end());
  double median = tmp[tmp.size() / 2];
  if (tmp.size() % 2 == 0) {
    const double hi = median;
    std::nth_element(tmp.begin(), tmp.begin() + tmp.size() / 2 - 1, tmp.end());
    median = 0.5 * (tmp[tmp.size() / 2 - 1] + hi);
  }
  if (std::fabs(median) < kEps) {
    median = median < 0.0 ? -kEps : kEps;
  }
  for (double& v : out) v /= median;
  return out;
}

std::vector<double> UnitLengthNormalizer::Apply(std::span<const double> values) const {
  double norm = 0.0;
  for (double v : values) norm += v * v;
  norm = std::sqrt(norm);
  std::vector<double> out(values.begin(), values.end());
  if (norm < kEps) return out;
  for (double& v : out) v /= norm;
  return out;
}

std::vector<double> LogisticNormalizer::Apply(std::span<const double> values) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-values[i]));
  }
  return out;
}

std::vector<double> TanhNormalizer::Apply(std::span<const double> values) const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = std::tanh(values[i]);
  }
  return out;
}

std::vector<double> IdentityNormalizer::Apply(std::span<const double> values) const {
  return {values.begin(), values.end()};
}

AdaptiveScalingMeasure::AdaptiveScalingMeasure(MeasurePtr base)
    : base_(std::move(base)) {
  assert(base_ != nullptr);
}

double AdaptiveScalingMeasure::Distance(std::span<const double> a,
                                        std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot_ab = 0.0, dot_bb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot_ab += a[i] * b[i];
    dot_bb += b[i] * b[i];
  }
  const double alpha = dot_bb < kEps ? 1.0 : dot_ab / dot_bb;
  std::vector<double> scaled(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) scaled[i] = alpha * b[i];
  return base_->Distance(a, scaled);
}

NormalizerPtr MakeNormalizer(const std::string& name) {
  if (name == "zscore") return std::make_unique<ZScoreNormalizer>();
  if (name == "minmax") return std::make_unique<MinMaxNormalizer>();
  if (name == "meannorm") return std::make_unique<MeanNormalizer>();
  if (name == "mediannorm") return std::make_unique<MedianNormalizer>();
  if (name == "unitlength") return std::make_unique<UnitLengthNormalizer>();
  if (name == "logistic") return std::make_unique<LogisticNormalizer>();
  if (name == "tanh") return std::make_unique<TanhNormalizer>();
  if (name == "none") return std::make_unique<IdentityNormalizer>();
  return nullptr;
}

const std::vector<std::string>& PerSeriesNormalizerNames() {
  static const std::vector<std::string> kNames = {
      "zscore",     "minmax",     "meannorm", "mediannorm",
      "unitlength", "logistic",   "tanh",
  };
  return kNames;
}

}  // namespace tsdist
