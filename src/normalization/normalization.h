// The 8 time-series normalization methods of Section 4 of the paper.
//
// Seven of them are per-series transforms (z-score, MinMax, MeanNorm,
// MedianNorm, UnitLength, Logistic, Tanh); AdaptiveScaling is fundamentally
// pairwise — it rescales one series optimally against the other inside each
// comparison — and is therefore exposed as a measure wrapper rather than a
// per-series transform.

#ifndef TSDIST_NORMALIZATION_NORMALIZATION_H_
#define TSDIST_NORMALIZATION_NORMALIZATION_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/core/dataset.h"
#include "src/core/distance_measure.h"
#include "src/core/time_series.h"

namespace tsdist {

/// Per-series normalization transform.
class Normalizer {
 public:
  virtual ~Normalizer() = default;

  /// Transformed copy of the input values.
  virtual std::vector<double> Apply(std::span<const double> values) const = 0;

  /// Registry name ("zscore", "minmax", ...).
  virtual std::string name() const = 0;

  /// Applies the transform to a series, keeping its label.
  TimeSeries Apply(const TimeSeries& series) const;

  /// Applies the transform to every series of both splits.
  Dataset Apply(const Dataset& dataset) const;
};

using NormalizerPtr = std::unique_ptr<Normalizer>;

/// Z-score: (x - mean) / std. Constant series map to all-zeros.
class ZScoreNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "zscore"; }
};

/// MinMax: (x - min) / (max - min), scaled into [lo, hi] (default [0, 1]).
/// The paper notes many measures cannot deal with zeros, hence the optional
/// range shift (eq. 3).
class MinMaxNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  explicit MinMaxNormalizer(double lo = 0.0, double hi = 1.0);
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "minmax"; }

 private:
  double lo_;
  double hi_;
};

/// MeanNorm: (x - mean) / (max - min) — z-score numerator with MinMax
/// denominator (eq. 4). The method the paper finds to "perform the best" for
/// several measures.
class MeanNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "meannorm"; }
};

/// MedianNorm: x / median(x) (eq. 5). Numerically delicate when the median
/// is near zero; the divisor is clamped.
class MedianNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "mediannorm"; }
};

/// UnitLength: x / ||x||_2 (eq. 6).
class UnitLengthNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "unitlength"; }
};

/// Logistic (sigmoid) activation: 1 / (1 + e^-x) (eq. 8).
class LogisticNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "logistic"; }
};

/// Hyperbolic-tangent activation: tanh(x) (eq. 9).
class TanhNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "tanh"; }
};

/// Identity transform, for uniform experiment plumbing.
class IdentityNormalizer : public Normalizer {
 public:
  using Normalizer::Apply;
  std::vector<double> Apply(std::span<const double> values) const override;
  std::string name() const override { return "none"; }
};

/// AdaptiveScaling as a pairwise measure wrapper (eq. 7): before delegating
/// to the base measure, the second series is rescaled by the factor
/// alpha* = <a,b>/<b,b> minimizing ||a - alpha*b||.
class AdaptiveScalingMeasure : public DistanceMeasure {
 public:
  explicit AdaptiveScalingMeasure(MeasurePtr base);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "adaptive+" + base_->name(); }
  MeasureCategory category() const override { return base_->category(); }
  CostClass cost_class() const override { return base_->cost_class(); }
  ParamMap params() const override { return base_->params(); }

 private:
  MeasurePtr base_;
};

/// Constructs a per-series normalizer by name: "zscore", "minmax",
/// "meannorm", "mediannorm", "unitlength", "logistic", "tanh", "none".
/// Returns nullptr for unknown names ("adaptive" is pairwise; see
/// AdaptiveScalingMeasure).
NormalizerPtr MakeNormalizer(const std::string& name);

/// The seven per-series normalization method names, in paper order.
const std::vector<std::string>& PerSeriesNormalizerNames();

}  // namespace tsdist

#endif  // TSDIST_NORMALIZATION_NORMALIZATION_H_
