#include "src/index/paa.h"

#include <cassert>
#include <cmath>

namespace tsdist {

std::vector<std::size_t> PaaSegmentWidths(std::size_t length,
                                          std::size_t segments) {
  assert(segments >= 1 && segments <= length);
  std::vector<std::size_t> widths(segments, length / segments);
  // Distribute the remainder over the leading segments so widths differ by
  // at most one.
  const std::size_t remainder = length % segments;
  for (std::size_t i = 0; i < remainder; ++i) ++widths[i];
  return widths;
}

std::vector<double> PaaTransform(std::span<const double> values,
                                 std::size_t segments) {
  const std::vector<std::size_t> widths =
      PaaSegmentWidths(values.size(), segments);
  std::vector<double> out(segments, 0.0);
  std::size_t pos = 0;
  for (std::size_t j = 0; j < segments; ++j) {
    double acc = 0.0;
    for (std::size_t t = 0; t < widths[j]; ++t) acc += values[pos + t];
    out[j] = acc / static_cast<double>(widths[j]);
    pos += widths[j];
  }
  return out;
}

double PaaLowerBound(std::span<const double> paa_a,
                     std::span<const double> paa_b,
                     std::size_t series_length) {
  assert(paa_a.size() == paa_b.size());
  const std::vector<std::size_t> widths =
      PaaSegmentWidths(series_length, paa_a.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < paa_a.size(); ++j) {
    const double d = paa_a[j] - paa_b[j];
    acc += static_cast<double>(widths[j]) * d * d;
  }
  return std::sqrt(acc);
}

}  // namespace tsdist
