// SAX-based exact k-NN index for Euclidean distance.
//
// The concrete form of the M2 argument ("ED ... widely supported by
// indexing mechanisms"): series are bucketed by SAX word; a query visits
// buckets in increasing SAX-MINDIST order and prunes, within each bucket,
// by the PAA lower bound and an early-abandoning ED — all exact because
// both bounds never overestimate ED. Counters expose how much work pruning
// saves (reported by the indexing ablation bench).

#ifndef TSDIST_INDEX_SAX_INDEX_H_
#define TSDIST_INDEX_SAX_INDEX_H_

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "src/core/time_series.h"

namespace tsdist {

/// Exact ED k-NN index over equal-length, z-normalized series.
class SaxIndex {
 public:
  /// `word_length` PAA segments, `alphabet_size` SAX symbols (2..64).
  SaxIndex(std::size_t word_length, std::size_t alphabet_size);

  /// Indexes the collection (copies the series).
  void Build(const std::vector<TimeSeries>& series);

  /// One k-NN answer entry.
  struct Neighbor {
    std::size_t index = 0;  ///< position in the Build() collection
    double distance = 0.0;  ///< exact ED
  };

  /// Search statistics for the last query.
  struct Stats {
    std::size_t candidates = 0;       ///< series in the collection
    std::size_t bucket_pruned = 0;    ///< skipped via SAX MINDIST
    std::size_t paa_pruned = 0;       ///< skipped via PAA lower bound
    std::size_t full_distances = 0;   ///< exact ED computations
  };

  /// Exact k nearest neighbours of `query` under ED (ties by index).
  std::vector<Neighbor> Knn(std::span<const double> query, std::size_t k,
                            Stats* stats = nullptr) const;

  std::size_t size() const { return series_.size(); }

 private:
  struct Bucket {
    std::vector<std::uint8_t> word;
    std::vector<std::size_t> members;
  };

  std::size_t word_length_;
  std::size_t alphabet_size_;
  std::size_t series_length_ = 0;
  std::vector<TimeSeries> series_;
  std::vector<std::vector<double>> paa_;  ///< per-series PAA
  std::vector<Bucket> buckets_;
};

}  // namespace tsdist

#endif  // TSDIST_INDEX_SAX_INDEX_H_
