// Symbolic Aggregate approXimation (SAX) and the MINDIST lower bound.
//
// SAX quantizes PAA segments into symbols via equiprobable breakpoints of
// the standard normal distribution (valid because series are z-normalized),
// giving the discrete words that iSAX-style indexes (paper refs [25, 135])
// organize. MINDIST between two SAX words lower-bounds the ED between the
// original series, so symbol-level pruning is exact.

#ifndef TSDIST_INDEX_SAX_H_
#define TSDIST_INDEX_SAX_H_

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// Equiprobable N(0,1) breakpoints for an alphabet of the given size
/// (size - 1 values, increasing). Supported sizes: 2..64.
std::vector<double> SaxBreakpoints(std::size_t alphabet_size);

/// SAX word of a series: PAA into `word_length` segments, then quantize
/// each mean into [0, alphabet_size) using the breakpoints.
std::vector<std::uint8_t> SaxWord(std::span<const double> values,
                                  std::size_t word_length,
                                  std::size_t alphabet_size);

/// MINDIST lower bound of ED between the series behind two SAX words
/// (Lin et al.): sqrt(n/w * sum_j cell_dist(a_j, b_j)^2), where cell_dist
/// is the breakpoint gap between non-adjacent symbols.
double SaxMinDist(std::span<const std::uint8_t> word_a,
                  std::span<const std::uint8_t> word_b,
                  std::size_t series_length, std::size_t alphabet_size);

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.2e-9). Exposed for tests.
double InverseNormalCdf(double p);

}  // namespace tsdist

#endif  // TSDIST_INDEX_SAX_H_
