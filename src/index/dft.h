// Truncated-DFT features and the Parseval lower bound (Agrawal, Faloutsos
// & Swami, FODO'93 — ref [2], the paper that made ED the default).
//
// With orthonormal DFT coefficients (1/sqrt(n) scaling), Parseval's theorem
// makes ED in coefficient space equal ED in time space; keeping only the
// first few coefficients therefore *lower-bounds* ED — the "F-index"
// contract behind the original similarity-search architecture and the
// reason M2 credits ED's popularity to its Fourier connection.

#ifndef TSDIST_INDEX_DFT_H_
#define TSDIST_INDEX_DFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// First `num_coefficients` orthonormal DFT coefficients of a real series
/// (X_k = (1/sqrt(n)) sum_t x_t e^{-2 pi i k t / n}, k = 0..c-1). Requires
/// num_coefficients <= n.
std::vector<std::complex<double>> DftFeatures(std::span<const double> values,
                                              std::size_t num_coefficients);

/// Lower bound of ED between the series behind two feature vectors of the
/// same length, exploiting conjugate symmetry of real-series spectra: every
/// non-DC, non-Nyquist coefficient difference counts twice. `series_length`
/// is the original n. Equals ED exactly when the features cover the whole
/// (folded) spectrum.
double DftLowerBound(std::span<const std::complex<double>> features_a,
                     std::span<const std::complex<double>> features_b,
                     std::size_t series_length);

}  // namespace tsdist

#endif  // TSDIST_INDEX_DFT_H_
