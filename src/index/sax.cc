#include "src/index/sax.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/index/paa.h"

namespace tsdist {

double InverseNormalCdf(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

std::vector<double> SaxBreakpoints(std::size_t alphabet_size) {
  assert(alphabet_size >= 2 && alphabet_size <= 64);
  std::vector<double> breakpoints(alphabet_size - 1);
  for (std::size_t i = 1; i < alphabet_size; ++i) {
    breakpoints[i - 1] = InverseNormalCdf(static_cast<double>(i) /
                                          static_cast<double>(alphabet_size));
  }
  return breakpoints;
}

std::vector<std::uint8_t> SaxWord(std::span<const double> values,
                                  std::size_t word_length,
                                  std::size_t alphabet_size) {
  const std::vector<double> paa = PaaTransform(values, word_length);
  const std::vector<double> breakpoints = SaxBreakpoints(alphabet_size);
  std::vector<std::uint8_t> word(word_length);
  for (std::size_t j = 0; j < word_length; ++j) {
    const auto it =
        std::upper_bound(breakpoints.begin(), breakpoints.end(), paa[j]);
    word[j] =
        static_cast<std::uint8_t>(std::distance(breakpoints.begin(), it));
  }
  return word;
}

double SaxMinDist(std::span<const std::uint8_t> word_a,
                  std::span<const std::uint8_t> word_b,
                  std::size_t series_length, std::size_t alphabet_size) {
  assert(word_a.size() == word_b.size());
  const std::vector<double> breakpoints = SaxBreakpoints(alphabet_size);
  const double scale = static_cast<double>(series_length) /
                       static_cast<double>(word_a.size());
  double acc = 0.0;
  for (std::size_t j = 0; j < word_a.size(); ++j) {
    const std::size_t lo = std::min(word_a[j], word_b[j]);
    const std::size_t hi = std::max(word_a[j], word_b[j]);
    if (hi - lo <= 1) continue;  // adjacent or equal symbols: distance 0
    const double gap = breakpoints[hi - 1] - breakpoints[lo];
    acc += gap * gap;
  }
  return std::sqrt(scale * acc);
}

}  // namespace tsdist
