#include "src/index/dft.h"

#include <cassert>
#include <cmath>

#include "src/linalg/fft.h"

namespace tsdist {

std::vector<std::complex<double>> DftFeatures(std::span<const double> values,
                                              std::size_t num_coefficients) {
  const std::size_t n = values.size();
  assert(num_coefficients >= 1 && num_coefficients <= n);
  std::vector<std::complex<double>> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = {values[i], 0.0};
  const std::vector<std::complex<double>> spectrum =
      FftAnySize(input, /*inverse=*/false);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<std::complex<double>> out(num_coefficients);
  for (std::size_t k = 0; k < num_coefficients; ++k) {
    out[k] = spectrum[k] * scale;
  }
  return out;
}

double DftLowerBound(std::span<const std::complex<double>> features_a,
                     std::span<const std::complex<double>> features_b,
                     std::size_t series_length) {
  assert(features_a.size() == features_b.size());
  assert(features_a.size() <= series_length);
  double acc = 0.0;
  for (std::size_t k = 0; k < features_a.size(); ++k) {
    const std::complex<double> d = features_a[k] - features_b[k];
    double weight = 2.0;
    // DC has no conjugate twin; neither does Nyquist for even n.
    if (k == 0) weight = 1.0;
    if (2 * k == series_length) weight = 1.0;
    // Coefficients past the fold would double-count; the caller is expected
    // to pass the folded half only, but clamp defensively.
    if (2 * k > series_length) weight = 0.0;
    acc += weight * std::norm(d);
  }
  return std::sqrt(acc);
}

}  // namespace tsdist
