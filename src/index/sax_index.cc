#include "src/index/sax_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "src/index/paa.h"
#include "src/index/sax.h"

namespace tsdist {

namespace {

// Early-abandoning ED: stops accumulating once the partial sum exceeds
// `best_sq` (squared best-so-far).
double EarlyAbandonEdSquared(std::span<const double> a,
                             std::span<const double> b, double best_sq) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
    if (acc > best_sq) return acc;
  }
  return acc;
}

}  // namespace

SaxIndex::SaxIndex(std::size_t word_length, std::size_t alphabet_size)
    : word_length_(word_length), alphabet_size_(alphabet_size) {
  assert(word_length_ >= 1);
  assert(alphabet_size_ >= 2 && alphabet_size_ <= 64);
}

void SaxIndex::Build(const std::vector<TimeSeries>& series) {
  assert(!series.empty());
  series_ = series;
  series_length_ = series_.front().size();
  paa_.clear();
  paa_.reserve(series_.size());
  // Keyed by the word rendered as a string (chars are the symbol ids).
  std::map<std::string, std::size_t> bucket_of;
  buckets_.clear();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    assert(series_[i].size() == series_length_);
    paa_.push_back(PaaTransform(series_[i].values(), word_length_));
    std::vector<std::uint8_t> word =
        SaxWord(series_[i].values(), word_length_, alphabet_size_);
    const std::string key(word.begin(), word.end());
    const auto it = bucket_of.find(key);
    if (it == bucket_of.end()) {
      bucket_of.emplace(key, buckets_.size());
      buckets_.push_back({std::move(word), {i}});
    } else {
      buckets_[it->second].members.push_back(i);
    }
  }
}

std::vector<SaxIndex::Neighbor> SaxIndex::Knn(std::span<const double> query,
                                              std::size_t k,
                                              Stats* stats) const {
  assert(!series_.empty() && "Build must be called before Knn");
  assert(query.size() == series_length_);
  k = std::min(k, series_.size());

  Stats local;
  local.candidates = series_.size();

  const std::vector<std::uint8_t> q_word =
      SaxWord(query, word_length_, alphabet_size_);
  const std::vector<double> q_paa = PaaTransform(query, word_length_);

  // Visit buckets in increasing MINDIST order so pruning kicks in early.
  std::vector<std::pair<double, std::size_t>> order;
  order.reserve(buckets_.size());
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    order.emplace_back(
        SaxMinDist(q_word, buckets_[b].word, series_length_, alphabet_size_),
        b);
  }
  std::sort(order.begin(), order.end());

  // Max-heap of the k best (distance, index) pairs, kept as a sorted vector
  // (k is small in every workload here).
  std::vector<Neighbor> best;
  auto worst_distance = [&best, k]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.back().distance;
  };
  auto offer = [&best, k](std::size_t index, double distance) {
    Neighbor entry{index, distance};
    auto pos = std::lower_bound(best.begin(), best.end(), entry,
                                [](const Neighbor& x, const Neighbor& y) {
                                  return x.distance < y.distance ||
                                         (x.distance == y.distance &&
                                          x.index < y.index);
                                });
    best.insert(pos, entry);
    if (best.size() > k) best.pop_back();
  };

  for (const auto& [mindist, b] : order) {
    if (mindist >= worst_distance()) {
      local.bucket_pruned += buckets_[b].members.size();
      continue;
    }
    for (std::size_t idx : buckets_[b].members) {
      const double threshold = worst_distance();
      const double paa_lb = PaaLowerBound(q_paa, paa_[idx], series_length_);
      if (paa_lb >= threshold) {
        ++local.paa_pruned;
        continue;
      }
      ++local.full_distances;
      const double threshold_sq =
          std::isfinite(threshold) ? threshold * threshold
                                   : std::numeric_limits<double>::infinity();
      const double sq =
          EarlyAbandonEdSquared(query, series_[idx].values(), threshold_sq);
      const double d = std::sqrt(sq);
      if (d < threshold) offer(idx, d);
    }
  }
  if (stats != nullptr) *stats = local;
  return best;
}

}  // namespace tsdist
