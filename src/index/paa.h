// Piecewise Aggregate Approximation (PAA).
//
// The dimensionality-reduction step underlying the indexing mechanisms the
// paper's M2 discussion credits for ED's popularity (iSAX and friends, refs
// [25, 135]): a series is summarized by the means of w equal-width
// segments, and the segment-space distance lower-bounds ED — the property
// that makes index pruning exact.

#ifndef TSDIST_INDEX_PAA_H_
#define TSDIST_INDEX_PAA_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// PAA transform: means of `segments` equal-width segments (the last
/// segment absorbs the remainder when `segments` does not divide the
/// length). Requires 1 <= segments <= length.
std::vector<double> PaaTransform(std::span<const double> values,
                                 std::size_t segments);

/// Lower bound of ED(a, b) from the PAA representations of two
/// equal-length series: sqrt(sum_j len_j * (paa_a[j] - paa_b[j])^2).
/// `series_length` is the original length (needed for segment widths).
double PaaLowerBound(std::span<const double> paa_a,
                     std::span<const double> paa_b, std::size_t series_length);

/// Widths of the segments PaaTransform uses for the given configuration.
std::vector<std::size_t> PaaSegmentWidths(std::size_t length,
                                          std::size_t segments);

}  // namespace tsdist

#endif  // TSDIST_INDEX_PAA_H_
