#include "src/resilience/fault.h"

#if !defined(TSDIST_FAULT_NOOP)

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "src/obs/log.h"
#include "src/obs/obs.h"

namespace tsdist::fault {

namespace {

enum class Action { kThrow, kExit };

// All mutable state lives behind this mutex except the armed flag, which is
// read on every Hit() and must stay a lone relaxed load when disarmed.
struct State {
  std::mutex mu;
  std::string site;              // armed site name
  std::uint64_t fire_at = 0;     // 1-based hit index that fires
  Action action = Action::kThrow;
  bool triggered = false;        // the armed hit already fired
  std::uint64_t fires = 0;
  std::map<std::string, std::uint64_t> hits;
};

std::atomic<bool> g_armed{false};

State& GetState() {
  static State* state = new State();
  return *state;
}

// Parses "site:n[:exit]"; returns false on malformed input.
bool ParseSpec(const std::string& spec, std::string* site,
               std::uint64_t* fire_at, Action* action) {
  const std::size_t first = spec.find(':');
  if (first == std::string::npos || first == 0) return false;
  const std::size_t second = spec.find(':', first + 1);
  const std::string count_str =
      second == std::string::npos ? spec.substr(first + 1)
                                  : spec.substr(first + 1, second - first - 1);
  if (count_str.empty()) return false;
  char* end = nullptr;
  const unsigned long long n = std::strtoull(count_str.c_str(), &end, 10);
  if (end != count_str.c_str() + count_str.size() || n == 0) return false;
  *action = Action::kThrow;
  if (second != std::string::npos) {
    const std::string mode = spec.substr(second + 1);
    if (mode == "exit") {
      *action = Action::kExit;
    } else if (mode != "throw") {
      return false;
    }
  }
  *site = spec.substr(0, first);
  *fire_at = n;
  return true;
}

}  // namespace

bool Armed() { return g_armed.load(std::memory_order_relaxed); }

void Arm(const std::string& spec) {
  std::string site;
  std::uint64_t fire_at = 0;
  Action action = Action::kThrow;
  if (!ParseSpec(spec, &site, &fire_at, &action)) {
    throw std::invalid_argument(
        "fault::Arm: malformed spec '" + spec +
        "' (expected <site>:<n> or <site>:<n>:exit with n >= 1)");
  }
  State& state = GetState();
  const std::lock_guard<std::mutex> lock(state.mu);
  state.site = site;
  state.fire_at = fire_at;
  state.action = action;
  state.triggered = false;
  state.fires = 0;
  state.hits.clear();
  g_armed.store(true, std::memory_order_relaxed);
}

void ArmFromEnv() {
  const char* spec = std::getenv("TSDIST_FAULT");
  if (spec == nullptr || spec[0] == '\0') return;
  try {
    Arm(spec);
  } catch (const std::invalid_argument& e) {
    TSDIST_LOG(obs::LogLevel::kWarn, "ignoring TSDIST_FAULT",
               obs::F("reason", e.what()));
  }
}

void Disarm() {
  State& state = GetState();
  const std::lock_guard<std::mutex> lock(state.mu);
  g_armed.store(false, std::memory_order_relaxed);
  state.site.clear();
  state.fire_at = 0;
  state.triggered = false;
  state.fires = 0;
  state.hits.clear();
}

void Hit(const char* site) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  State& state = GetState();
  bool fire = false;
  Action action = Action::kThrow;
  std::uint64_t hit_index = 0;
  {
    const std::lock_guard<std::mutex> lock(state.mu);
    // Re-check under the lock: Disarm may have raced the relaxed load.
    if (!g_armed.load(std::memory_order_relaxed)) return;
    hit_index = ++state.hits[site];
    if (!state.triggered && state.site == site &&
        hit_index == state.fire_at) {
      state.triggered = true;
      ++state.fires;
      fire = true;
      action = state.action;
    }
  }
  if (obs::Enabled()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("tsdist.fault.hits").Add(1);
    if (fire) registry.GetCounter("tsdist.fault.fired").Add(1);
  }
  if (!fire) return;
  if (action == Action::kExit) {
    // No unwinding, no flushing, no destructors: the closest in-process
    // stand-in for SIGKILL. Durability claims must survive this.
    std::_Exit(kFaultExitCode);
  }
  throw FaultInjected("fault injected at site '" + std::string(site) +
                      "' (hit " + std::to_string(hit_index) + ")");
}

std::uint64_t HitCount(const std::string& site) {
  State& state = GetState();
  const std::lock_guard<std::mutex> lock(state.mu);
  const auto it = state.hits.find(site);
  return it == state.hits.end() ? 0 : it->second;
}

std::uint64_t FireCount() {
  State& state = GetState();
  const std::lock_guard<std::mutex> lock(state.mu);
  return state.fires;
}

}  // namespace tsdist::fault

#endif  // !TSDIST_FAULT_NOOP
