// Tile-level checkpointing for dissimilarity-matrix computation.
//
// The paper's headline sweep (71 measures x 8 normalizations x 128 datasets
// under LOOCV tuning) is a multi-day batch job; before this subsystem a
// crash, OOM-kill, or Ctrl-C lost every completed cell. A TileCheckpoint
// makes one matrix computation durable at tile granularity:
//
//   <dir>/manifest.json   identity of the computation (measure, params,
//                         dataset fingerprints, shape, tile size, build SHA)
//                         written atomically (temp + fsync + rename);
//   <dir>/tiles.bin       append-only log of completed tiles, each record
//                         CRC32-protected and fsynced before the tile is
//                         considered durable.
//
// Resume semantics: on open, the manifest is validated field-by-field
// against the new run's key — any mismatch (different params, different
// data, different build) discards the shard and restarts from scratch,
// because bit-identity cannot be promised across those changes. A matching
// shard has its tile log scanned; every record with a valid CRC is loaded
// back into the output matrix and marked done, and the log is truncated to
// that valid prefix (a hard kill mid-append leaves a torn tail, exactly the
// torn-page recovery rule of a write-ahead log). Each cell of the matrix is
// an independent pure computation, so recomputing only the missing tiles
// reproduces the uninterrupted result bit for bit — proven by
// tests/test_resilience.cc with the fault-injection harness.
//
// Counters (docs/OBSERVABILITY.md): tsdist.ckpt.tiles_written / tiles_resumed
// / bytes_written / crc_failures / manifest_mismatch / shards_opened.

#ifndef TSDIST_RESILIENCE_CHECKPOINT_H_
#define TSDIST_RESILIENCE_CHECKPOINT_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/time_series.h"
#include "src/linalg/matrix.h"

namespace tsdist {

/// Order-sensitive FNV-1a fingerprint of a series collection (lengths,
/// labels, and raw value bytes). Two collections with the same fingerprint
/// are byte-identical for checkpoint purposes.
std::uint64_t FingerprintSeries(const std::vector<TimeSeries>& series);

/// Durably writes `contents` to `path`: write to a temp file in the same
/// directory, fsync, rename over the target, fsync the directory. Either
/// the old file or the complete new file survives a crash, never a torn
/// mix. Returns false (with `error` set) on I/O failure.
bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     std::string* error);

/// Fsyncs the directory containing `path` (the directory itself when `path`
/// names one without a parent component), making a rename or file creation
/// inside it durable. Best-effort: returns false when the directory cannot
/// be opened or synced.
bool SyncParentDirectory(const std::string& path);

/// Identity of one matrix computation; every field participates in manifest
/// validation.
struct ShardKey {
  std::string kind;        ///< "pair" (Compute) or "self" (ComputeSelf)
  std::string measure;     ///< registry name
  std::string params;      ///< ToString(ParamMap) of the instance
  std::uint64_t queries_fp = 0;
  std::uint64_t references_fp = 0;
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t tile_rows = 0;
  bool mirror = false;     ///< self-matrix upper-triangle-only computation
};

/// One matrix computation's durable shard. Thread-safe for WriteTile; open
/// and load happen on the calling thread before workers start.
class TileCheckpoint {
 public:
  /// Opens (creating if necessary) the shard in `directory` for `key` and
  /// loads every durable tile of a matching previous run into `*matrix`.
  /// `matrix` must already have the key's dimensions and must outlive the
  /// load call only (it is not retained). Throws std::runtime_error when the
  /// directory cannot be created or the log cannot be opened for append.
  TileCheckpoint(const std::string& directory, const ShardKey& key,
                 Matrix* matrix);
  ~TileCheckpoint();

  TileCheckpoint(const TileCheckpoint&) = delete;
  TileCheckpoint& operator=(const TileCheckpoint&) = delete;

  std::size_t num_tiles() const { return done_.size(); }
  /// True when tile `t` was restored from the previous run.
  bool TileDone(std::size_t t) const { return done_[t] != 0; }
  std::size_t tiles_resumed() const { return tiles_resumed_; }

  /// Appends tile `t`'s rows of `matrix` to the log and fsyncs. After this
  /// returns, the tile survives a hard kill. Thread-safe.
  void WriteTile(std::size_t t, const Matrix& matrix);

  /// First row of tile `t` / number of rows in tile `t`.
  std::size_t TileRowBegin(std::size_t t) const { return t * key_.tile_rows; }
  std::size_t TileRowCount(std::size_t t) const;

 private:
  bool LoadExisting(Matrix* matrix);
  void StartFresh();

  std::string directory_;
  ShardKey key_;
  std::vector<char> done_;  // vector<bool> is not thread-safe to read
  std::size_t tiles_resumed_ = 0;
  std::mutex write_mu_;
  std::FILE* log_ = nullptr;
};

/// Reads an append-only log of JSON lines, returning every line of the valid
/// prefix (complete, newline-terminated, parseable as a JSON object) and
/// truncating the file past the first invalid line — torn-tail recovery for
/// the sweep-level candidate cache. A missing file yields an empty vector.
std::vector<std::string> LoadJsonLog(const std::string& path);

/// Same valid-prefix read as LoadJsonLog but without the truncation, for
/// reading a log another process may still own (a fenced zombie worker must
/// never have its own file rewritten under it by a reader).
std::vector<std::string> ReadJsonLogPrefix(const std::string& path);

/// Appends one line to a JSON-lines log and fsyncs it. Returns false on I/O
/// failure (the caller degrades to running without the cache).
bool AppendJsonLogLine(const std::string& path, const std::string& line);

}  // namespace tsdist

#endif  // TSDIST_RESILIENCE_CHECKPOINT_H_
