#include "src/resilience/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "src/obs/json.h"
#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/obs/runinfo.h"
#include "src/resilience/crc32.h"
#include "src/resilience/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace tsdist {

namespace {

constexpr std::uint32_t kTileMagic = 0x54534B31;  // "TSK1"
constexpr const char kManifestSchema[] = "tsdist.ckpt.v1";

// Fixed-size on-disk tile record header; payload (row_count * cols doubles)
// follows. `crc` covers tile/row_begin/row_count and the payload bytes, so
// a torn header and a torn payload are both detected.
struct TileRecordHeader {
  std::uint32_t magic;
  std::uint32_t tile;
  std::uint32_t row_begin;
  std::uint32_t row_count;
  std::uint32_t crc;
};
static_assert(sizeof(TileRecordHeader) == 20);

obs::Counter* CkptCounter(const char* name) {
  return obs::Enabled()
             ? &obs::MetricsRegistry::Global().GetCounter(name)
             : nullptr;
}

void BumpCkpt(const char* name, std::uint64_t n = 1) {
  if (obs::Counter* c = CkptCounter(name); c != nullptr) c->Add(n);
}

// Flushes stdio buffers and forces the bytes to disk. fsync is what turns
// "written" into "durable": without it a kill after fwrite loses the tile
// even though the write returned.
bool FlushAndSync(std::FILE* file) {
  if (std::fflush(file) != 0) return false;
#if defined(__unix__) || defined(__APPLE__)
  return ::fsync(::fileno(file)) == 0;
#else
  return true;
#endif
}

// Best-effort directory fsync so a rename (manifest publish) or a file
// creation (tile log, results log) is durable: data fsync alone does not
// persist the directory entry, so a power loss could otherwise forget the
// file ever existed. An empty `dir` (a bare filename's parent) means the
// current directory.
bool SyncDirectory(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)dir;
  return true;
#endif
}

std::string HexU64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string JsonEscapeMinimal(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string ManifestJson(const ShardKey& key) {
  // The build SHA ties the shard to the binary that produced it: distance
  // kernels are only bit-stable within one build (compiler flags and code
  // changes may legally reassociate floating-point work).
  static const std::string build_sha =
      obs::CollectRunManifest(0, 0, "").git_sha;
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"" << kManifestSchema << "\",\n"
     << "  \"kind\": \"" << JsonEscapeMinimal(key.kind) << "\",\n"
     << "  \"measure\": \"" << JsonEscapeMinimal(key.measure) << "\",\n"
     << "  \"params\": \"" << JsonEscapeMinimal(key.params) << "\",\n"
     << "  \"queries_fp\": \"" << HexU64(key.queries_fp) << "\",\n"
     << "  \"references_fp\": \"" << HexU64(key.references_fp) << "\",\n"
     << "  \"rows\": " << key.rows << ",\n"
     << "  \"cols\": " << key.cols << ",\n"
     << "  \"tile_rows\": " << key.tile_rows << ",\n"
     << "  \"mirror\": " << (key.mirror ? "true" : "false") << ",\n"
     << "  \"build_sha\": \"" << JsonEscapeMinimal(build_sha) << "\"\n"
     << "}\n";
  return os.str();
}

}  // namespace

std::uint64_t FingerprintSeries(const std::vector<TimeSeries>& series) {
  // FNV-1a 64-bit over (count, then per series: length, label, value bytes).
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix_bytes = [&h](const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ull;
    }
  };
  const std::uint64_t count = series.size();
  mix_bytes(&count, sizeof count);
  for (const TimeSeries& s : series) {
    const std::uint64_t length = s.size();
    const std::int64_t label = s.label();
    mix_bytes(&length, sizeof length);
    mix_bytes(&label, sizeof label);
    mix_bytes(s.values().data(), s.values().size() * sizeof(double));
  }
  return h;
}

bool AtomicWriteFile(const std::string& path, const std::string& contents,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
      if (error != nullptr) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    const bool ok =
        std::fwrite(contents.data(), 1, contents.size(), file) ==
            contents.size() &&
        FlushAndSync(file);
    std::fclose(file);
    if (!ok) {
      std::remove(tmp.c_str());
      if (error != nullptr) *error = "short write or fsync failure on " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    return false;
  }
  // The rename only becomes durable once the parent directory's entry table
  // is on disk; a power loss before this fsync could resurrect the old file
  // (or, for a fresh manifest, forget it entirely).
  SyncParentDirectory(path);
  return true;
}

bool SyncParentDirectory(const std::string& path) {
  return SyncDirectory(std::filesystem::path(path).parent_path().string());
}

std::size_t TileCheckpoint::TileRowCount(std::size_t t) const {
  const std::size_t begin = TileRowBegin(t);
  return std::min(key_.tile_rows, key_.rows - begin);
}

TileCheckpoint::TileCheckpoint(const std::string& directory,
                               const ShardKey& key, Matrix* matrix)
    : directory_(directory), key_(key) {
  if (key_.tile_rows == 0 || key_.rows == 0 || key_.cols == 0) {
    throw std::runtime_error("TileCheckpoint: degenerate shard shape");
  }
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw std::runtime_error("TileCheckpoint: cannot create directory " +
                             directory_ + ": " + ec.message());
  }
  done_.assign((key_.rows + key_.tile_rows - 1) / key_.tile_rows, 0);
  BumpCkpt("tsdist.ckpt.shards_opened");

  if (!LoadExisting(matrix)) StartFresh();

  const std::string log_path = directory_ + "/tiles.bin";
  const bool log_existed = std::filesystem::exists(log_path);
  log_ = std::fopen(log_path.c_str(), "ab");
  if (log_ == nullptr) {
    throw std::runtime_error("TileCheckpoint: cannot open " + log_path +
                             " for append");
  }
  // A freshly created log needs its directory entry persisted too: tile
  // payload fsyncs alone would not survive a power loss that forgets the
  // file was ever created.
  if (!log_existed) SyncDirectory(directory_);
}

TileCheckpoint::~TileCheckpoint() {
  if (log_ != nullptr) std::fclose(log_);
}

// Returns true when a matching manifest was found and the tile log's valid
// prefix was loaded (possibly zero tiles); false means start fresh.
bool TileCheckpoint::LoadExisting(Matrix* matrix) {
  const std::string manifest_path = directory_ + "/manifest.json";
  if (!std::filesystem::exists(manifest_path)) return false;

  try {
    const obs::JsonValue manifest = obs::ParseJsonFile(manifest_path);
    const obs::JsonValue expected = obs::ParseJson(ManifestJson(key_));
    const char* string_fields[] = {"schema",        "kind",   "measure",
                                   "params",        "queries_fp",
                                   "references_fp", "build_sha"};
    const char* number_fields[] = {"rows", "cols", "tile_rows"};
    bool match = manifest.GetBool("mirror", !key_.mirror) == key_.mirror;
    for (const char* field : string_fields) {
      match = match && manifest.GetString(field, "") ==
                           expected.GetString(field, "\x01");
    }
    for (const char* field : number_fields) {
      match = match && manifest.GetDouble(field, -1.0) ==
                           expected.GetDouble(field, -2.0);
    }
    if (!match) {
      BumpCkpt("tsdist.ckpt.manifest_mismatch");
      return false;
    }
  } catch (const std::exception&) {
    // Unreadable or torn manifest: treat as absent.
    BumpCkpt("tsdist.ckpt.manifest_mismatch");
    return false;
  }

  const std::string log_path = directory_ + "/tiles.bin";
  std::FILE* log = std::fopen(log_path.c_str(), "rb");
  if (log == nullptr) return true;  // manifest but no tiles yet: resume at 0

  long valid_bytes = 0;
  std::vector<double> payload;
  for (;;) {
    TileRecordHeader header{};
    if (std::fread(&header, sizeof header, 1, log) != 1) break;
    fault::Hit(fault::sites::kShardLoad);
    const bool sane =
        header.magic == kTileMagic && header.tile < done_.size() &&
        header.row_begin == TileRowBegin(header.tile) &&
        header.row_count == TileRowCount(header.tile);
    if (!sane) {
      BumpCkpt("tsdist.ckpt.crc_failures");
      break;
    }
    const std::size_t payload_doubles =
        static_cast<std::size_t>(header.row_count) * key_.cols;
    payload.resize(payload_doubles);
    if (std::fread(payload.data(), sizeof(double), payload_doubles, log) !=
        payload_doubles) {
      // Torn tail: the kill landed mid-payload.
      BumpCkpt("tsdist.ckpt.crc_failures");
      break;
    }
    std::uint32_t crc = Crc32(&header.tile, 3 * sizeof(std::uint32_t));
    crc = Crc32(payload.data(), payload_doubles * sizeof(double), crc);
    if (crc != header.crc) {
      BumpCkpt("tsdist.ckpt.crc_failures");
      break;
    }
    for (std::size_t r = 0; r < header.row_count; ++r) {
      auto row = matrix->mutable_row(header.row_begin + r);
      std::memcpy(row.data(), payload.data() + r * key_.cols,
                  key_.cols * sizeof(double));
    }
    if (done_[header.tile] == 0) {
      done_[header.tile] = 1;
      ++tiles_resumed_;
    }
    valid_bytes += static_cast<long>(sizeof header) +
                   static_cast<long>(payload_doubles * sizeof(double));
  }
  std::fclose(log);
  BumpCkpt("tsdist.ckpt.tiles_resumed", tiles_resumed_);

  // Drop the torn tail so future appends extend a fully valid log.
  std::error_code ec;
  const auto size = std::filesystem::file_size(log_path, ec);
  if (!ec && size > static_cast<std::uintmax_t>(valid_bytes)) {
    TSDIST_LOG(obs::LogLevel::kWarn, "checkpoint tile log torn tail dropped",
               obs::F("path", log_path),
               obs::F("valid_bytes", static_cast<std::uint64_t>(valid_bytes)),
               obs::F("dropped_bytes",
                      static_cast<std::uint64_t>(
                          size - static_cast<std::uintmax_t>(valid_bytes))));
    std::filesystem::resize_file(
        log_path, static_cast<std::uintmax_t>(valid_bytes), ec);
  }
  return true;
}

void TileCheckpoint::StartFresh() {
  std::error_code ec;
  std::filesystem::remove(directory_ + "/tiles.bin", ec);
  std::string error;
  if (!AtomicWriteFile(directory_ + "/manifest.json", ManifestJson(key_),
                       &error)) {
    throw std::runtime_error("TileCheckpoint: " + error);
  }
}

void TileCheckpoint::WriteTile(std::size_t t, const Matrix& matrix) {
  const std::size_t row_begin = TileRowBegin(t);
  const std::size_t row_count = TileRowCount(t);
  const std::size_t payload_doubles = row_count * key_.cols;

  TileRecordHeader header{};
  header.magic = kTileMagic;
  header.tile = static_cast<std::uint32_t>(t);
  header.row_begin = static_cast<std::uint32_t>(row_begin);
  header.row_count = static_cast<std::uint32_t>(row_count);

  // Rows are contiguous in the row-major matrix, so the payload is one span.
  const double* payload = matrix.row(row_begin).data();
  std::uint32_t crc = Crc32(&header.tile, 3 * sizeof(std::uint32_t));
  crc = Crc32(payload, payload_doubles * sizeof(double), crc);
  header.crc = crc;

  const std::lock_guard<std::mutex> lock(write_mu_);
  fault::Hit(fault::sites::kTileWrite);
  if (std::fwrite(&header, sizeof header, 1, log_) != 1 ||
      std::fwrite(payload, sizeof(double), payload_doubles, log_) !=
          payload_doubles ||
      !FlushAndSync(log_)) {
    throw std::runtime_error(
        "TileCheckpoint: write/fsync failure on " + directory_ +
        "/tiles.bin (tile " + std::to_string(t) + ")");
  }
  BumpCkpt("tsdist.ckpt.tiles_written");
  BumpCkpt("tsdist.ckpt.bytes_written",
           sizeof header + payload_doubles * sizeof(double));
}

namespace {

// Shared valid-prefix scan for JSON-lines logs. Returns the parsed lines
// and reports how many leading bytes were valid so callers can decide
// whether (and when) to truncate the torn tail.
std::vector<std::string> ScanJsonLog(const std::string& path,
                                     std::size_t* valid_bytes,
                                     std::size_t* total_bytes) {
  std::vector<std::string> lines;
  *valid_bytes = 0;
  *total_bytes = 0;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return lines;
  std::string content;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, file)) > 0) {
    content.append(buf, n);
  }
  std::fclose(file);
  *total_bytes = content.size();

  std::size_t pos = 0;
  while (pos < content.size()) {
    const std::size_t nl = content.find('\n', pos);
    if (nl == std::string::npos) break;  // unterminated tail line
    const std::string line = content.substr(pos, nl - pos);
    try {
      if (!obs::ParseJson(line).is_object()) break;
    } catch (const std::exception&) {
      break;
    }
    lines.push_back(line);
    pos = nl + 1;
    *valid_bytes = pos;
  }
  return lines;
}

}  // namespace

std::vector<std::string> LoadJsonLog(const std::string& path) {
  std::size_t valid_bytes = 0;
  std::size_t total_bytes = 0;
  std::vector<std::string> lines =
      ScanJsonLog(path, &valid_bytes, &total_bytes);
  if (valid_bytes < total_bytes) {
    std::error_code ec;
    std::filesystem::resize_file(path, valid_bytes, ec);
  }
  return lines;
}

std::vector<std::string> ReadJsonLogPrefix(const std::string& path) {
  std::size_t valid_bytes = 0;
  std::size_t total_bytes = 0;
  return ScanJsonLog(path, &valid_bytes, &total_bytes);
}

bool AppendJsonLogLine(const std::string& path, const std::string& line) {
  const bool existed = std::filesystem::exists(path);
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(line.data(), 1, line.size(), file) == line.size() &&
      std::fwrite("\n", 1, 1, file) == 1 && FlushAndSync(file);
  std::fclose(file);
  // First append created the file: persist the directory entry as well, or
  // a power loss could forget the log while claiming the line was durable.
  if (ok && !existed) SyncParentDirectory(path);
  return ok;
}

}  // namespace tsdist
