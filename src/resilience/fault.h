// Deterministic fault-injection harness.
//
// Crash-recovery code is only trustworthy if the crashes it recovers from
// can be produced on demand, at an exact point, every time. This harness
// places named *sites* on the failure-prone paths (tile write, shard load,
// eigensolve, loader parse — see kSiteInventory in docs/ROBUSTNESS.md) and
// lets one site be armed to fire on its n-th hit:
//
//   TSDIST_FAULT=ckpt.tile_write:3        # 3rd tile write throws FaultInjected
//   TSDIST_FAULT=ckpt.tile_write:3:exit   # 3rd tile write hard-exits
//                                         # (std::_Exit, no unwinding — the
//                                         # closest in-process stand-in for
//                                         # SIGKILL / OOM-kill)
//
// Tests arm sites programmatically with Arm()/Disarm() instead of the
// environment variable. Hit counts are tracked per site while armed, so a
// test can assert a site was reached exactly n times; the obs counters
// tsdist.fault.hits and tsdist.fault.fired surface the same information in
// metrics dumps.
//
// Disarmed cost is one relaxed atomic load per site hit; configure with
// -DTSDIST_FAULT_NOOP=ON to compile every site down to nothing (mirroring
// TSDIST_OBS_NOOP). Production builds that want zero fault-injection surface
// use that switch; the default build keeps sites live so the robustness
// tests can run against the same binary configuration users run.

#ifndef TSDIST_RESILIENCE_FAULT_H_
#define TSDIST_RESILIENCE_FAULT_H_

#include <cstdint>
#include <stdexcept>
#include <string>

namespace tsdist::fault {

/// Exit code of the `exit` fault action, distinct from every exit code the
/// tools use, so a harness observing a child can tell an injected hard kill
/// from a real failure.
inline constexpr int kFaultExitCode = 86;

/// Thrown by an armed site firing in the default (`throw`) mode.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& what)
      : std::runtime_error(what) {}
};

/// Site names. Every call site uses one of these constants so the inventory
/// in docs/ROBUSTNESS.md is greppable and tests cannot typo a site string.
namespace sites {
inline constexpr const char kTileWrite[] = "ckpt.tile_write";
inline constexpr const char kShardLoad[] = "ckpt.shard_load";
inline constexpr const char kEigensolve[] = "linalg.eigensolve";
inline constexpr const char kLoaderParse[] = "data.parse_line";
inline constexpr const char kShardLeaseAcquire[] = "shard.lease_acquire";
inline constexpr const char kShardHeartbeat[] = "shard.heartbeat";
inline constexpr const char kShardMerge[] = "shard.merge";
}  // namespace sites

#if defined(TSDIST_FAULT_NOOP)

constexpr bool Armed() { return false; }
inline void Arm(const std::string&) {}
inline void ArmFromEnv() {}
inline void Disarm() {}
inline void Hit(const char*) {}
inline std::uint64_t HitCount(const std::string&) { return 0; }
inline std::uint64_t FireCount() { return 0; }

#else

/// True when a site is currently armed (via Arm or TSDIST_FAULT).
bool Armed();

/// Arms one site from a spec "site:n" or "site:n:exit" (n >= 1, 1-based hit
/// index). Replaces any previous configuration and zeroes all hit counters.
/// Throws std::invalid_argument on a malformed spec.
void Arm(const std::string& spec);

/// Arms from the TSDIST_FAULT environment variable when it is set and
/// non-empty; malformed values are reported to stderr and ignored (a batch
/// job must not die because of a typoed debug variable). Called once by the
/// tools at startup; tests use Arm() directly.
void ArmFromEnv();

/// Disarms and zeroes every hit counter. Test teardown.
void Disarm();

/// Records one hit of `site`. When `site` is the armed one and this is its
/// n-th hit, the fault fires: FaultInjected is thrown (default) or the
/// process hard-exits with kFaultExitCode (`exit` mode). No-op when nothing
/// is armed beyond one relaxed atomic load.
void Hit(const char* site);

/// Hits recorded for `site` since the last Arm()/Disarm(). Always 0 while
/// disarmed (hits are only counted when the harness is armed, keeping the
/// disarmed path free of bookkeeping).
std::uint64_t HitCount(const std::string& site);

/// Number of times the armed fault has fired (0 or 1: firing disarms the
/// trigger but keeps counting hits).
std::uint64_t FireCount();

#endif  // TSDIST_FAULT_NOOP

}  // namespace tsdist::fault

#endif  // TSDIST_RESILIENCE_FAULT_H_
