#include "src/resilience/crc32.h"

#include <array>

namespace tsdist {

namespace {

// Reflected CRC-32 lookup table, built once at first use.
std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace tsdist
