// Cooperative cancellation for long-running engine jobs.
//
// A CancellationToken carries two triggers: a manual flag (set by signal
// handlers or by test code) and an optional wall-clock deadline (set from a
// per-measure budget). Workers poll cancelled() between units of work — the
// thread pool checks before each claimed index, the engine before each
// checkpoint tile — so cancellation is prompt but never tears a unit in
// half: a cancelled run is always a clean prefix of tiles, which is what
// makes checkpoint resume bit-identical.
//
// Tokens can be chained: a child created with a parent reports cancelled
// when either its own triggers or any ancestor fire. tsdist_eval links every
// per-measure budget token to the process-wide interrupt token, so SIGINT
// cancels all in-flight work while a budget expiry cancels only its own
// cell.
//
// Cancel() is async-signal-safe (a single relaxed atomic store), which is
// what allows the SIGINT/SIGTERM handlers to use it directly.

#ifndef TSDIST_RESILIENCE_CANCELLATION_H_
#define TSDIST_RESILIENCE_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tsdist {

/// Manually- or deadline-triggered cancellation flag, pollable from any
/// thread. Copying is disabled; share by pointer.
class CancellationToken {
 public:
  CancellationToken() = default;
  /// Child token: cancelled when the parent is, too. `parent` must outlive
  /// this token.
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Requests cancellation. Async-signal-safe; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the deadline trigger `seconds` from now (steady clock). A
  /// non-positive budget cancels immediately.
  void SetBudget(double seconds) {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    const std::int64_t budget_ns =
        seconds > 0 ? static_cast<std::int64_t>(seconds * 1e9) : 0;
    deadline_ns_.store(now_ns + budget_ns, std::memory_order_relaxed);
  }

  /// True when this token or any ancestor was cancelled or timed out. Reads
  /// the clock only when a deadline is armed.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
          deadline) {
        return true;
      }
    }
    return parent_ != nullptr && parent_->cancelled();
  }

  /// True when the manual flag (not the deadline) fired on this token or an
  /// ancestor. Distinguishes an external interrupt from a budget expiry.
  bool cancel_requested() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancel_requested();
  }

  /// Clears this token's own flag and deadline (not the parent's).
  void Reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // steady ns; 0 = no deadline
  const CancellationToken* parent_ = nullptr;
};

}  // namespace tsdist

#endif  // TSDIST_RESILIENCE_CANCELLATION_H_
