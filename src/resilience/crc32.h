// CRC-32 (IEEE 802.3 / zlib polynomial) for checkpoint shard validation.
//
// Checkpoint tile records are written by one process and read back by a
// different one after a crash, so every payload carries a checksum that
// detects the torn or truncated tail a hard kill leaves behind. The standard
// reflected CRC-32 is used (polynomial 0xEDB88320) so shards can be verified
// with any external tool: crc32("123456789") == 0xCBF43926.

#ifndef TSDIST_RESILIENCE_CRC32_H_
#define TSDIST_RESILIENCE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tsdist {

/// CRC-32 of `size` bytes at `data`, starting from `seed` (pass the previous
/// return value to checksum a message in chunks; the default starts a new
/// message).
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace tsdist

#endif  // TSDIST_RESILIENCE_CRC32_H_
