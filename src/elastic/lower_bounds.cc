#include "src/elastic/lower_bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/elastic/dtw.h"
#include "src/elastic/elastic.h"

namespace tsdist {

Envelope BuildEnvelope(std::span<const double> values, double window_pct) {
  const std::size_t m = values.size();
  Envelope env;
  env.lower.resize(m);
  env.upper.resize(m);
  const std::size_t band = elastic_internal::BandWidth(window_pct, m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t lo = (i > band) ? i - band : 0;
    const std::size_t hi = std::min(m - 1, i + band);
    double mn = values[lo];
    double mx = values[lo];
    for (std::size_t j = lo + 1; j <= hi; ++j) {
      mn = std::min(mn, values[j]);
      mx = std::max(mx, values[j]);
    }
    env.lower[i] = mn;
    env.upper[i] = mx;
  }
  return env;
}

double LbKim(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  auto sq = [](double x) { return x * x; };
  // Every warping path aligns the first points and the last points; those
  // two matrix cells are distinct when m >= 2, so their costs add.
  double endpoint = sq(a.front() - b.front());
  if (m >= 2) endpoint += sq(a.back() - b.back());
  // The global maxima must align with *some* point of the other series,
  // which cannot exceed that series' maximum (dually for minima). A single
  // aligned pair realizes at least the squared feature difference.
  const auto [a_min_it, a_max_it] = std::minmax_element(a.begin(), a.end());
  const auto [b_min_it, b_max_it] = std::minmax_element(b.begin(), b.end());
  const double max_feature = sq(*a_max_it - *b_max_it);
  const double min_feature = sq(*a_min_it - *b_min_it);
  // max() rather than sum: the feature cells could coincide with the
  // endpoint cells, so summing would over-count.
  return std::max({endpoint, max_feature, min_feature});
}

double LbKeogh(std::span<const double> query, const Envelope& envelope) {
  assert(query.size() == envelope.lower.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < query.size(); ++i) {
    if (query[i] > envelope.upper[i]) {
      const double d = query[i] - envelope.upper[i];
      acc += d * d;
    } else if (query[i] < envelope.lower[i]) {
      const double d = query[i] - envelope.lower[i];
      acc += d * d;
    }
  }
  return acc;
}

PrunedSearchResult PrunedOneNn(
    std::span<const double> query,
    const std::vector<std::vector<double>>& candidates,
    const std::vector<Envelope>& envelopes, double window_pct) {
  // assert-only guards here were undefined behaviour in release builds; a
  // caller with an empty training split deserves a diagnosis instead.
  if (candidates.empty()) {
    throw std::invalid_argument("PrunedOneNn: candidates is empty");
  }
  if (candidates.size() != envelopes.size()) {
    throw std::invalid_argument(
        "PrunedOneNn: " + std::to_string(envelopes.size()) +
        " envelopes for " + std::to_string(candidates.size()) +
        " candidates (build one envelope per candidate, same window)");
  }
  const DtwDistance dtw(window_pct);

  PrunedSearchResult result;
  result.best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (LbKim(query, candidates[i]) >= result.best_distance) {
      ++result.lb_kim_pruned;
      continue;
    }
    if (LbKeogh(query, envelopes[i]) >= result.best_distance) {
      ++result.lb_keogh_pruned;
      continue;
    }
    ++result.full_computations;
    const double d =
        dtw.EarlyAbandonDistance(query, candidates[i], result.best_distance);
    if (std::isinf(d)) {
      ++result.early_abandoned;  // reached the cutoff; cannot be the 1-NN
      continue;
    }
    if (d < result.best_distance) {
      result.best_distance = d;
      result.best_index = i;
    }
  }
  return result;
}

}  // namespace tsdist
