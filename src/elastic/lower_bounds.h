// Lower bounds for DTW and cascade-pruned 1-NN search.
//
// Section 10 of the paper notes that "for elastic measures, the runtime
// cost can be substantially improved with the use of lower bounding
// measures (i.e., efficient measures to prune the expensive pairwise
// comparisons)". This module implements the two classic bounds and the
// pruned search built on them:
//  * LB_Kim (O(1) after feature extraction): squared differences of the
//    first/last/min/max features;
//  * LB_Keogh (O(m)): squared distance to the Sakoe-Chiba envelope of the
//    candidate;
//  * PrunedOneNn: exact 1-NN under banded DTW using the
//    LB_Kim -> LB_Keogh -> full-DTW cascade with early abandoning on the
//    best-so-far.
// Both bounds are valid for this library's DTW (squared point costs,
// Sakoe-Chiba band, equal lengths): LB_Kim <= DTW and LB_Keogh <= DTW.

#ifndef TSDIST_ELASTIC_LOWER_BOUNDS_H_
#define TSDIST_ELASTIC_LOWER_BOUNDS_H_

#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// Sakoe-Chiba envelope of a series: for each position i, the min and max
/// over the window [i - band, i + band].
struct Envelope {
  std::vector<double> lower;
  std::vector<double> upper;
};

/// Builds the envelope for a window expressed as a percentage of the length
/// (the DTW `delta` convention).
Envelope BuildEnvelope(std::span<const double> values, double window_pct);

/// LB_Kim: constant-time bound from the first, last, minimum, and maximum
/// points. Valid lower bound of banded DTW with squared costs.
double LbKim(std::span<const double> a, std::span<const double> b);

/// LB_Keogh: sum of squared distances from `query` to the envelope of the
/// candidate. Asymmetric (envelope belongs to the candidate).
double LbKeogh(std::span<const double> query, const Envelope& envelope);

/// Result of a pruned nearest-neighbour search.
struct PrunedSearchResult {
  std::size_t best_index = 0;
  double best_distance = 0.0;
  std::size_t full_computations = 0;  ///< DTW evaluations started (not pruned)
  std::size_t lb_kim_pruned = 0;
  std::size_t lb_keogh_pruned = 0;
  /// Subset of full_computations that the row-min early-abandon check cut
  /// short before completion (see DtwDistance::EarlyAbandonDistance).
  std::size_t early_abandoned = 0;
};

/// Exact 1-NN of `query` among `candidates` under DTW with window
/// `window_pct`, using the LB_Kim -> LB_Keogh -> early-abandoned-DTW
/// cascade. `envelopes` must be the precomputed envelopes of the candidates
/// (same window). Throws std::invalid_argument when `candidates` is empty
/// or `envelopes` has a different size.
PrunedSearchResult PrunedOneNn(std::span<const double> query,
                               const std::vector<std::vector<double>>& candidates,
                               const std::vector<Envelope>& envelopes,
                               double window_pct);

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_LOWER_BOUNDS_H_
