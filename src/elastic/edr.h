// Edit Distance on Real sequences (Chen, Ozsu & Oria, SIGMOD'05).
//
// Edit-distance measure quantizing point distances to {0, 1} via the epsilon
// threshold, with unit penalties for gaps between matched subsequences.

#ifndef TSDIST_ELASTIC_EDR_H_
#define TSDIST_ELASTIC_EDR_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// EDR distance with match threshold `epsilon` (Table 4: {0.001 ... 1}).
/// Returns the raw edit count (0 for identical series, at most m).
class EdrDistance : public ElasticMeasure {
 public:
  explicit EdrDistance(double epsilon = 0.1);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "edr"; }
  ParamMap params() const override { return {{"epsilon", epsilon_}}; }

 private:
  double epsilon_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_EDR_H_
