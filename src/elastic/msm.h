// Move-Split-Merge distance (Stefan, Athitsos & Das, TKDE'13).
//
// Edit-based elastic measure built from three operations — move (substitute),
// split (duplicate a point), merge (fuse equal adjacent points) — each
// costing `c` plus any value change. MSM is a metric. Together with TWE it
// is one of the two measures the paper shows to significantly outperform DTW
// (debunked misconception M4).

#ifndef TSDIST_ELASTIC_MSM_H_
#define TSDIST_ELASTIC_MSM_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// MSM distance with split/merge cost `c` (Table 4: {0.01 ... 500};
/// unsupervised default 0.5).
class MsmDistance : public ElasticMeasure {
 public:
  explicit MsmDistance(double c = 0.5);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "msm"; }
  bool is_metric() const override { return true; }
  ParamMap params() const override { return {{"c", c_}}; }

 private:
  double c_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_MSM_H_
