#include "src/elastic/msm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsdist {

namespace {

// Cost of splitting/merging `x` adjacent to `prev` while aligning against
// `other` on the opposite series: the flat cost c when x lies between the
// neighbours, otherwise c plus the distance to the nearer neighbour.
double SplitMergeCost(double x, double prev, double other, double c) {
  if ((prev <= x && x <= other) || (prev >= x && x >= other)) {
    return c;
  }
  return c + std::min(std::fabs(x - prev), std::fabs(x - other));
}

}  // namespace

MsmDistance::MsmDistance(double c) : c_(c) {
  assert(c_ >= 0.0);
}

double MsmDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;

  std::vector<double> prev_row(m, 0.0);
  std::vector<double> curr_row(m, 0.0);

  prev_row[0] = std::fabs(a[0] - b[0]);
  for (std::size_t j = 1; j < m; ++j) {
    prev_row[j] = prev_row[j - 1] + SplitMergeCost(b[j], b[j - 1], a[0], c_);
  }

  for (std::size_t i = 1; i < m; ++i) {
    curr_row[0] = prev_row[0] + SplitMergeCost(a[i], a[i - 1], b[0], c_);
    for (std::size_t j = 1; j < m; ++j) {
      curr_row[j] =
          std::min({prev_row[j - 1] + std::fabs(a[i] - b[j]),
                    prev_row[j] + SplitMergeCost(a[i], a[i - 1], b[j], c_),
                    curr_row[j - 1] + SplitMergeCost(b[j], b[j - 1], a[i], c_)});
    }
    std::swap(prev_row, curr_row);
  }
  return prev_row[m - 1];
}

}  // namespace tsdist
