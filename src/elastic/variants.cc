#include "src/elastic/variants.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "src/elastic/dtw.h"
#include "src/lockstep/minkowski_family.h"

namespace tsdist {

DerivativeDistance::DerivativeDistance(MeasurePtr base)
    : base_(std::move(base)) {
  assert(base_ != nullptr);
}

std::vector<double> DerivativeDistance::Derive(std::span<const double> values) {
  const std::size_t m = values.size();
  std::vector<double> out(m, 0.0);
  if (m < 3) return out;
  for (std::size_t i = 1; i + 1 < m; ++i) {
    out[i] = ((values[i] - values[i - 1]) +
              (values[i + 1] - values[i - 1]) / 2.0) /
             2.0;
  }
  out[0] = out[1];
  out[m - 1] = out[m - 2];
  return out;
}

double DerivativeDistance::Distance(std::span<const double> a,
                                    std::span<const double> b) const {
  const std::vector<double> da = Derive(a);
  const std::vector<double> db = Derive(b);
  return base_->Distance(da, db);
}

WdtwDistance::WdtwDistance(double g) : g_(g) {
  assert(g_ >= 0.0);
}

double WdtwDistance::Distance(std::span<const double> a,
                              std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kWMax = 1.0;

  // Precompute the logistic weights for every index distance.
  std::vector<double> weight(m);
  const double half = static_cast<double>(m) / 2.0;
  for (std::size_t k = 0; k < m; ++k) {
    weight[k] = kWMax / (1.0 + std::exp(-g_ * (static_cast<double>(k) - half)));
  }

  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    for (std::size_t j = 1; j <= m; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const std::size_t k = i > j ? i - j : j - i;
      const double cost = weight[k] * d * d;
      curr[j] = cost + std::min({prev[j - 1], prev[j], curr[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

CidDistance::CidDistance(MeasurePtr base) : base_(std::move(base)) {
  assert(base_ != nullptr);
}

double CidDistance::ComplexityEstimate(std::span<const double> values) {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    const double d = values[i + 1] - values[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double CidDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  constexpr double kEps = 1e-12;
  const double ce_a = ComplexityEstimate(a);
  const double ce_b = ComplexityEstimate(b);
  const double hi = std::max(ce_a, ce_b);
  const double lo = std::max(std::min(ce_a, ce_b), kEps);
  return base_->Distance(a, b) * (hi / lo);
}

void RegisterElasticVariants(Registry* registry) {
  registry->Register("ddtw", [](const ParamMap& params) -> MeasurePtr {
    const auto it = params.find("delta");
    const double delta = it == params.end() ? 100.0 : it->second;
    return std::make_unique<DerivativeDistance>(
        std::make_unique<DtwDistance>(delta));
  });
  registry->Register("wdtw", [](const ParamMap& params) -> MeasurePtr {
    const auto it = params.find("g");
    return std::make_unique<WdtwDistance>(
        it == params.end() ? 0.05 : it->second);
  });
  registry->Register("cid_euclidean", [](const ParamMap&) -> MeasurePtr {
    return std::make_unique<CidDistance>(std::make_unique<EuclideanDistance>());
  });
  registry->Register("cid_dtw", [](const ParamMap& params) -> MeasurePtr {
    const auto it = params.find("delta");
    const double delta = it == params.end() ? 10.0 : it->second;
    return std::make_unique<CidDistance>(std::make_unique<DtwDistance>(delta));
  });
}

}  // namespace tsdist
