#include "src/elastic/twe.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace tsdist {

TweDistance::TweDistance(double lambda, double nu) : lambda_(lambda), nu_(nu) {
  assert(lambda_ >= 0.0);
  assert(nu_ >= 0.0);
}

double TweDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // DP over 1-based indices with an implicit 0-valued point at time 0
  // (Marteau's convention). Timestamps are the indices themselves.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  auto at = [](std::span<const double> s, std::size_t idx) {
    return idx == 0 ? 0.0 : s[idx - 1];
  };

  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + std::fabs(at(b, j) - at(b, j - 1)) + nu_ + lambda_;
  }

  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    curr[0] = prev[0] + std::fabs(at(a, i) - at(a, i - 1)) + nu_ + lambda_;
    for (std::size_t j = 1; j <= m; ++j) {
      const double di = static_cast<double>(i);
      const double dj = static_cast<double>(j);
      // Match: align (a_i, b_j) and (a_{i-1}, b_{j-1}) with stiffness
      // proportional to the timestamp difference.
      const double match = prev[j - 1] + std::fabs(at(a, i) - at(b, j)) +
                           std::fabs(at(a, i - 1) - at(b, j - 1)) +
                           2.0 * nu_ * std::fabs(di - dj);
      // Delete in a.
      const double del_a = prev[j] + std::fabs(at(a, i) - at(a, i - 1)) +
                           nu_ + lambda_;
      // Delete in b.
      const double del_b = curr[j - 1] + std::fabs(at(b, j) - at(b, j - 1)) +
                           nu_ + lambda_;
      curr[j] = std::min({match, del_a, del_b});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace tsdist
