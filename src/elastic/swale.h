// Sequence Weighted ALignment model (Morse & Patel, SIGMOD'07).
//
// A similarity model (not a distance): matching points earn a reward r,
// gaps pay a penalty p, with the match threshold epsilon deciding what
// counts as a match. We report the negated similarity so that the library's
// lower-is-closer convention holds.

#ifndef TSDIST_ELASTIC_SWALE_H_
#define TSDIST_ELASTIC_SWALE_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// Swale dissimilarity = -(alignment score) with match threshold `epsilon`,
/// gap penalty `p`, and match reward `r` (Table 4: epsilon in {0.01 ... 1},
/// p = 5, r = 1).
class SwaleDistance : public ElasticMeasure {
 public:
  explicit SwaleDistance(double epsilon = 0.2, double p = 5.0, double r = 1.0);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "swale"; }
  ParamMap params() const override {
    return {{"epsilon", epsilon_}, {"p", p_}, {"r", r_}};
  }

 private:
  double epsilon_;
  double p_;
  double r_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_SWALE_H_
