#include "src/elastic/dtw.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace tsdist {

namespace elastic_internal {

std::size_t BandWidth(double window_pct, std::size_t m) {
  if (window_pct >= 100.0) return m;
  if (window_pct <= 0.0) return 0;
  const double w = std::ceil(window_pct / 100.0 * static_cast<double>(m));
  return std::min<std::size_t>(static_cast<std::size_t>(w), m);
}

}  // namespace elastic_internal

DtwDistance::DtwDistance(double delta) : delta_(delta) {
  assert(delta_ >= 0.0);
}

double DtwDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  const std::size_t band = elastic_internal::BandWidth(delta_, m);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Two-row rolling DP over the (m+1) x (m+1) accumulated-cost matrix.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t lo = (i > band) ? i - band : 1;
    const std::size_t hi = std::min(m, i + band);
    for (std::size_t j = lo; j <= hi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double cost = d * d;
      const double best =
          std::min({prev[j - 1], prev[j], curr[j - 1]});
      curr[j] = cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double DtwDistance::EarlyAbandonDistance(std::span<const double> a,
                                         std::span<const double> b,
                                         double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  const std::size_t band = elastic_internal::BandWidth(delta_, m);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Same two-row rolling DP as Distance(), with one addition: every warping
  // path crosses each DP row inside the band, and squared point costs make
  // accumulated cost non-decreasing along a path, so min(curr[lo..hi]) lower
  // bounds the final distance. Once it reaches the cutoff, abandon.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;

  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t lo = (i > band) ? i - band : 1;
    const std::size_t hi = std::min(m, i + band);
    double row_min = kInf;
    for (std::size_t j = lo; j <= hi; ++j) {
      const double d = a[i - 1] - b[j - 1];
      const double cost = d * d;
      const double best =
          std::min({prev[j - 1], prev[j], curr[j - 1]});
      curr[j] = cost + best;
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min >= cutoff) return kInf;
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace tsdist
