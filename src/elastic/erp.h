// Edit distance with Real Penalty (Chen & Ng, VLDB'04).
//
// Bridges DTW and EDR: gaps are penalized by the real distance to a constant
// reference value g (default 0, the natural choice for z-normalized data).
// Unlike DTW, ERP satisfies the triangle inequality — it is a metric. The
// paper highlights ERP as the only parameter-free elastic measure that
// significantly outperforms NCCc in both tuning regimes (Table 5).

#ifndef TSDIST_ELASTIC_ERP_H_
#define TSDIST_ELASTIC_ERP_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// ERP distance with gap reference value `g` (default 0).
class ErpDistance : public ElasticMeasure {
 public:
  explicit ErpDistance(double g = 0.0);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "erp"; }
  bool is_metric() const override { return true; }
  ParamMap params() const override { return {{"g", g_}}; }

 private:
  double g_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_ERP_H_
