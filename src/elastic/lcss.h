// Longest Common Subsequence distance (Vlachos et al., ICDE'02).
//
// Edit-distance-style measure: two points match when they differ by less
// than epsilon and their indices differ by at most the warping window delta
// (a percentage of m, Table 4: {5, 10}). The distance is 1 - LCSS/m.

#ifndef TSDIST_ELASTIC_LCSS_H_
#define TSDIST_ELASTIC_LCSS_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// LCSS distance with match threshold `epsilon` and window `delta` (% of m).
class LcssDistance : public ElasticMeasure {
 public:
  explicit LcssDistance(double delta = 10.0, double epsilon = 0.2);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "lcss"; }
  ParamMap params() const override {
    return {{"delta", delta_}, {"epsilon", epsilon_}};
  }

 private:
  double delta_;
  double epsilon_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_LCSS_H_
