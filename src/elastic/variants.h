// Elastic-measure variants discussed (and deliberately excluded from the
// headline comparison) in Section 7 of the paper: Derivative DTW (Keogh &
// Pazzani, SDM'01 / Gorecki & Luczak 2013), Weighted DTW (Jeong, Jeong &
// Omitaomu 2011), and the Complexity-Invariant Distance weighting (Batista
// et al. 2014). Implemented here as the paper's "extension" features so the
// exclusion can be revisited: the ablation bench compares them against
// their base measures.

#ifndef TSDIST_ELASTIC_VARIANTS_H_
#define TSDIST_ELASTIC_VARIANTS_H_

#include "src/core/registry.h"
#include "src/elastic/elastic.h"

namespace tsdist {

/// Derivative transform wrapper: compares first-order derivative estimates
/// d_i = ((x_i - x_{i-1}) + (x_{i+1} - x_{i-1}) / 2) / 2 (Keogh & Pazzani)
/// under the wrapped base measure. With DTW as the base this is DDTW.
class DerivativeDistance : public DistanceMeasure {
 public:
  explicit DerivativeDistance(MeasurePtr base);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override {
    std::string n = "d";
    n += base_->name();
    return n;
  }
  MeasureCategory category() const override { return base_->category(); }
  CostClass cost_class() const override { return base_->cost_class(); }
  ParamMap params() const override { return base_->params(); }

  /// The derivative estimate itself (exposed for tests). Output has the
  /// same length as the input; the endpoints replicate their neighbours.
  static std::vector<double> Derive(std::span<const double> values);

 private:
  MeasurePtr base_;
};

/// Weighted DTW: the cost of aligning points i and j is multiplied by a
/// logistic weight of their index distance,
///   w(k) = w_max / (1 + exp(-g * (k - m/2))),
/// penalizing far-from-diagonal matches softly (a smooth alternative to a
/// hard Sakoe-Chiba band). `g` controls the penalty steepness.
class WdtwDistance : public ElasticMeasure {
 public:
  explicit WdtwDistance(double g = 0.05);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "wdtw"; }
  ParamMap params() const override { return {{"g", g_}}; }

 private:
  double g_;
};

/// Complexity-Invariant Distance: scales the base distance by
/// max(CE(a), CE(b)) / min(CE(a), CE(b)), where CE is the length of the
/// polyline (sqrt of summed squared one-step differences) — penalizing the
/// pairing of simple with complex series.
class CidDistance : public DistanceMeasure {
 public:
  explicit CidDistance(MeasurePtr base);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override {
    std::string n = "cid_";
    n += base_->name();
    return n;
  }
  MeasureCategory category() const override { return base_->category(); }
  CostClass cost_class() const override { return base_->cost_class(); }
  ParamMap params() const override { return base_->params(); }

  /// The complexity estimate CE (exposed for tests).
  static double ComplexityEstimate(std::span<const double> values);

 private:
  MeasurePtr base_;
};

/// Registers "ddtw" (delta), "wdtw" (g), "cid_euclidean", and "cid_dtw"
/// (delta) in `registry`. Kept out of Registry::Global()'s headline
/// inventory: the paper's 71-measure count excludes these variants.
void RegisterElasticVariants(Registry* registry);

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_VARIANTS_H_
