#include "src/elastic/swale.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsdist {

SwaleDistance::SwaleDistance(double epsilon, double p, double r)
    : epsilon_(epsilon), p_(p), r_(r) {
  assert(epsilon_ >= 0.0);
}

double SwaleDistance::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;

  // Alignment score DP: matches add the reward, gaps subtract the penalty.
  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  for (std::size_t j = 0; j <= m; ++j) {
    prev[j] = -static_cast<double>(j) * p_;
  }

  for (std::size_t i = 1; i <= m; ++i) {
    curr[0] = -static_cast<double>(i) * p_;
    for (std::size_t j = 1; j <= m; ++j) {
      if (std::fabs(a[i - 1] - b[j - 1]) < epsilon_) {
        curr[j] = prev[j - 1] + r_;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]) - p_;
      }
    }
    std::swap(prev, curr);
  }
  return -prev[m];
}

}  // namespace tsdist
