// Aggregation header for the 7 elastic measures.

#ifndef TSDIST_ELASTIC_ELASTIC_ALL_H_
#define TSDIST_ELASTIC_ELASTIC_ALL_H_

#include <string>
#include <vector>

#include "src/core/registry.h"
#include "src/elastic/dtw.h"
#include "src/elastic/edr.h"
#include "src/elastic/erp.h"
#include "src/elastic/lcss.h"
#include "src/elastic/msm.h"
#include "src/elastic/swale.h"
#include "src/elastic/twe.h"

namespace tsdist {

/// Registers the 7 elastic measures. Factories honour the Table 4 parameter
/// names: dtw {delta}, lcss {delta, epsilon}, edr {epsilon}, erp {g},
/// msm {c}, twe {lambda, nu}, swale {epsilon, p, r}.
void RegisterElasticMeasures(Registry* registry);

/// Names of the 7 elastic measures.
const std::vector<std::string>& ElasticMeasureNames();

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_ELASTIC_ALL_H_
