// Dynamic Time Warping (Sakoe & Chiba 1978; Berndt & Clifford 1994).
//
// The historically dominant elastic measure and the subject of misconception
// M4 ("is DTW the best elastic measure?"). Finds the warping path minimizing
// the accumulated squared point distance, optionally constrained to a
// Sakoe-Chiba band. delta = 0 degenerates to squared Euclidean distance;
// delta = 100 is unconstrained warping.

#ifndef TSDIST_ELASTIC_DTW_H_
#define TSDIST_ELASTIC_DTW_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// DTW with a Sakoe-Chiba band. The `delta` parameter is the window size as
/// a percentage of the series length (Table 4: {0, 1, ..., 20, 100}).
class DtwDistance : public ElasticMeasure {
 public:
  explicit DtwDistance(double delta = 100.0);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;

  /// Early-abandoning DTW: point costs are squared differences, so every
  /// row of the accumulated-cost matrix is non-decreasing along any warping
  /// path. After each DP row, if the minimum over the banded cells already
  /// reaches `cutoff`, no completion can come in below it — abandon and
  /// return +infinity (the contract's abandon signal). Otherwise returns
  /// exactly Distance(a, b), bit-identically (same accumulation order).
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;

  std::string name() const override { return "dtw"; }
  ParamMap params() const override { return {{"delta", delta_}}; }

 private:
  double delta_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_DTW_H_
