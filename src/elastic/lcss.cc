#include "src/elastic/lcss.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsdist {

LcssDistance::LcssDistance(double delta, double epsilon)
    : delta_(delta), epsilon_(epsilon) {
  assert(delta_ >= 0.0);
  assert(epsilon_ >= 0.0);
}

double LcssDistance::Distance(std::span<const double> a,
                              std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  const std::size_t band = elastic_internal::BandWidth(delta_, m);

  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), 0.0);
    const std::size_t lo = (i > band) ? i - band : 1;
    const std::size_t hi = std::min(m, i + band);
    for (std::size_t j = lo; j <= hi; ++j) {
      if (std::fabs(a[i - 1] - b[j - 1]) < epsilon_) {
        curr[j] = prev[j - 1] + 1.0;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  const double lcss = *std::max_element(prev.begin(), prev.end());
  return 1.0 - lcss / static_cast<double>(m);
}

}  // namespace tsdist
