// Time Warp Edit distance (Marteau, TPAMI'09).
//
// Combines merits of LCSS and DTW: an edit distance whose delete operations
// carry a constant penalty lambda, with a stiffness parameter nu that
// penalizes warping proportionally to the timestamp gap. TWE is a metric for
// lambda, nu >= 0. With MSM, one of the two measures the paper finds to
// significantly outperform DTW in both tuning regimes.

#ifndef TSDIST_ELASTIC_TWE_H_
#define TSDIST_ELASTIC_TWE_H_

#include "src/elastic/elastic.h"

namespace tsdist {

/// TWE distance with gap penalty `lambda` and stiffness `nu`
/// (Table 4: lambda in {0 ... 1}, nu in {1e-5 ... 1}; unsupervised default
/// lambda = 1, nu = 1e-4).
class TweDistance : public ElasticMeasure {
 public:
  explicit TweDistance(double lambda = 1.0, double nu = 1e-4);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "twe"; }
  bool is_metric() const override { return true; }
  ParamMap params() const override {
    return {{"lambda", lambda_}, {"nu", nu_}};
  }

 private:
  double lambda_;
  double nu_;
};

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_TWE_H_
