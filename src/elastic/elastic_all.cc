#include "src/elastic/elastic_all.h"

#include <memory>

namespace tsdist {

namespace {

double GetOr(const ParamMap& params, const std::string& key, double fallback) {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

}  // namespace

void RegisterElasticMeasures(Registry* registry) {
  registry->Register("dtw", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<DtwDistance>(GetOr(p, "delta", 100.0));
  });
  registry->Register("lcss", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<LcssDistance>(GetOr(p, "delta", 10.0),
                                          GetOr(p, "epsilon", 0.2));
  });
  registry->Register("edr", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<EdrDistance>(GetOr(p, "epsilon", 0.1));
  });
  registry->Register("erp", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<ErpDistance>(GetOr(p, "g", 0.0));
  });
  registry->Register("msm", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<MsmDistance>(GetOr(p, "c", 0.5));
  });
  registry->Register("twe", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<TweDistance>(GetOr(p, "lambda", 1.0),
                                         GetOr(p, "nu", 1e-4));
  });
  registry->Register("swale", [](const ParamMap& p) -> MeasurePtr {
    return std::make_unique<SwaleDistance>(GetOr(p, "epsilon", 0.2),
                                           GetOr(p, "p", 5.0),
                                           GetOr(p, "r", 1.0));
  });
}

const std::vector<std::string>& ElasticMeasureNames() {
  static const std::vector<std::string> kNames = {
      "msm", "twe", "dtw", "edr", "swale", "erp", "lcss"};
  return kNames;
}

}  // namespace tsdist
