#include "src/elastic/edr.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsdist {

EdrDistance::EdrDistance(double epsilon) : epsilon_(epsilon) {
  assert(epsilon_ >= 0.0);
}

double EdrDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;

  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  // Aligning against the empty prefix costs one gap per point.
  for (std::size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);

  for (std::size_t i = 1; i <= m; ++i) {
    curr[0] = static_cast<double>(i);
    for (std::size_t j = 1; j <= m; ++j) {
      const double subcost =
          std::fabs(a[i - 1] - b[j - 1]) < epsilon_ ? 0.0 : 1.0;
      curr[j] = std::min({prev[j - 1] + subcost,   // match / substitute
                          prev[j] + 1.0,           // gap in b
                          curr[j - 1] + 1.0});     // gap in a
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace tsdist
