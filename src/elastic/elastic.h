// Base class for elastic measures.
//
// Elastic measures (paper Section 7) create a non-linear mapping between
// series, allowing observations to "stretch" or "shrink" to improve matching.
// All seven are dynamic programs over an m-by-m cost matrix; DTW and LCSS
// additionally support a Sakoe-Chiba band whose window is expressed as a
// percentage of the series length (a value of 10 means 10% of m; 100 means
// unconstrained), following the paper's Table 4 convention.

#ifndef TSDIST_ELASTIC_ELASTIC_H_
#define TSDIST_ELASTIC_ELASTIC_H_

#include <cstddef>

#include "src/core/distance_measure.h"

namespace tsdist {

/// Common base for O(m^2) dynamic-programming alignment measures.
class ElasticMeasure : public DistanceMeasure {
 public:
  MeasureCategory category() const override { return MeasureCategory::kElastic; }
  CostClass cost_class() const override { return CostClass::kQuadratic; }
};

namespace elastic_internal {

/// Converts a window percentage (0..100) into an absolute band half-width
/// for series of length m: ceil(pct/100 * m), clamped to [0, m].
std::size_t BandWidth(double window_pct, std::size_t m);

}  // namespace elastic_internal

}  // namespace tsdist

#endif  // TSDIST_ELASTIC_ELASTIC_H_
