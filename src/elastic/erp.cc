#include "src/elastic/erp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tsdist {

ErpDistance::ErpDistance(double g) : g_(g) {}

double ErpDistance::Distance(std::span<const double> a,
                             std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;

  std::vector<double> prev(m + 1, 0.0);
  std::vector<double> curr(m + 1, 0.0);
  // Empty-prefix alignment: every point of b is a gap against g.
  for (std::size_t j = 1; j <= m; ++j) {
    prev[j] = prev[j - 1] + std::fabs(b[j - 1] - g_);
  }

  for (std::size_t i = 1; i <= m; ++i) {
    curr[0] = prev[0] + std::fabs(a[i - 1] - g_);
    for (std::size_t j = 1; j <= m; ++j) {
      curr[j] = std::min({prev[j - 1] + std::fabs(a[i - 1] - b[j - 1]),
                          prev[j] + std::fabs(a[i - 1] - g_),
                          curr[j - 1] + std::fabs(b[j - 1] - g_)});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace tsdist
