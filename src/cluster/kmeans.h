// Baseline clustering algorithms: k-means (ED centroids) and k-medoids
// (PAM-style, any distance measure). These are the comparison points for
// k-Shape in the clustering ablation — the setting in which the paper cites
// cross-correlation's state-of-the-art results.

#ifndef TSDIST_CLUSTER_KMEANS_H_
#define TSDIST_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "src/cluster/kshape.h"
#include "src/core/distance_measure.h"

namespace tsdist {

/// Configuration shared by the baseline algorithms.
struct KMeansOptions {
  std::size_t k = 3;
  int max_iterations = 50;
  std::uint64_t seed = 1;
};

/// Lloyd's k-means with Euclidean distance and mean centroids, k-means++
/// initialization.
ClusteringResult KMeans(const std::vector<TimeSeries>& series,
                        const KMeansOptions& options);

/// k-medoids (alternating PAM): centroids are actual series, assignment and
/// medoid update use `measure` (any distance, e.g. DTW or SBD).
ClusteringResult KMedoids(const std::vector<TimeSeries>& series,
                          const DistanceMeasure& measure,
                          const KMeansOptions& options);

}  // namespace tsdist

#endif  // TSDIST_CLUSTER_KMEANS_H_
