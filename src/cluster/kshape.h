// k-Shape clustering (Paparrizos & Gravano, SIGMOD'15).
//
// The clustering algorithm built on the cross-correlation machinery this
// paper re-centers: assignment uses the Shape-Based Distance (NCCc), and
// each centroid is the "shape extraction" solution — the series maximizing
// the summed squared normalized correlation to the (shift-aligned) cluster
// members, i.e. the principal eigenvector of a centered Gram matrix of the
// aligned members. The paper cites k-Shape's state-of-the-art clustering
// results as evidence for cross-correlation's strength (Section 6).

#ifndef TSDIST_CLUSTER_KSHAPE_H_
#define TSDIST_CLUSTER_KSHAPE_H_

#include <cstdint>
#include <vector>

#include "src/core/time_series.h"

namespace tsdist {

/// Result of a clustering run.
struct ClusteringResult {
  std::vector<int> assignments;       ///< cluster id per input series
  std::vector<TimeSeries> centroids;  ///< one per cluster
  int iterations = 0;                 ///< iterations until convergence
};

/// Configuration for KShape.
struct KShapeOptions {
  std::size_t k = 3;
  int max_iterations = 30;
  std::uint64_t seed = 1;
};

/// Runs k-Shape on z-normalized series (inputs are re-normalized
/// defensively; k-Shape is defined on z-normalized data).
ClusteringResult KShape(const std::vector<TimeSeries>& series,
                        const KShapeOptions& options);

namespace cluster_internal {

/// Aligns `series` to `reference` by the shift maximizing their
/// cross-correlation (zero-padding the vacated positions).
std::vector<double> AlignToReference(std::span<const double> series,
                                     std::span<const double> reference);

/// Shape extraction: the new centroid of `members` (already aligned to the
/// previous centroid): principal eigenvector of the centered Gram matrix,
/// sign-disambiguated toward the members, z-normalized.
std::vector<double> ExtractShape(const std::vector<std::vector<double>>& members,
                                 std::span<const double> previous_centroid);

}  // namespace cluster_internal

}  // namespace tsdist

#endif  // TSDIST_CLUSTER_KSHAPE_H_
