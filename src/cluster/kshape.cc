#include "src/cluster/kshape.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/linalg/eigen.h"
#include "src/linalg/matrix.h"
#include "src/linalg/rng.h"
#include "src/normalization/normalization.h"
#include "src/sliding/cross_correlation.h"
#include "src/sliding/ncc_measures.h"

namespace tsdist {

namespace cluster_internal {

std::vector<double> AlignToReference(std::span<const double> series,
                                     std::span<const double> reference) {
  assert(series.size() == reference.size());
  const std::size_t m = series.size();
  std::vector<double> out(m, 0.0);
  if (m == 0) return out;
  // Best lag: maximize cross-correlation of reference against series.
  const std::vector<double> cc = CrossCorrelationSequence(reference, series);
  std::size_t best_w = 0;
  for (std::size_t w = 1; w < cc.size(); ++w) {
    if (cc[w] > cc[best_w]) best_w = w;
  }
  const std::ptrdiff_t shift =
      static_cast<std::ptrdiff_t>(best_w) - static_cast<std::ptrdiff_t>(m - 1);
  // Shift the series by `shift` (zero padding), so it lines up with the
  // reference.
  for (std::size_t i = 0; i < m; ++i) {
    const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(i) - shift;
    if (src >= 0 && src < static_cast<std::ptrdiff_t>(m)) {
      out[i] = series[static_cast<std::size_t>(src)];
    }
  }
  return out;
}

std::vector<double> ExtractShape(const std::vector<std::vector<double>>& members,
                                 std::span<const double> previous_centroid) {
  assert(!members.empty());
  const std::size_t m = members.front().size();
  (void)previous_centroid;

  // Gram matrix S = sum_x x x^T over aligned members.
  Matrix s(m, m);
  for (const auto& x : members) {
    for (std::size_t i = 0; i < m; ++i) {
      if (x[i] == 0.0) continue;
      for (std::size_t j = 0; j < m; ++j) {
        s(i, j) += x[i] * x[j];
      }
    }
  }
  // M = Q S Q with the centering matrix Q = I - (1/m) 1 1^T, computed
  // without materializing Q: (QSQ)_{ij} = S_{ij} - rowmean_i - colmean_j +
  // grandmean.
  std::vector<double> row_mean(m, 0.0);
  double grand = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) row_mean[i] += s(i, j);
    row_mean[i] /= static_cast<double>(m);
    grand += row_mean[i];
  }
  grand /= static_cast<double>(m);
  Matrix centered(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      centered(i, j) = s(i, j) - row_mean[i] - row_mean[j] + grand;
    }
  }

  const EigenDecomposition eig = SymmetricEigen(centered, 1e-9, 30);
  std::vector<double> shape(m);
  for (std::size_t i = 0; i < m; ++i) shape[i] = eig.vectors(i, 0);

  // The eigenvector's sign is arbitrary: pick the orientation that agrees
  // with the members.
  double agreement = 0.0;
  for (const auto& x : members) {
    for (std::size_t i = 0; i < m; ++i) agreement += x[i] * shape[i];
  }
  if (agreement < 0.0) {
    for (double& v : shape) v = -v;
  }
  return ZScoreNormalizer().Apply(std::span<const double>(shape));
}

}  // namespace cluster_internal

ClusteringResult KShape(const std::vector<TimeSeries>& series,
                        const KShapeOptions& options) {
  assert(!series.empty());
  assert(options.k >= 1);
  const std::size_t n = series.size();
  const std::size_t m = series.front().size();
  const std::size_t k = std::min(options.k, n);

  // Defensive z-normalization: k-Shape is defined on z-normalized data.
  const ZScoreNormalizer zscore;
  std::vector<TimeSeries> data;
  data.reserve(n);
  for (const auto& s : series) data.push_back(zscore.Apply(s));

  Rng rng(options.seed);
  ClusteringResult result;
  result.assignments.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    result.assignments[i] = static_cast<int>(rng.UniformInt(k));
  }
  result.centroids.assign(k, TimeSeries(std::vector<double>(m, 0.0)));

  const NccCoefficientDistance sbd;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Refinement: shape extraction per cluster.
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::vector<double>> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.assignments[i] != static_cast<int>(c)) continue;
        members.push_back(cluster_internal::AlignToReference(
            data[i].values(), result.centroids[c].values()));
      }
      if (members.empty()) {
        // Empty cluster: re-seed with a random series.
        result.centroids[c] = data[rng.UniformInt(n)];
        continue;
      }
      result.centroids[c] = TimeSeries(cluster_internal::ExtractShape(
          members, result.centroids[c].values()));
    }
    // Assignment: nearest centroid under SBD.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = result.assignments[i];
      for (std::size_t c = 0; c < k; ++c) {
        const double d =
            sbd.Distance(data[i].values(), result.centroids[c].values());
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (best_c != result.assignments[i]) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
  }
  return result;
}

}  // namespace tsdist
