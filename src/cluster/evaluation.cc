#include "src/cluster/evaluation.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace tsdist {

namespace {

// Contingency counts shared by the pair-counting metrics.
struct PairCounts {
  double same_same = 0.0;  // same cluster in both labelings
  double same_diff = 0.0;
  double diff_same = 0.0;
  double diff_diff = 0.0;
};

PairCounts CountPairs(const std::vector<int>& a, const std::vector<int>& b) {
  assert(a.size() == b.size());
  PairCounts counts;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      const bool same_a = a[i] == a[j];
      const bool same_b = b[i] == b[j];
      if (same_a && same_b) {
        counts.same_same += 1.0;
      } else if (same_a && !same_b) {
        counts.same_diff += 1.0;
      } else if (!same_a && same_b) {
        counts.diff_same += 1.0;
      } else {
        counts.diff_diff += 1.0;
      }
    }
  }
  return counts;
}

}  // namespace

double RandIndex(const std::vector<int>& labels_a,
                 const std::vector<int>& labels_b) {
  if (labels_a.size() < 2) return 1.0;
  const PairCounts c = CountPairs(labels_a, labels_b);
  const double total = c.same_same + c.same_diff + c.diff_same + c.diff_diff;
  return (c.same_same + c.diff_diff) / total;
}

double AdjustedRandIndex(const std::vector<int>& labels_a,
                         const std::vector<int>& labels_b) {
  assert(labels_a.size() == labels_b.size());
  const std::size_t n = labels_a.size();
  if (n < 2) return 1.0;

  // Contingency table.
  std::map<std::pair<int, int>, double> table;
  std::map<int, double> row_sums;
  std::map<int, double> col_sums;
  for (std::size_t i = 0; i < n; ++i) {
    table[{labels_a[i], labels_b[i]}] += 1.0;
    row_sums[labels_a[i]] += 1.0;
    col_sums[labels_b[i]] += 1.0;
  }
  auto choose2 = [](double x) { return x * (x - 1.0) / 2.0; };
  double sum_table = 0.0, sum_rows = 0.0, sum_cols = 0.0;
  for (const auto& [key, v] : table) sum_table += choose2(v);
  for (const auto& [key, v] : row_sums) sum_rows += choose2(v);
  for (const auto& [key, v] : col_sums) sum_cols += choose2(v);
  const double total_pairs = choose2(static_cast<double>(n));
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  if (max_index == expected) return 1.0;  // degenerate (single cluster both)
  return (sum_table - expected) / (max_index - expected);
}

double Purity(const std::vector<int>& predicted,
              const std::vector<int>& truth) {
  assert(predicted.size() == truth.size());
  if (predicted.empty()) return 1.0;
  std::map<int, std::map<int, std::size_t>> per_cluster;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    per_cluster[predicted[i]][truth[i]] += 1;
  }
  std::size_t majority_total = 0;
  for (const auto& [cluster, votes] : per_cluster) {
    std::size_t best = 0;
    for (const auto& [cls, count] : votes) best = std::max(best, count);
    majority_total += best;
  }
  return static_cast<double>(majority_total) /
         static_cast<double>(predicted.size());
}

}  // namespace tsdist
