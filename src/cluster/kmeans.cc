#include "src/cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/linalg/rng.h"
#include "src/lockstep/minkowski_family.h"

namespace tsdist {

namespace {

// k-means++ seeding under the given measure: first centroid uniform, each
// next chosen with probability proportional to squared distance to the
// nearest chosen centroid.
std::vector<std::size_t> PlusPlusSeed(const std::vector<TimeSeries>& series,
                                      const DistanceMeasure& measure,
                                      std::size_t k, Rng& rng) {
  const std::size_t n = series.size();
  std::vector<std::size_t> chosen;
  chosen.push_back(rng.UniformInt(n));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (chosen.size() < k) {
    const auto& last = series[chosen.back()];
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = measure.Distance(series[i].values(), last.values());
      min_dist[i] = std::min(min_dist[i], d * d);
      total += min_dist[i];
    }
    if (total <= 0.0) {
      chosen.push_back(rng.UniformInt(n));
      continue;
    }
    double target = rng.Uniform() * total;
    std::size_t pick = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= min_dist[i];
      if (target <= 0.0) {
        pick = i;
        break;
      }
    }
    chosen.push_back(pick);
  }
  return chosen;
}

}  // namespace

ClusteringResult KMeans(const std::vector<TimeSeries>& series,
                        const KMeansOptions& options) {
  assert(!series.empty());
  const std::size_t n = series.size();
  const std::size_t m = series.front().size();
  const std::size_t k = std::min(options.k, n);
  const EuclideanDistance ed;
  Rng rng(options.seed);

  ClusteringResult result;
  result.centroids.clear();
  for (std::size_t idx : PlusPlusSeed(series, ed, k, rng)) {
    result.centroids.push_back(series[idx]);
  }
  result.assignments.assign(n, 0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = result.assignments[i];
      for (std::size_t c = 0; c < k; ++c) {
        const double d =
            ed.Distance(series[i].values(), result.centroids[c].values());
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (best_c != result.assignments[i]) {
        result.assignments[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Update: mean centroid; empty clusters re-seed randomly.
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<double> mean(m, 0.0);
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (result.assignments[i] != static_cast<int>(c)) continue;
        ++count;
        for (std::size_t t = 0; t < m; ++t) mean[t] += series[i][t];
      }
      if (count == 0) {
        result.centroids[c] = series[rng.UniformInt(n)];
        continue;
      }
      for (double& v : mean) v /= static_cast<double>(count);
      result.centroids[c] = TimeSeries(std::move(mean));
    }
  }
  return result;
}

ClusteringResult KMedoids(const std::vector<TimeSeries>& series,
                          const DistanceMeasure& measure,
                          const KMeansOptions& options) {
  assert(!series.empty());
  const std::size_t n = series.size();
  const std::size_t k = std::min(options.k, n);
  Rng rng(options.seed);

  std::vector<std::size_t> medoids = PlusPlusSeed(series, measure, k, rng);
  std::vector<int> assignments(n, 0);

  ClusteringResult result;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment to the nearest medoid.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = assignments[i];
      for (std::size_t c = 0; c < k; ++c) {
        const double d =
            measure.Distance(series[i].values(), series[medoids[c]].values());
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      if (best_c != assignments[i]) {
        assignments[i] = best_c;
        changed = true;
      }
    }
    // Medoid update: the member minimizing the summed distance to its
    // cluster.
    for (std::size_t c = 0; c < k; ++c) {
      std::vector<std::size_t> members;
      for (std::size_t i = 0; i < n; ++i) {
        if (assignments[i] == static_cast<int>(c)) members.push_back(i);
      }
      if (members.empty()) {
        medoids[c] = rng.UniformInt(n);
        continue;
      }
      double best_cost = std::numeric_limits<double>::infinity();
      std::size_t best_medoid = medoids[c];
      for (std::size_t candidate : members) {
        double cost = 0.0;
        for (std::size_t other : members) {
          cost += measure.Distance(series[candidate].values(),
                                   series[other].values());
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_medoid = candidate;
        }
      }
      medoids[c] = best_medoid;
    }
    if (!changed && iter > 0) break;
  }

  result.assignments = std::move(assignments);
  result.centroids.clear();
  for (std::size_t idx : medoids) result.centroids.push_back(series[idx]);
  return result;
}

}  // namespace tsdist
