// External clustering evaluation metrics.
//
// Used by the clustering substrate to score partitions against ground-truth
// class labels: Rand index, Adjusted Rand Index (Hubert & Arabie), and
// purity. These are the standard metrics in the k-Shape line of work the
// paper builds on.

#ifndef TSDIST_CLUSTER_EVALUATION_H_
#define TSDIST_CLUSTER_EVALUATION_H_

#include <vector>

namespace tsdist {

/// Rand index in [0, 1]: fraction of pairs on which two labelings agree
/// (same-cluster vs different-cluster).
double RandIndex(const std::vector<int>& labels_a,
                 const std::vector<int>& labels_b);

/// Adjusted Rand Index: Rand index corrected for chance; 1 for identical
/// partitions, ~0 for random ones (can be negative).
double AdjustedRandIndex(const std::vector<int>& labels_a,
                         const std::vector<int>& labels_b);

/// Purity in [0, 1]: each cluster votes for its majority class.
/// `predicted` are cluster ids, `truth` are class labels.
double Purity(const std::vector<int>& predicted, const std::vector<int>& truth);

}  // namespace tsdist

#endif  // TSDIST_CLUSTER_EVALUATION_H_
