#include "src/multivariate/multivariate.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/elastic/dtw.h"
#include "src/elastic/elastic.h"
#include "src/linalg/rng.h"
#include "src/data/generators.h"

namespace tsdist {

MultivariateSeries::MultivariateSeries(
    std::vector<std::vector<double>> channels, int label)
    : channels_(std::move(channels)), label_(label) {
  assert(!channels_.empty());
  for (const auto& c : channels_) {
    assert(c.size() == channels_.front().size());
    (void)c;
  }
}

MultivariateSeries MultivariateSeries::ZNormalized() const {
  std::vector<std::vector<double>> out;
  out.reserve(channels_.size());
  for (const auto& channel : channels_) {
    double mean = 0.0;
    for (double v : channel) mean += v;
    mean /= static_cast<double>(channel.size());
    double var = 0.0;
    for (double v : channel) var += (v - mean) * (v - mean);
    const double stddev =
        std::sqrt(var / static_cast<double>(channel.size()));
    std::vector<double> normalized(channel.size(), 0.0);
    if (stddev > 1e-12) {
      for (std::size_t i = 0; i < channel.size(); ++i) {
        normalized[i] = (channel[i] - mean) / stddev;
      }
    }
    out.push_back(std::move(normalized));
  }
  return MultivariateSeries(std::move(out), label_);
}

double MultivariateEdIndependent::Distance(const MultivariateSeries& a,
                                           const MultivariateSeries& b) const {
  assert(a.num_channels() == b.num_channels());
  assert(a.length() == b.length());
  double total = 0.0;
  for (std::size_t c = 0; c < a.num_channels(); ++c) {
    double acc = 0.0;
    for (std::size_t t = 0; t < a.length(); ++t) {
      const double d = a.at(c, t) - b.at(c, t);
      acc += d * d;
    }
    total += std::sqrt(acc);
  }
  return total;
}

double MultivariateEdDependent::Distance(const MultivariateSeries& a,
                                         const MultivariateSeries& b) const {
  assert(a.num_channels() == b.num_channels());
  assert(a.length() == b.length());
  double acc = 0.0;
  for (std::size_t c = 0; c < a.num_channels(); ++c) {
    for (std::size_t t = 0; t < a.length(); ++t) {
      const double d = a.at(c, t) - b.at(c, t);
      acc += d * d;
    }
  }
  return std::sqrt(acc);
}

MultivariateDtwIndependent::MultivariateDtwIndependent(double delta)
    : delta_(delta) {}

double MultivariateDtwIndependent::Distance(
    const MultivariateSeries& a, const MultivariateSeries& b) const {
  assert(a.num_channels() == b.num_channels());
  const DtwDistance dtw(delta_);
  double total = 0.0;
  for (std::size_t c = 0; c < a.num_channels(); ++c) {
    total += dtw.Distance(a.channel(c), b.channel(c));
  }
  return total;
}

MultivariateDtwDependent::MultivariateDtwDependent(double delta)
    : delta_(delta) {}

double MultivariateDtwDependent::Distance(const MultivariateSeries& a,
                                          const MultivariateSeries& b) const {
  assert(a.num_channels() == b.num_channels());
  assert(a.length() == b.length());
  const std::size_t m = a.length();
  const std::size_t channels = a.num_channels();
  if (m == 0) return 0.0;
  const std::size_t band = elastic_internal::BandWidth(delta_, m);
  constexpr double kInf = std::numeric_limits<double>::infinity();

  auto cell_cost = [&](std::size_t i, std::size_t j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < channels; ++c) {
      const double d = a.at(c, i) - b.at(c, j);
      acc += d * d;
    }
    return acc;
  };

  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const std::size_t lo = (i > band) ? i - band : 1;
    const std::size_t hi = std::min(m, i + band);
    for (std::size_t j = lo; j <= hi; ++j) {
      curr[j] = cell_cost(i - 1, j - 1) +
                std::min({prev[j - 1], prev[j], curr[j - 1]});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double MultivariateOneNnAccuracy(const MultivariateMeasure& measure,
                                 const MultivariateDataset& dataset) {
  if (dataset.test.empty() || dataset.train.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& query : dataset.test) {
    double best = std::numeric_limits<double>::infinity();
    int best_label = -1;
    for (const auto& candidate : dataset.train) {
      const double d = measure.Distance(query, candidate);
      if (d < best) {
        best = d;
        best_label = candidate.label();
      }
    }
    if (best_label == query.label()) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(dataset.test.size());
}

MultivariateDataset MakeMultivariateMotions(
    const MultivariateGeneratorOptions& options) {
  assert(options.num_channels >= 2);
  Rng rng(options.seed);
  const std::size_t m = options.length;

  // Class-specific inter-channel activation schedule: which channel peaks
  // in which third of the series.
  auto make_instance = [&](int cls) {
    std::vector<std::vector<double>> channels(options.num_channels,
                                              std::vector<double>(m, 0.0));
    const double jitter = rng.Uniform(-0.03, 0.03);
    for (std::size_t c = 0; c < options.num_channels; ++c) {
      // Every channel peaks near mid-series; the class signal is the small
      // class-specific lead/lag pattern between the channels (0.06 of the
      // length per step) — a deliberately subtle, coupling-based signal.
      const double lag =
          0.06 * static_cast<double>((c + static_cast<std::size_t>(cls)) % 3);
      const double center = 0.35 + lag + jitter;
      for (std::size_t i = 0; i < m; ++i) {
        const double x =
            (static_cast<double>(i) / static_cast<double>(m) - center) / 0.06;
        channels[c][i] += std::exp(-0.5 * x * x);
      }
      // A common secondary bump shared by all classes (pure distractor).
      for (std::size_t i = 0; i < m; ++i) {
        const double x =
            (static_cast<double>(i) / static_cast<double>(m) - 0.75) / 0.08;
        channels[c][i] += 0.8 * std::exp(-0.5 * x * x);
      }
    }
    // Warping: shared map (channels move together) or per-channel.
    if (options.warp > 0.0) {
      if (options.shared_warp) {
        // One warp applied to all channels: reuse the same RNG state by
        // drawing the warp once via a child generator.
        Rng warp_rng(rng.Next());
        for (auto& channel : channels) {
          Rng channel_rng = warp_rng;  // identical map per channel
          channel = data_internal::TimeWarp(channel, options.warp, channel_rng);
        }
      } else {
        for (auto& channel : channels) {
          channel = data_internal::TimeWarp(channel, options.warp, rng);
        }
      }
    }
    for (auto& channel : channels) {
      for (double& v : channel) v += rng.Gaussian(0.0, options.noise);
    }
    return MultivariateSeries(std::move(channels), cls).ZNormalized();
  };

  MultivariateDataset dataset;
  dataset.name = "MultivariateMotions";
  for (int cls = 0; cls < 3; ++cls) {
    for (std::size_t i = 0; i < options.train_per_class; ++i) {
      dataset.train.push_back(make_instance(cls));
    }
    for (std::size_t i = 0; i < options.test_per_class; ++i) {
      dataset.test.push_back(make_instance(cls));
    }
  }
  return dataset;
}

}  // namespace tsdist
