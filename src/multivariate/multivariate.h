// Multivariate time-series extension (the paper's footnote-1 future work:
// "most of the measures we consider can be extended with some effort for
// ... multivariate time series where each point represents a vector").
//
// Implements the two canonical generalization strategies (Shokoohi-Yekta et
// al., "Generalizing DTW to the multi-dimensional case"):
//  * independent ("_I"): apply the univariate measure per channel and sum —
//    channels may align independently;
//  * dependent ("_D"): replace the pointwise scalar cost with the vector
//    (Euclidean) cost inside a single alignment — channels warp together.
// Provided for ED and DTW, the pair whose I/D gap the multivariate
// literature studies, plus the evaluation plumbing (1-NN over multivariate
// collections) and a labeled multivariate generator.

#ifndef TSDIST_MULTIVARIATE_MULTIVARIATE_H_
#define TSDIST_MULTIVARIATE_MULTIVARIATE_H_

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace tsdist {

/// A multivariate series: c channels of equal length m, plus a label.
class MultivariateSeries {
 public:
  MultivariateSeries() = default;
  /// `channels` must be non-empty and rectangular.
  explicit MultivariateSeries(std::vector<std::vector<double>> channels,
                              int label = -1);

  std::size_t num_channels() const { return channels_.size(); }
  std::size_t length() const {
    return channels_.empty() ? 0 : channels_.front().size();
  }
  const std::vector<double>& channel(std::size_t c) const {
    return channels_[c];
  }
  int label() const { return label_; }

  /// Value of channel c at time t.
  double at(std::size_t c, std::size_t t) const { return channels_[c][t]; }

  /// Z-normalizes every channel independently (the archive convention).
  MultivariateSeries ZNormalized() const;

 private:
  std::vector<std::vector<double>> channels_;
  int label_ = -1;
};

/// Dissimilarity over multivariate series.
class MultivariateMeasure {
 public:
  virtual ~MultivariateMeasure() = default;
  virtual double Distance(const MultivariateSeries& a,
                          const MultivariateSeries& b) const = 0;
  virtual std::string name() const = 0;
};

/// Independent ED: sum over channels of the per-channel ED.
class MultivariateEdIndependent : public MultivariateMeasure {
 public:
  double Distance(const MultivariateSeries& a,
                  const MultivariateSeries& b) const override;
  std::string name() const override { return "ed_i"; }
};

/// Dependent ED: sqrt of the summed squared differences over all channels
/// and positions (ED on the stacked vectors).
class MultivariateEdDependent : public MultivariateMeasure {
 public:
  double Distance(const MultivariateSeries& a,
                  const MultivariateSeries& b) const override;
  std::string name() const override { return "ed_d"; }
};

/// Independent DTW: sum over channels of univariate DTW (each channel
/// aligns on its own warping path).
class MultivariateDtwIndependent : public MultivariateMeasure {
 public:
  explicit MultivariateDtwIndependent(double delta = 100.0);
  double Distance(const MultivariateSeries& a,
                  const MultivariateSeries& b) const override;
  std::string name() const override { return "dtw_i"; }

 private:
  double delta_;
};

/// Dependent DTW: one warping path; the cell cost is the squared Euclidean
/// distance between the channel vectors at the aligned positions.
class MultivariateDtwDependent : public MultivariateMeasure {
 public:
  explicit MultivariateDtwDependent(double delta = 100.0);
  double Distance(const MultivariateSeries& a,
                  const MultivariateSeries& b) const override;
  std::string name() const override { return "dtw_d"; }

 private:
  double delta_;
};

/// Labeled multivariate dataset (train/test).
struct MultivariateDataset {
  std::string name;
  std::vector<MultivariateSeries> train;
  std::vector<MultivariateSeries> test;
};

/// 1-NN test accuracy of `measure` on `dataset`.
double MultivariateOneNnAccuracy(const MultivariateMeasure& measure,
                                 const MultivariateDataset& dataset);

/// Options for the multivariate generator.
struct MultivariateGeneratorOptions {
  std::size_t length = 64;
  std::size_t num_channels = 3;
  std::size_t train_per_class = 10;
  std::size_t test_per_class = 10;
  double noise = 0.15;
  double warp = 0.0;   ///< per-channel local warp (independent per channel)
  bool shared_warp = false;  ///< warp all channels with the same time map
  std::uint64_t seed = 1;
};

/// Motion-capture-like generator: 3 classes of coordinated channel bumps
/// (classes differ in the inter-channel activation pattern). With
/// shared_warp the channels warp together (favouring the dependent
/// strategy); otherwise each channel warps independently (favouring the
/// independent strategy).
MultivariateDataset MakeMultivariateMotions(
    const MultivariateGeneratorOptions& options);

}  // namespace tsdist

#endif  // TSDIST_MULTIVARIATE_MULTIVARIATE_H_
