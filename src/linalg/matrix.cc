#include "src/linalg/matrix.h"

#include <cmath>
#include <utility>

namespace tsdist {

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  assert(data_.size() == rows_ * cols_);
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order keeps the innermost accesses contiguous for row-major
  // storage.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.data_.data() + k * other.cols_;
      double* orow = out.data_.data() + i * other.cols_;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

Matrix Matrix::Identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

}  // namespace tsdist
