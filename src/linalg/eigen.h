// Symmetric eigendecomposition (cyclic Jacobi).
//
// Used by the embedding measures: GRAIL and SPIRAL both project data through
// the eigendecomposition of a small landmark kernel matrix (Nystrom
// approximation). Kernel matrices are symmetric positive semi-definite, so
// the Jacobi method — simple, robust, and accurate for small dense systems —
// is the right tool.

#ifndef TSDIST_LINALG_EIGEN_H_
#define TSDIST_LINALG_EIGEN_H_

#include <vector>

#include "src/linalg/matrix.h"

namespace tsdist {

/// Result of a symmetric eigendecomposition: A = V * diag(values) * V^T.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column j of this matrix is the eigenvector for values[j].
  Matrix vectors;
};

/// Decomposes a symmetric matrix with the cyclic Jacobi method.
/// `a` must be square and symmetric; asymmetry below 1e-9 is tolerated and
/// symmetrized. Converges to off-diagonal Frobenius norm < tol.
EigenDecomposition SymmetricEigen(const Matrix& a, double tol = 1e-12,
                                  int max_sweeps = 100);

}  // namespace tsdist

#endif  // TSDIST_LINALG_EIGEN_H_
