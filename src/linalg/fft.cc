#include "src/linalg/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tsdist {

namespace {

constexpr double kPi = std::numbers::pi;

// Reorders `a` by bit-reversed index, the first stage of the iterative FFT.
void BitReversePermute(std::vector<std::complex<double>>& a) {
  const std::size_t n = a.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
}

}  // namespace

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  assert(n > 0 && (n & (n - 1)) == 0 && "size must be a power of two");
  BitReversePermute(a);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) *
                         (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv_n;
  }
}

std::vector<std::complex<double>> FftAnySize(
    std::span<const std::complex<double>> a, bool inverse) {
  const std::size_t n = a.size();
  if (n == 0) return {};
  if ((n & (n - 1)) == 0) {
    std::vector<std::complex<double>> out(a.begin(), a.end());
    Fft(out, inverse);
    return out;
  }
  // Bluestein's algorithm: express the DFT as a convolution of chirped
  // sequences, evaluated with power-of-two FFTs.
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<std::complex<double>> chirp(n);
  for (std::size_t i = 0; i < n; ++i) {
    // i^2 mod 2n avoids precision loss for large i.
    const double k = static_cast<double>((i * i) % (2 * n));
    const double angle = sign * kPi * k / static_cast<double>(n);
    chirp[i] = std::complex<double>(std::cos(angle), std::sin(angle));
  }
  const std::size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<std::complex<double>> fa(m, {0.0, 0.0});
  std::vector<std::complex<double>> fb(m, {0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) fa[i] = a[i] * chirp[i];
  fb[0] = std::conj(chirp[0]);
  for (std::size_t i = 1; i < n; ++i) {
    fb[i] = fb[m - i] = std::conj(chirp[i]);
  }
  Fft(fa, /*inverse=*/false);
  Fft(fb, /*inverse=*/false);
  for (std::size_t i = 0; i < m; ++i) fa[i] *= fb[i];
  Fft(fa, /*inverse=*/true);
  std::vector<std::complex<double>> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = fa[i] * chirp[i];
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : out) x *= inv_n;
  }
  return out;
}

std::vector<std::complex<double>> NaiveDft(
    std::span<const std::complex<double>> a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<std::complex<double>> out(n, {0.0, 0.0});
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double angle =
          sign * 2.0 * kPi * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += a[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : out) x *= inv_n;
  }
  return out;
}

std::vector<double> CrossCorrelationFft(std::span<const double> x,
                                        std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t m = x.size();
  if (m == 0) return {};
  const std::size_t n = NextPowerOfTwo(2 * m - 1);
  std::vector<std::complex<double>> fx(n, {0.0, 0.0});
  std::vector<std::complex<double>> fy(n, {0.0, 0.0});
  for (std::size_t i = 0; i < m; ++i) {
    fx[i] = std::complex<double>(x[i], 0.0);
    fy[i] = std::complex<double>(y[i], 0.0);
  }
  Fft(fx, /*inverse=*/false);
  Fft(fy, /*inverse=*/false);
  for (std::size_t i = 0; i < n; ++i) fx[i] *= std::conj(fy[i]);
  Fft(fx, /*inverse=*/true);
  // fx[k] now holds sum_i x[i + k] * y[i] for lag k (circularly); negative
  // lags wrap to the tail of the buffer.
  std::vector<double> out(2 * m - 1, 0.0);
  for (std::size_t w = 0; w < 2 * m - 1; ++w) {
    const std::ptrdiff_t k =
        static_cast<std::ptrdiff_t>(w) - static_cast<std::ptrdiff_t>(m - 1);
    const std::size_t idx =
        k >= 0 ? static_cast<std::size_t>(k) : n - static_cast<std::size_t>(-k);
    out[w] = fx[idx].real();
  }
  return out;
}

std::vector<double> CrossCorrelationNaive(std::span<const double> x,
                                          std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t m = x.size();
  if (m == 0) return {};
  std::vector<double> out(2 * m - 1, 0.0);
  for (std::size_t w = 0; w < 2 * m - 1; ++w) {
    const std::ptrdiff_t k =
        static_cast<std::ptrdiff_t>(w) - static_cast<std::ptrdiff_t>(m - 1);
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const std::ptrdiff_t xi = static_cast<std::ptrdiff_t>(i) + k;
      if (xi < 0 || xi >= static_cast<std::ptrdiff_t>(m)) continue;
      acc += x[static_cast<std::size_t>(xi)] * y[i];
    }
    out[w] = acc;
  }
  return out;
}

}  // namespace tsdist
