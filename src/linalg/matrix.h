// Minimal dense row-major matrix used by the dissimilarity engine and the
// embedding measures. Not a general-purpose linear algebra library: it
// implements exactly the operations the study needs (products, transpose,
// row views) with contiguous storage for cache efficiency.

#ifndef TSDIST_LINALG_MATRIX_H_
#define TSDIST_LINALG_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows-by-cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a matrix from row-major data; `data.size()` must equal
  /// `rows * cols`.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Read-only view of row r.
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  /// Mutable view of row r.
  std::span<double> mutable_row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  const std::vector<double>& data() const { return data_; }

  /// Matrix product this * other.
  Matrix Multiply(const Matrix& other) const;

  /// Transposed copy.
  Matrix Transposed() const;

  /// True when dimensions and all entries match `other` within `tol`.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// Identity matrix of size n.
  static Matrix Identity(std::size_t n);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace tsdist

#endif  // TSDIST_LINALG_MATRIX_H_
