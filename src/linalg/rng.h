// Deterministic random number generation.
//
// Everything stochastic in the library (synthetic archive generation, random
// warping series, dictionary initialization) flows through this generator so
// that a (seed, parameters) pair fully determines the output — the paper's
// evaluation framework is "as close to deterministic as possible".

#ifndef TSDIST_LINALG_RNG_H_
#define TSDIST_LINALG_RNG_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace tsdist {

/// xoshiro256** generator seeded via SplitMix64. Small, fast, and fully
/// reproducible across platforms (no reliance on libstdc++ distribution
/// implementations, whose outputs differ between standard libraries).
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n); n must be positive.
  std::size_t UniformInt(std::size_t n);

  /// Standard normal deviate (Box-Muller, cached pair).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::size_t> Permutation(std::size_t n);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace tsdist

#endif  // TSDIST_LINALG_RNG_H_
