// Fast Fourier Transform and FFT-based cross-correlation.
//
// Cross-correlation is the core primitive of the sliding measures (Section 6
// of the paper): its naive cost is O(m^2) but drops to O(m log m) with the
// FFT, the property that made the measure practical after Cooley-Tukey. We
// implement an iterative radix-2 transform for power-of-two sizes and
// Bluestein's chirp-z algorithm for arbitrary sizes.

#ifndef TSDIST_LINALG_FFT_H_
#define TSDIST_LINALG_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace tsdist {

/// Smallest power of two >= n (n >= 1).
std::size_t NextPowerOfTwo(std::size_t n);

/// In-place iterative radix-2 FFT. `a.size()` must be a power of two.
/// When `inverse` is true computes the inverse transform including the 1/N
/// scaling.
void Fft(std::vector<std::complex<double>>& a, bool inverse);

/// FFT of arbitrary size via Bluestein's algorithm (falls back to radix-2
/// when the size is a power of two). Returns the transformed sequence.
std::vector<std::complex<double>> FftAnySize(
    std::span<const std::complex<double>> a, bool inverse);

/// Naive O(n^2) DFT, used as a correctness oracle in tests.
std::vector<std::complex<double>> NaiveDft(
    std::span<const std::complex<double>> a, bool inverse);

/// Full linear cross-correlation sequence of two equal-length real series.
///
/// Returns a vector of length 2m-1 whose entry w (0-based) corresponds to
/// lag k = w - (m - 1):
///   result[w] = sum_i x[i + k] * y[i]   over valid indices i.
/// Entry w = m-1 (lag 0) is the plain inner product <x, y>.
/// Cost: O(m log m).
std::vector<double> CrossCorrelationFft(std::span<const double> x,
                                        std::span<const double> y);

/// Reference O(m^2) implementation of CrossCorrelationFft with identical
/// output layout; used for testing and for very short series.
std::vector<double> CrossCorrelationNaive(std::span<const double> x,
                                          std::span<const double> y);

}  // namespace tsdist

#endif  // TSDIST_LINALG_FFT_H_
