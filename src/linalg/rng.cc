#include "src/linalg/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tsdist {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // Use the top 53 bits for a uniformly distributed double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

std::size_t Rng::UniformInt(std::size_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return static_cast<std::size_t>(v % n);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = Uniform();
  } while (u1 <= 0.0);
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<std::size_t> Rng::Permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = UniformInt(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

}  // namespace tsdist
