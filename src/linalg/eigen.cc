#include "src/linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "src/obs/log.h"
#include "src/obs/obs.h"
#include "src/resilience/fault.h"

namespace tsdist {

EigenDecomposition SymmetricEigen(const Matrix& a, double tol, int max_sweeps) {
  // These used to be asserts — gone under NDEBUG, turning a malformed kernel
  // matrix into an out-of-bounds read or a silent garbage decomposition deep
  // inside GRAIL/SPIRAL. Reject loudly instead; embedding Fit() catches and
  // records the failure per dataset.
  if (a.rows() != a.cols()) {
    throw std::invalid_argument(
        "SymmetricEigen: matrix is not square (" + std::to_string(a.rows()) +
        "x" + std::to_string(a.cols()) + ")");
  }
  if (max_sweeps < 1) {
    throw std::invalid_argument("SymmetricEigen: max_sweeps must be >= 1, got " +
                                std::to_string(max_sweeps));
  }
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (!std::isfinite(a(i, j))) {
        throw std::invalid_argument(
            "SymmetricEigen: non-finite entry at (" + std::to_string(i) + ", " +
            std::to_string(j) + ")");
      }
    }
  }
  fault::Hit(fault::sites::kEigensolve);
  const std::size_t n = a.rows();
  const obs::TraceSpan span(
      obs::TraceRecorder::Global().enabled()
          ? "linalg.eigen/n=" + std::to_string(n)
          : std::string());
  obs::Histogram* eigen_ns = nullptr;
  obs::Counter* eigen_calls = nullptr;
  obs::Counter* eigen_sweeps = nullptr;
  if (obs::Enabled()) {
    auto& metrics = obs::MetricsRegistry::Global();
    eigen_ns = &metrics.GetHistogram("tsdist.linalg.eigen_ns");
    eigen_calls = &metrics.GetCounter("tsdist.linalg.eigen_calls");
    eigen_sweeps = &metrics.GetCounter("tsdist.linalg.eigen_sweeps");
  }
  obs::ScopedTimer timer(eigen_ns, eigen_calls);
  int sweeps_run = 0;
  // Work on a symmetrized copy to absorb tiny numerical asymmetry.
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
  Matrix v = Matrix::Identity(n);
  double frobenius = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) frobenius += m(i, j) * m(i, j);
  }
  frobenius = std::sqrt(frobenius);

  auto off_diagonal_norm = [&m, n]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) acc += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * acc);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() < tol) break;
    ++sweeps_run;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Choose the smaller rotation for numerical stability.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  if (eigen_sweeps != nullptr) {
    eigen_sweeps->Add(static_cast<std::uint64_t>(sweeps_run));
  }

  // The loop used to exit silently at max_sweeps, handing callers a garbage
  // decomposition. Accept either the caller's absolute tolerance or the
  // relative stagnation floor — cyclic Jacobi legitimately plateaus near
  // eps * ||A||_F for large-norm matrices, and throwing there would be a
  // false alarm — and reject everything else (e.g. a NaN-poisoned spin).
  const double off = off_diagonal_norm();
  if (!(off < tol) && !(off <= 1e-12 * frobenius)) {
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("tsdist.linalg.eigen_failures")
          .Add(1);
    }
    TSDIST_LOG(obs::LogLevel::kWarn, "eigensolver did not converge",
               obs::F("n", static_cast<std::uint64_t>(n)),
               obs::F("sweeps", sweeps_run), obs::F("off_diagonal_norm", off),
               obs::F("tol", tol));
    throw std::runtime_error(
        "SymmetricEigen: no convergence after " + std::to_string(sweeps_run) +
        " sweeps (off-diagonal norm " + std::to_string(off) + ", tol " +
        std::to_string(tol) + ", n=" + std::to_string(n) + ")");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::sort(order.begin(), order.end(),
            [&diag](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

}  // namespace tsdist
