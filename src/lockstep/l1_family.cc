#include "src/lockstep/l1_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::SafeDiv;

double SorensenDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += a[i] + b[i];
  }
  return SafeDiv(num, den);
}

double GowerDistance::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc / static_cast<double>(a.size());
}

double SoergelDistance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += std::max(a[i], b[i]);
  }
  return SafeDiv(num, den);
}

double KulczynskiDDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += std::min(a[i], b[i]);
  }
  return SafeDiv(num, den);
}

double CanberraDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeDiv(std::fabs(a[i] - b[i]), a[i] + b[i]);
  }
  return acc;
}

double LorentzianDistance::Distance(std::span<const double> a,
                                    std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::log1p(std::fabs(a[i] - b[i]));
  }
  return acc;
}

}  // namespace tsdist
