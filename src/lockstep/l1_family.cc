#include "src/lockstep/l1_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tsdist {

using lockstep_internal::NanMax;
using lockstep_internal::NanMin;
using lockstep_internal::SafeDiv;

double SorensenDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += a[i] + b[i];
  }
  return SafeDiv(num, den);
}

double GowerDistance::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc / static_cast<double>(a.size());
}

double SoergelDistance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += NanMax(a[i], b[i]);
  }
  return SafeDiv(num, den);
}

double KulczynskiDDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::fabs(a[i] - b[i]);
    den += NanMin(a[i], b[i]);
  }
  return SafeDiv(num, den);
}

double CanberraDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeDiv(std::fabs(a[i] - b[i]), a[i] + b[i]);
  }
  return acc;
}

double LorentzianDistance::Distance(std::span<const double> a,
                                    std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::log1p(std::fabs(a[i] - b[i]));
  }
  return acc;
}


// Early-abandoning variants for the two members whose per-point terms are
// always non-negative (Canberra's clamped division can go negative, and the
// ratio measures need the full denominator; they keep the default full
// computation). Accumulation mirrors Distance() exactly, so completed scans
// return bit-identical values; an abandon returns +infinity per the
// contract in src/core/distance_measure.h.

namespace {
constexpr std::size_t kAbandonCheckEvery = 16;
constexpr double kAbandonInf = std::numeric_limits<double>::infinity();
}  // namespace

double GowerDistance::EarlyAbandonDistance(std::span<const double> a,
                                           std::span<const double> b,
                                           double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  const double count = static_cast<double>(m);
  // Transform the cutoff into accumulator domain once instead of dividing
  // the partial sum at every abandon check (acc / m >= cutoff <=>
  // acc >= cutoff * m for m > 0). Completed scans divide exactly as
  // Distance() does, so their value is bit-identical.
  const double raw_cutoff = cutoff * count;
  double acc = 0.0;
  std::size_t i = 0;
  while (i < m) {
    const std::size_t stop = std::min(m, i + kAbandonCheckEvery);
    for (; i < stop; ++i) {
      acc += std::fabs(a[i] - b[i]);
    }
    if (i < m && acc >= raw_cutoff) return kAbandonInf;
  }
  return acc / count;
}

double LorentzianDistance::EarlyAbandonDistance(std::span<const double> a,
                                                std::span<const double> b,
                                                double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  double acc = 0.0;
  std::size_t i = 0;
  while (i < m) {
    const std::size_t stop = std::min(m, i + kAbandonCheckEvery);
    for (; i < stop; ++i) {
      acc += std::log1p(std::fabs(a[i] - b[i]));
    }
    if (i < m && acc >= cutoff) return kAbandonInf;
  }
  return acc;
}

}  // namespace tsdist
