#include "src/lockstep/extra_measures.h"

#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::kEps;

double DissimDistance::Distance(std::span<const double> a,
                                std::span<const double> b) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  if (m == 0) return 0.0;
  if (m == 1) return std::fabs(a[0] - b[0]);
  // Trapezoid approximation of the time integral of |a(t) - b(t)|.
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const double d0 = std::fabs(a[i] - b[i]);
    const double d1 = std::fabs(a[i + 1] - b[i + 1]);
    acc += 0.5 * (d0 + d1);
  }
  return acc;
}

double AdaptiveScalingDistance::Distance(std::span<const double> a,
                                         std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot_ab = 0.0, dot_bb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot_ab += a[i] * b[i];
    dot_bb += b[i] * b[i];
  }
  const double alpha = dot_bb < kEps ? 0.0 : dot_ab / dot_bb;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - alpha * b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace tsdist
