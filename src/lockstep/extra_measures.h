// The two lock-step measures outside the Cha survey that the paper adds:
// DISSIM and the Adaptive Scaling Distance (ASD).

#ifndef TSDIST_LOCKSTEP_EXTRA_MEASURES_H_
#define TSDIST_LOCKSTEP_EXTRA_MEASURES_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// DISSIM (Frentzos et al., ICDE'07): defines distance as the definite
/// integral over time of the Euclidean distance between the series, to
/// accommodate different sampling rates. For uniformly sampled series the
/// integral is approximated by the trapezoid rule over per-point distances —
/// "a modified version of ED that considers in the distance of the i-th
/// points the (i+1)-th points", i.e. a smoothing of ED.
class DissimDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "dissim"; }
};

/// Adaptive Scaling Distance (Chu & Wong, PODS'99; Yang & Leskovec, WSDM'11):
/// embeds the AdaptiveScaling normalization into the comparison — each pair
/// is compared under the optimal scaling factor alpha* = <a,b>/<b,b> that
/// minimizes ||a - alpha*b||, and the distance is ED(a, alpha* b).
/// Asymmetric: the scaling factor is fitted to the second argument.
class AdaptiveScalingDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "asd"; }
  bool symmetric() const override { return false; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_EXTRA_MEASURES_H_
