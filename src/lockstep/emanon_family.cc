#include "src/lockstep/emanon_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::SafeDiv;

double Emanon1Distance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeDiv(std::fabs(a[i] - b[i]), std::min(a[i], b[i]));
  }
  return acc;
}

double Emanon2Distance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    const double mn = std::min(a[i], b[i]);
    acc += SafeDiv(d * d, mn * mn);
  }
  return acc;
}

double Emanon3Distance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d, std::min(a[i], b[i]));
  }
  return acc;
}

double Emanon4Distance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d, std::max(a[i], b[i]));
  }
  return acc;
}

double MaxSymmetricChiSqDistance::Distance(std::span<const double> a,
                                           std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc_a = 0.0, acc_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc_a += SafeDiv(d * d, a[i]);
    acc_b += SafeDiv(d * d, b[i]);
  }
  return std::max(acc_a, acc_b);
}

}  // namespace tsdist
