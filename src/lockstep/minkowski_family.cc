#include "src/lockstep/minkowski_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

double EuclideanDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double ManhattanDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc;
}

double ChebyshevDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

MinkowskiDistance::MinkowskiDistance(double p) : p_(p) {
  assert(p_ > 0.0);
}

double MinkowskiDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::pow(std::fabs(a[i] - b[i]), p_);
  }
  return std::pow(acc, 1.0 / p_);
}

}  // namespace tsdist
