#include "src/lockstep/minkowski_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tsdist {

double EuclideanDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

double ManhattanDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return acc;
}

double ChebyshevDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    best = std::max(best, std::fabs(a[i] - b[i]));
  }
  return best;
}

MinkowskiDistance::MinkowskiDistance(double p) : p_(p) {
  assert(p_ > 0.0);
}

double MinkowskiDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::pow(std::fabs(a[i] - b[i]), p_);
  }
  return std::pow(acc, 1.0 / p_);
}


// Early-abandoning variants. Accumulation mirrors Distance() exactly (same
// order, same operations), so a completed scan returns a bit-identical
// value; the cutoff is checked once per block of kAbandonCheckEvery points
// against the final transformation of the partial accumulation, which is
// monotone in the accumulator, so an abandon implies the completed distance
// would also have reached the cutoff.

namespace {
constexpr std::size_t kAbandonCheckEvery = 16;
constexpr double kAbandonInf = std::numeric_limits<double>::infinity();
}  // namespace

double EuclideanDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  double acc = 0.0;
  std::size_t i = 0;
  while (i < m) {
    const std::size_t stop = std::min(m, i + kAbandonCheckEvery);
    for (; i < stop; ++i) {
      const double d = a[i] - b[i];
      acc += d * d;
    }
    if (i < m && std::sqrt(acc) >= cutoff) return kAbandonInf;
  }
  return std::sqrt(acc);
}

double ManhattanDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  double acc = 0.0;
  std::size_t i = 0;
  while (i < m) {
    const std::size_t stop = std::min(m, i + kAbandonCheckEvery);
    for (; i < stop; ++i) {
      acc += std::fabs(a[i] - b[i]);
    }
    if (i < m && acc >= cutoff) return kAbandonInf;
  }
  return acc;
}

double ChebyshevDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  double best = 0.0;
  std::size_t i = 0;
  while (i < m) {
    const std::size_t stop = std::min(m, i + kAbandonCheckEvery);
    for (; i < stop; ++i) {
      best = std::max(best, std::fabs(a[i] - b[i]));
    }
    if (i < m && best >= cutoff) return kAbandonInf;
  }
  return best;
}

double MinkowskiDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  assert(a.size() == b.size());
  const std::size_t m = a.size();
  double acc = 0.0;
  std::size_t i = 0;
  while (i < m) {
    const std::size_t stop = std::min(m, i + kAbandonCheckEvery);
    for (; i < stop; ++i) {
      acc += std::pow(std::fabs(a[i] - b[i]), p_);
    }
    if (i < m && std::pow(acc, 1.0 / p_) >= cutoff) return kAbandonInf;
  }
  return std::pow(acc, 1.0 / p_);
}

}  // namespace tsdist
