#include "src/lockstep/minkowski_family.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "src/lockstep/kernel_backed.h"
#include "src/simd/lockstep_kernels.h"

namespace tsdist {

using lockstep_internal::Identity;
using lockstep_internal::KernelDistanceBatch;
using lockstep_internal::KernelEaDistance;
using lockstep_internal::KernelEaDistanceBatch;
using lockstep_internal::Square;

namespace {
double Sqrt(double v) { return std::sqrt(v); }
}  // namespace

// --- Euclidean -------------------------------------------------------------

double EuclideanDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  return std::sqrt(simd::Kernels().sum_sq(a.data(), b.data(), a.size()));
}

double EuclideanDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  return KernelEaDistance(simd::Kernels().sum_sq_ea, a, b, cutoff, Square,
                          Sqrt);
}

void EuclideanDistance::DistanceBatch(SeriesView query,
                                      std::span<const SeriesView> refs,
                                      std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_sq, query, refs, out, Sqrt);
}

void EuclideanDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  KernelEaDistanceBatch(simd::Kernels().sum_sq_ea, query, refs, cutoff, out,
                        Square, Sqrt);
}

// --- Manhattan -------------------------------------------------------------

double ManhattanDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().sum_abs(a.data(), b.data(), a.size());
}

double ManhattanDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  return KernelEaDistance(simd::Kernels().sum_abs_ea, a, b, cutoff, Identity,
                          Identity);
}

void ManhattanDistance::DistanceBatch(SeriesView query,
                                      std::span<const SeriesView> refs,
                                      std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_abs, query, refs, out, Identity);
}

void ManhattanDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  KernelEaDistanceBatch(simd::Kernels().sum_abs_ea, query, refs, cutoff, out,
                        Identity, Identity);
}

// --- Chebyshev -------------------------------------------------------------

double ChebyshevDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().max_abs(a.data(), b.data(), a.size());
}

double ChebyshevDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  return KernelEaDistance(simd::Kernels().max_abs_ea, a, b, cutoff, Identity,
                          Identity);
}

void ChebyshevDistance::DistanceBatch(SeriesView query,
                                      std::span<const SeriesView> refs,
                                      std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().max_abs, query, refs, out, Identity);
}

void ChebyshevDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  KernelEaDistanceBatch(simd::Kernels().max_abs_ea, query, refs, cutoff, out,
                        Identity, Identity);
}

// --- Minkowski(p) ----------------------------------------------------------

MinkowskiDistance::MinkowskiDistance(double p) : p_(p) {
  if (!(p_ > 0.0)) {
    throw std::invalid_argument(
        "MinkowskiDistance: p must be > 0, got p=" + std::to_string(p_));
  }
}

double MinkowskiDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  if (p_ == 2.0) {
    return std::sqrt(simd::Kernels().sum_sq(a.data(), b.data(), a.size()));
  }
  if (p_ == 1.0) {
    return simd::Kernels().sum_abs(a.data(), b.data(), a.size());
  }
  return std::pow(simd::SumPowAbsDiff(a.data(), b.data(), a.size(), p_),
                  1.0 / p_);
}

double MinkowskiDistance::EarlyAbandonDistance(std::span<const double> a,
                                               std::span<const double> b,
                                               double cutoff) const {
  assert(a.size() == b.size());
  if (p_ == 2.0) {
    return KernelEaDistance(simd::Kernels().sum_sq_ea, a, b, cutoff, Square,
                            Sqrt);
  }
  if (p_ == 1.0) {
    return KernelEaDistance(simd::Kernels().sum_abs_ea, a, b, cutoff,
                            Identity, Identity);
  }
  return std::pow(simd::SumPowAbsDiffEa(a.data(), b.data(), a.size(), p_,
                                        std::pow(cutoff, p_)),
                  1.0 / p_);
}

void MinkowskiDistance::DistanceBatch(SeriesView query,
                                      std::span<const SeriesView> refs,
                                      std::span<double> out) const {
  if (p_ == 2.0) {
    KernelDistanceBatch(simd::Kernels().sum_sq, query, refs, out, Sqrt);
    return;
  }
  if (p_ == 1.0) {
    KernelDistanceBatch(simd::Kernels().sum_abs, query, refs, out, Identity);
    return;
  }
  assert(out.size() == refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    out[i] = Distance(query, refs[i]);
  }
}

void MinkowskiDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  if (p_ == 2.0) {
    KernelEaDistanceBatch(simd::Kernels().sum_sq_ea, query, refs, cutoff, out,
                          Square, Sqrt);
    return;
  }
  if (p_ == 1.0) {
    KernelEaDistanceBatch(simd::Kernels().sum_abs_ea, query, refs, cutoff,
                          out, Identity, Identity);
    return;
  }
  assert(out.size() == refs.size());
  double local = cutoff;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    const double d = EarlyAbandonDistance(query, refs[i], local);
    out[i] = d;
    if (d < local) local = d;
  }
}

}  // namespace tsdist
