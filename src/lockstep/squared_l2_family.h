// Squared-L2 (chi-square) family (8 measures): SquaredEuclidean, Pearson
// chi^2, Neyman chi^2, Squared chi^2, Probabilistic-symmetric chi^2,
// Divergence, Clark, Additive-symmetric chi^2. These weight squared
// differences by the coordinate magnitudes. The Clark distance appears in
// Table 2 of the paper among the measures compared against ED under MinMax.
//
// All eight are backed by the runtime-dispatched SIMD kernels
// (src/simd/lockstep_kernels.h) and override the batch entry points.
// Early-abandoning variants exist only where the per-point terms are
// provably non-negative on arbitrary real input — SquaredEuclidean (d^2),
// Clark (a ratio squared) and Divergence (d^2 over a square) — so partial
// sums grow monotonically. The chi-square measures dividing by raw
// coordinates (Pearson, Neyman, Squared, Prob-symmetric, Additive-symmetric)
// can produce negative terms on real-valued series and keep the
// compute-everything default.

#ifndef TSDIST_LOCKSTEP_SQUARED_L2_FAMILY_H_
#define TSDIST_LOCKSTEP_SQUARED_L2_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Squared Euclidean distance: sum (a-b)^2. Monotone transform of ED (same
/// 1-NN ordering), kept for survey fidelity.
class SquaredEuclideanDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "squared_euclidean"; }
};

/// Pearson chi-square: sum (a-b)^2 / b. Asymmetric.
class PearsonChiSqDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  std::string name() const override { return "pearson_chisq"; }
  bool symmetric() const override { return false; }
};

/// Neyman chi-square: sum (a-b)^2 / a. Asymmetric.
class NeymanChiSqDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  std::string name() const override { return "neyman_chisq"; }
  bool symmetric() const override { return false; }
};

/// Squared chi-square: sum (a-b)^2 / (a+b).
class SquaredChiSqDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  std::string name() const override { return "squared_chisq"; }
};

/// Probabilistic symmetric chi-square: 2 * sum (a-b)^2 / (a+b).
class ProbSymmetricChiSqDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  std::string name() const override { return "prob_symmetric_chisq"; }
};

/// Divergence: 2 * sum (a-b)^2 / (a+b)^2.
class DivergenceDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "divergence"; }
};

/// Clark distance: sqrt( sum ( |a-b| / (a+b) )^2 ).
class ClarkDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "clark"; }
};

/// Additive symmetric chi-square: sum (a-b)^2 * (a+b) / (a*b).
class AdditiveSymmetricChiSqDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  std::string name() const override { return "additive_symmetric_chisq"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_SQUARED_L2_FAMILY_H_
