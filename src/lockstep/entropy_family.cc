#include "src/lockstep/entropy_family.h"

#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::kEps;
using lockstep_internal::SafeLog;

namespace {

// x * ln(x / y) with both arguments clamped positive; returns 0 when x is at
// or below the clamp (lim_{x->0} x ln x = 0).
double XLogXOverY(double x, double y) {
  if (x < kEps) return 0.0;
  return x * (SafeLog(x) - SafeLog(y));
}

}  // namespace

double KullbackLeiblerDistance::Distance(std::span<const double> a,
                                         std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += XLogXOverY(a[i], b[i]);
  }
  return acc;
}

double JeffreysDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += (a[i] - b[i]) * (SafeLog(a[i]) - SafeLog(b[i]));
  }
  return acc;
}

double KDivergenceDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += XLogXOverY(2.0 * a[i], a[i] + b[i]) / 2.0;
  }
  return acc;
}

double TopsoeDistance::Distance(std::span<const double> a,
                                std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double s = a[i] + b[i];
    acc += XLogXOverY(2.0 * a[i], s) / 2.0 + XLogXOverY(2.0 * b[i], s) / 2.0;
  }
  return acc;
}

double JensenShannonDistance::Distance(std::span<const double> a,
                                       std::span<const double> b) const {
  assert(a.size() == b.size());
  TopsoeDistance topsoe;
  return 0.5 * topsoe.Distance(a, b);
}

double JensenDifferenceDistance::Distance(std::span<const double> a,
                                          std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i] < kEps ? kEps : a[i];
    const double y = b[i] < kEps ? kEps : b[i];
    const double m = 0.5 * (x + y);
    acc += 0.5 * (x * SafeLog(x) + y * SafeLog(y)) - m * SafeLog(m);
  }
  return acc;
}

}  // namespace tsdist
