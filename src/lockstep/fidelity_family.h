// Fidelity (squared-chord) family (5 measures): Fidelity, Bhattacharyya,
// Hellinger, Matusita, SquaredChord. These compare square roots of the
// coordinates — meaningful for non-negative data, so negative products /
// arguments are clamped to zero (see lockstep.h). In the paper's pipeline
// they are paired with MinMax-style normalizations, which keep inputs in the
// valid domain.

#ifndef TSDIST_LOCKSTEP_FIDELITY_FAMILY_H_
#define TSDIST_LOCKSTEP_FIDELITY_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Fidelity dissimilarity: 1 - sum sqrt(a*b).
class FidelityDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "fidelity"; }
};

/// Bhattacharyya distance: -ln( sum sqrt(a*b) ).
class BhattacharyyaDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "bhattacharyya"; }
};

/// Hellinger distance: sqrt( 2 * sum (sqrt(a) - sqrt(b))^2 ).
class HellingerDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "hellinger"; }
};

/// Matusita distance: sqrt( sum (sqrt(a) - sqrt(b))^2 ).
class MatusitaDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "matusita"; }
};

/// Squared-chord distance: sum (sqrt(a) - sqrt(b))^2.
class SquaredChordDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "squaredchord"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_FIDELITY_FAMILY_H_
