// Base class and shared numerical helpers for lock-step measures.
//
// The 52 lock-step measures follow the taxonomy of Cha's 2007 survey
// ("Comprehensive survey on distance/similarity measures between probability
// density functions"), adapted to real-valued time series as in the SIGMOD'20
// study: seven families (Minkowski, L1, Intersection, Inner-product,
// Fidelity, Squared-L2/chi-square, Entropy), three combination measures, five
// "Emanon" measures proposed-but-unnamed in the survey, plus DISSIM and the
// adaptive scaling distance (ASD).
//
// Domain handling: several formulas assume non-negative (probability-like)
// input — they divide by coordinate values or take logs/square roots. Time
// series are arbitrary reals, so, exactly like the practical implementations
// the paper imports, we make the formulas total functions: denominators are
// clamped away from zero (kEps), logarithm arguments are clamped positive,
// and square-root arguments are clamped at zero. Combined with MinMax-style
// normalizations (which the paper shows these measures prefer) the clamps are
// rarely exercised; they only guarantee finite, deterministic output on all
// inputs.
//
// NaN policy: a NaN observation anywhere in either input propagates to the
// distance. Sum-based measures get this for free from IEEE arithmetic, but
// std::min/std::max are comparison-selects that silently DROP a NaN operand
// (the historical Chebyshev bug) — measures folding with min/max must use
// NanMin/NanMax below (or the NaN-tracking max kernel in src/simd/) so a
// corrupt input cannot masquerade as a valid distance.

#ifndef TSDIST_LOCKSTEP_LOCKSTEP_H_
#define TSDIST_LOCKSTEP_LOCKSTEP_H_

#include <cmath>
#include <span>
#include <string>

#include "src/core/distance_measure.h"

namespace tsdist {

/// Common base for O(m) point-wise measures.
class LockStepMeasure : public DistanceMeasure {
 public:
  MeasureCategory category() const override { return MeasureCategory::kLockStep; }
  CostClass cost_class() const override { return CostClass::kLinear; }
};

namespace lockstep_internal {

/// Clamp bound shared by all domain guards.
inline constexpr double kEps = 1e-10;

/// x / y with |y| clamped to at least kEps (sign preserved; exact zero maps
/// to +kEps).
inline double SafeDiv(double x, double y) {
  if (y > -kEps && y < kEps) {
    y = (y < 0.0) ? -kEps : kEps;
  }
  return x / y;
}

/// Natural log with the argument clamped to at least kEps.
inline double SafeLog(double x) { return std::log(x < kEps ? kEps : x); }

/// Square root with negative arguments clamped to zero.
inline double SafeSqrt(double x) { return std::sqrt(x < 0.0 ? 0.0 : x); }

/// NaN-propagating max: returns NaN when either operand is NaN, otherwise
/// the larger operand. std::max would return its first argument instead,
/// silently dropping the NaN.
inline double NanMax(double x, double y) {
  if (x != x) return x;
  if (y != y) return y;
  return x < y ? y : x;
}

/// NaN-propagating min (see NanMax).
inline double NanMin(double x, double y) {
  if (x != x) return x;
  if (y != y) return y;
  return y < x ? y : x;
}

}  // namespace lockstep_internal

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_LOCKSTEP_H_
