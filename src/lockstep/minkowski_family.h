// Lp Minkowski family (4 measures): Euclidean, Manhattan, Chebyshev,
// Minkowski(p). Euclidean distance is the baseline the paper's misconception
// M2 concerns; Minkowski is the only lock-step measure requiring parameter
// tuning (Table 4: p in {0.1 ... 20}).
//
// All four accumulate non-negative per-point terms (or a running max), so
// they override EarlyAbandonDistance: the partial value only grows, and once
// it reaches the cutoff the scan stops and returns +infinity (the abandon
// signal — see the contract in src/core/distance_measure.h).

#ifndef TSDIST_LOCKSTEP_MINKOWSKI_FAMILY_H_
#define TSDIST_LOCKSTEP_MINKOWSKI_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Euclidean (L2-norm) distance: sqrt(sum (a_i - b_i)^2).
class EuclideanDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  std::string name() const override { return "euclidean"; }
  bool is_metric() const override { return true; }
};

/// Manhattan (L1-norm, city block) distance: sum |a_i - b_i|.
class ManhattanDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  std::string name() const override { return "manhattan"; }
  bool is_metric() const override { return true; }
};

/// Chebyshev (L-infinity) distance: max_i |a_i - b_i|.
class ChebyshevDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  std::string name() const override { return "chebyshev"; }
  bool is_metric() const override { return true; }
};

/// Minkowski (Lp-norm) distance: (sum |a_i - b_i|^p)^(1/p). A metric for
/// p >= 1; for 0 < p < 1 it is still a valid dissimilarity (the paper tunes
/// p down to 0.1).
class MinkowskiDistance : public LockStepMeasure {
 public:
  explicit MinkowskiDistance(double p = 2.0);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  std::string name() const override { return "minkowski"; }
  bool is_metric() const override { return p_ >= 1.0; }
  ParamMap params() const override { return {{"p", p_}}; }

 private:
  double p_;
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_MINKOWSKI_FAMILY_H_
