// Lp Minkowski family (4 measures): Euclidean, Manhattan, Chebyshev,
// Minkowski(p). Euclidean distance is the baseline the paper's misconception
// M2 concerns; Minkowski is the only lock-step measure requiring parameter
// tuning (Table 4: p in {0.1 ... 20}).
//
// All four are backed by the runtime-dispatched SIMD kernels
// (src/simd/lockstep_kernels.h) and override the batch entry points, so
// PairwiseEngine row loops run on vectorized code. All four accumulate
// non-negative per-point terms (or a running max), so they also override
// EarlyAbandonDistance: the cutoff is transformed once into accumulator
// domain (cutoff^2 for Euclidean, cutoff^p for Minkowski) and the kernel
// compares raw partial sums against it — see docs/KERNELS.md.

#ifndef TSDIST_LOCKSTEP_MINKOWSKI_FAMILY_H_
#define TSDIST_LOCKSTEP_MINKOWSKI_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Euclidean (L2-norm) distance: sqrt(sum (a_i - b_i)^2).
class EuclideanDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "euclidean"; }
  bool is_metric() const override { return true; }
};

/// Manhattan (L1-norm, city block) distance: sum |a_i - b_i|.
class ManhattanDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "manhattan"; }
  bool is_metric() const override { return true; }
};

/// Chebyshev (L-infinity) distance: max_i |a_i - b_i|. NaN-propagating: a
/// NaN anywhere in either input yields NaN (the family contract; a bare
/// comparison max would silently drop NaN terms).
class ChebyshevDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "chebyshev"; }
  bool is_metric() const override { return true; }
};

/// Minkowski (Lp-norm) distance: (sum |a_i - b_i|^p)^(1/p). A metric for
/// p >= 1; for 0 < p < 1 it is still a valid dissimilarity (the paper tunes
/// p down to 0.1). p == 2 and p == 1 run on the Euclidean / Manhattan
/// kernels; other p share one libm-pow path across all dispatch levels.
class MinkowskiDistance : public LockStepMeasure {
 public:
  /// Throws std::invalid_argument unless p > 0 (p <= 0, NaN, and -inf are
  /// all rejected; the formula is not a dissimilarity there).
  explicit MinkowskiDistance(double p = 2.0);
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  bool has_batch_kernel() const override { return true; }
  void DistanceBatch(SeriesView query, std::span<const SeriesView> refs,
                     std::span<double> out) const override;
  void EarlyAbandonDistanceBatch(SeriesView query,
                                 std::span<const SeriesView> refs,
                                 double cutoff,
                                 std::span<double> out) const override;
  std::string name() const override { return "minkowski"; }
  bool is_metric() const override { return p_ >= 1.0; }
  ParamMap params() const override { return {{"p", p_}}; }

 private:
  double p_;
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_MINKOWSKI_FAMILY_H_
