// Combination measures (3): Taneja, Kumar-Johnson, Avg(L1, Linf). These
// combine ideas from multiple families (entropy + fidelity, chi-square +
// fidelity, L1 + Chebyshev). Avg(L1, Linf) is among the measures the paper
// finds to significantly outperform ED (Table 2, Figure 2).

#ifndef TSDIST_LOCKSTEP_COMBINATION_FAMILY_H_
#define TSDIST_LOCKSTEP_COMBINATION_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Taneja divergence: sum ((a+b)/2) * ln( (a+b) / (2*sqrt(a*b)) ).
class TanejaDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "taneja"; }
};

/// Kumar-Johnson distance: sum (a^2 - b^2)^2 / (2 * (a*b)^(3/2)).
class KumarJohnsonDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "kumarjohnson"; }
};

/// Average of L1 and Chebyshev: ( sum|a-b| + max|a-b| ) / 2.
class AvgL1LinfDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "avg_l1_linf"; }
  bool is_metric() const override { return true; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_COMBINATION_FAMILY_H_
