#include "src/lockstep/combination_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::kEps;
using lockstep_internal::SafeDiv;
using lockstep_internal::SafeLog;
using lockstep_internal::SafeSqrt;

double TanejaDistance::Distance(std::span<const double> a,
                                std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double s = a[i] + b[i];
    const double g = 2.0 * SafeSqrt(a[i] * b[i]);
    acc += 0.5 * s * (SafeLog(s) - SafeLog(g));
  }
  return acc;
}

double KumarJohnsonDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] * a[i] - b[i] * b[i];
    const double prod = a[i] * b[i];
    const double den = 2.0 * std::pow(prod < kEps ? kEps : prod, 1.5);
    acc += SafeDiv(d * d, den);
  }
  return acc;
}

double AvgL1LinfDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  double sum = 0.0, best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a[i] - b[i]);
    sum += d;
    best = std::max(best, d);
  }
  return 0.5 * (sum + best);
}

}  // namespace tsdist
