#include "src/lockstep/lockstep_all.h"

#include <memory>
#include <stdexcept>
#include <string>

namespace tsdist {

namespace {

// Registers a default-constructible measure type under its name().
template <typename M>
void RegisterSimple(Registry* registry) {
  const std::string name = M().name();
  registry->Register(name,
                     [](const ParamMap&) { return std::make_unique<M>(); });
}

}  // namespace

void RegisterLockStepMeasures(Registry* registry) {
  // Lp Minkowski family.
  RegisterSimple<EuclideanDistance>(registry);
  RegisterSimple<ManhattanDistance>(registry);
  RegisterSimple<ChebyshevDistance>(registry);
  registry->Register("minkowski", [](const ParamMap& params) -> MeasurePtr {
    const auto it = params.find("p");
    const double p = it == params.end() ? 2.0 : it->second;
    // Validate at the registry boundary too (the ctor also throws): callers
    // constructing from user-supplied ParamMaps get a clear error instead of
    // relying on a debug-only assert as the seed code did.
    if (!(p > 0.0)) {
      throw std::invalid_argument(
          "minkowski: parameter p must be > 0, got p=" + std::to_string(p));
    }
    return std::make_unique<MinkowskiDistance>(p);
  });
  // L1 family.
  RegisterSimple<SorensenDistance>(registry);
  RegisterSimple<GowerDistance>(registry);
  RegisterSimple<SoergelDistance>(registry);
  RegisterSimple<KulczynskiDDistance>(registry);
  RegisterSimple<CanberraDistance>(registry);
  RegisterSimple<LorentzianDistance>(registry);
  // Intersection family.
  RegisterSimple<IntersectionDistance>(registry);
  RegisterSimple<WaveHedgesDistance>(registry);
  RegisterSimple<CzekanowskiDistance>(registry);
  RegisterSimple<MotykaDistance>(registry);
  RegisterSimple<KulczynskiSDistance>(registry);
  RegisterSimple<RuzickaDistance>(registry);
  RegisterSimple<TanimotoDistance>(registry);
  // Inner-product family.
  RegisterSimple<InnerProductDistance>(registry);
  RegisterSimple<HarmonicMeanDistance>(registry);
  RegisterSimple<CosineDistance>(registry);
  RegisterSimple<KumarHassebrookDistance>(registry);
  RegisterSimple<JaccardDistance>(registry);
  RegisterSimple<DiceDistance>(registry);
  // Fidelity family.
  RegisterSimple<FidelityDistance>(registry);
  RegisterSimple<BhattacharyyaDistance>(registry);
  RegisterSimple<HellingerDistance>(registry);
  RegisterSimple<MatusitaDistance>(registry);
  RegisterSimple<SquaredChordDistance>(registry);
  // Squared-L2 (chi-square) family.
  RegisterSimple<SquaredEuclideanDistance>(registry);
  RegisterSimple<PearsonChiSqDistance>(registry);
  RegisterSimple<NeymanChiSqDistance>(registry);
  RegisterSimple<SquaredChiSqDistance>(registry);
  RegisterSimple<ProbSymmetricChiSqDistance>(registry);
  RegisterSimple<DivergenceDistance>(registry);
  RegisterSimple<ClarkDistance>(registry);
  RegisterSimple<AdditiveSymmetricChiSqDistance>(registry);
  // Entropy family.
  RegisterSimple<KullbackLeiblerDistance>(registry);
  RegisterSimple<JeffreysDistance>(registry);
  RegisterSimple<KDivergenceDistance>(registry);
  RegisterSimple<TopsoeDistance>(registry);
  RegisterSimple<JensenShannonDistance>(registry);
  RegisterSimple<JensenDifferenceDistance>(registry);
  // Combinations.
  RegisterSimple<TanejaDistance>(registry);
  RegisterSimple<KumarJohnsonDistance>(registry);
  RegisterSimple<AvgL1LinfDistance>(registry);
  // Emanon (Vicis) measures.
  RegisterSimple<Emanon1Distance>(registry);
  RegisterSimple<Emanon2Distance>(registry);
  RegisterSimple<Emanon3Distance>(registry);
  RegisterSimple<Emanon4Distance>(registry);
  RegisterSimple<MaxSymmetricChiSqDistance>(registry);
  // Extra measures.
  RegisterSimple<DissimDistance>(registry);
  RegisterSimple<AdaptiveScalingDistance>(registry);
}

const std::vector<std::string>& LockStepMeasureNames() {
  static const std::vector<std::string> kNames = {
      // Lp Minkowski (4)
      "euclidean", "manhattan", "chebyshev", "minkowski",
      // L1 (6)
      "sorensen", "gower", "soergel", "kulczynski_d", "canberra", "lorentzian",
      // Intersection (7)
      "intersection", "wavehedges", "czekanowski", "motyka", "kulczynski_s",
      "ruzicka", "tanimoto",
      // Inner product (6)
      "innerproduct", "harmonicmean", "cosine", "kumarhassebrook", "jaccard",
      "dice",
      // Fidelity (5)
      "fidelity", "bhattacharyya", "hellinger", "matusita", "squaredchord",
      // Squared L2 / chi-square (8)
      "squared_euclidean", "pearson_chisq", "neyman_chisq", "squared_chisq",
      "prob_symmetric_chisq", "divergence", "clark", "additive_symmetric_chisq",
      // Entropy (6)
      "kullback_leibler", "jeffreys", "k_divergence", "topsoe",
      "jensen_shannon", "jensen_difference",
      // Combinations (3)
      "taneja", "kumarjohnson", "avg_l1_linf",
      // Emanon (5)
      "emanon1", "emanon2", "emanon3", "emanon4", "max_symmetric_chisq",
      // Extra (2)
      "dissim", "asd",
  };
  return kNames;
}

}  // namespace tsdist
