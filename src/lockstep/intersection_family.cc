#include "src/lockstep/intersection_family.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::NanMax;
using lockstep_internal::NanMin;
using lockstep_internal::SafeDiv;

double IntersectionDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::fabs(a[i] - b[i]);
  }
  return 0.5 * acc;
}

double WaveHedgesDistance::Distance(std::span<const double> a,
                                    std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeDiv(std::fabs(a[i] - b[i]), NanMax(a[i], b[i]));
  }
  return acc;
}

double CzekanowskiDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  double min_sum = 0.0, total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    min_sum += NanMin(a[i], b[i]);
    total += a[i] + b[i];
  }
  return 1.0 - SafeDiv(2.0 * min_sum, total);
}

double MotykaDistance::Distance(std::span<const double> a,
                                std::span<const double> b) const {
  assert(a.size() == b.size());
  double max_sum = 0.0, total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_sum += NanMax(a[i], b[i]);
    total += a[i] + b[i];
  }
  return SafeDiv(max_sum, total);
}

double KulczynskiSDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  double diff = 0.0, min_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += std::fabs(a[i] - b[i]);
    min_sum += NanMin(a[i], b[i]);
  }
  return SafeDiv(diff, min_sum);
}

double RuzickaDistance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double min_sum = 0.0, max_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    min_sum += NanMin(a[i], b[i]);
    max_sum += NanMax(a[i], b[i]);
  }
  return 1.0 - SafeDiv(min_sum, max_sum);
}

double TanimotoDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double sum_a = 0.0, sum_b = 0.0, min_sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum_a += a[i];
    sum_b += b[i];
    min_sum += NanMin(a[i], b[i]);
  }
  return SafeDiv(sum_a + sum_b - 2.0 * min_sum, sum_a + sum_b - min_sum);
}

}  // namespace tsdist
