#include "src/lockstep/inner_product_family.h"

#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::kEps;
using lockstep_internal::SafeDiv;

double InnerProductDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return -acc;
}

double HarmonicMeanDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeDiv(a[i] * b[i], a[i] + b[i]);
  }
  return -2.0 * acc;
}

double CosineDistance::Distance(std::span<const double> a,
                                std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  const double den = std::sqrt(na) * std::sqrt(nb);
  return 1.0 - (den < kEps ? 0.0 : dot / den);
}

double KumarHassebrookDistance::Distance(std::span<const double> a,
                                         std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  return 1.0 - SafeDiv(dot, na + nb - dot);
}

double JaccardDistance::Distance(std::span<const double> a,
                                 std::span<const double> b) const {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return SafeDiv(sq, na + nb - dot);
}

double DiceDistance::Distance(std::span<const double> a,
                              std::span<const double> b) const {
  assert(a.size() == b.size());
  double na = 0.0, nb = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    na += a[i] * a[i];
    nb += b[i] * b[i];
    const double d = a[i] - b[i];
    sq += d * d;
  }
  return SafeDiv(sq, na + nb);
}

}  // namespace tsdist
