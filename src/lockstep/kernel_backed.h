// Internal glue between lock-step measure classes and the runtime-dispatched
// SIMD kernels (src/simd/lockstep_kernels.h).
//
// A kernel-backed measure is three pieces: a raw-accumulator kernel slot, a
// finalizer mapping the accumulator to the distance (identity, *2, sqrt,
// pow(., 1/p)), and — when the per-point terms are non-negative, so partial
// sums grow monotonically — a cutoff transform mapping a distance-domain
// cutoff into accumulator domain (the inverse of the finalizer). The
// transform is applied ONCE per pair, fixing the seed bug of re-applying
// sqrt/pow to the accumulator at every abandon check.
//
// Every finalizer used here maps +infinity to +infinity, so the kernels'
// abandon signal (+inf) passes through unchanged and still satisfies the
// EarlyAbandonDistance contract. Negative, NaN, or infinite cutoffs are safe
// by the same contract: the true distance is then never < cutoff, so both a
// completed scan (exact value) and an abandon (+inf) are valid returns.

#ifndef TSDIST_LOCKSTEP_KERNEL_BACKED_H_
#define TSDIST_LOCKSTEP_KERNEL_BACKED_H_

#include <cassert>
#include <cstddef>
#include <span>

#include "src/core/distance_measure.h"
#include "src/simd/lockstep_kernels.h"

namespace tsdist::lockstep_internal {

/// out[i] = fin(kernel(query, refs[i])) for every reference.
template <typename Finalize>
void KernelDistanceBatch(simd::PairKernel kernel, SeriesView query,
                         std::span<const SeriesView> refs,
                         std::span<double> out, Finalize fin) {
  assert(out.size() == refs.size());
  const double* q = query.data();
  const std::size_t m = query.size();
  for (std::size_t i = 0; i < refs.size(); ++i) {
    assert(refs[i].size() == m);
    out[i] = fin(kernel(q, refs[i].data(), m));
  }
}

/// One early-abandoning pair: the cutoff is transformed into accumulator
/// domain once, the kernel checks raw partials against it, and the finalizer
/// maps the result back (abandons surface as +inf, which every finalizer
/// preserves).
template <typename ToRaw, typename Finalize>
double KernelEaDistance(simd::PairEaKernel kernel, SeriesView a, SeriesView b,
                        double cutoff, ToRaw to_raw, Finalize fin) {
  assert(a.size() == b.size());
  return fin(kernel(a.data(), b.data(), a.size(), to_raw(cutoff)));
}

/// Early-abandoning batch with the DistanceMeasure contract's improving
/// local cutoff: pair i is evaluated against min(cutoff, best of
/// out[0..i-1]), exactly matching a caller that loops EarlyAbandonDistance
/// and tracks its own best — so pruned 1-NN results are unchanged. NaN
/// results never tighten the cutoff (NaN < local is false).
template <typename ToRaw, typename Finalize>
void KernelEaDistanceBatch(simd::PairEaKernel kernel, SeriesView query,
                           std::span<const SeriesView> refs, double cutoff,
                           std::span<double> out, ToRaw to_raw,
                           Finalize fin) {
  assert(out.size() == refs.size());
  const double* q = query.data();
  const std::size_t m = query.size();
  double local = cutoff;
  for (std::size_t i = 0; i < refs.size(); ++i) {
    assert(refs[i].size() == m);
    const double d = fin(kernel(q, refs[i].data(), m, to_raw(local)));
    out[i] = d;
    if (d < local) local = d;
  }
}

/// Finalizers / cutoff transforms shared by the measure classes.
inline double Identity(double v) { return v; }
inline double Square(double v) { return v * v; }

}  // namespace tsdist::lockstep_internal

#endif  // TSDIST_LOCKSTEP_KERNEL_BACKED_H_
