// Shannon-entropy family (6 measures): Kullback-Leibler, Jeffreys,
// K divergence, Topsoe, Jensen-Shannon, Jensen difference. Information-
// theoretic divergences defined for positive data; logarithm arguments are
// clamped (see lockstep.h). Topsoe with MinMax appears in Table 2 of the
// paper among the measures compared against ED.

#ifndef TSDIST_LOCKSTEP_ENTROPY_FAMILY_H_
#define TSDIST_LOCKSTEP_ENTROPY_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Kullback-Leibler divergence: sum a * ln(a/b). Asymmetric.
class KullbackLeiblerDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "kullback_leibler"; }
  bool symmetric() const override { return false; }
};

/// Jeffreys divergence (symmetrized KL): sum (a-b) * ln(a/b).
class JeffreysDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "jeffreys"; }
};

/// K divergence: sum a * ln(2a / (a+b)). Asymmetric.
class KDivergenceDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "k_divergence"; }
  bool symmetric() const override { return false; }
};

/// Topsoe distance: sum [ a*ln(2a/(a+b)) + b*ln(2b/(a+b)) ].
class TopsoeDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "topsoe"; }
};

/// Jensen-Shannon divergence: half the Topsoe distance.
class JensenShannonDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "jensen_shannon"; }
};

/// Jensen difference:
/// sum [ (a*ln a + b*ln b)/2 - ((a+b)/2) * ln((a+b)/2) ].
class JensenDifferenceDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "jensen_difference"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_ENTROPY_FAMILY_H_
