#include "src/lockstep/squared_l2_family.h"

#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::SafeDiv;

double SquaredEuclideanDistance::Distance(std::span<const double> a,
                                          std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double PearsonChiSqDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d, b[i]);
  }
  return acc;
}

double NeymanChiSqDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d, a[i]);
  }
  return acc;
}

double SquaredChiSqDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d, a[i] + b[i]);
  }
  return acc;
}

double ProbSymmetricChiSqDistance::Distance(std::span<const double> a,
                                            std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d, a[i] + b[i]);
  }
  return 2.0 * acc;
}

double DivergenceDistance::Distance(std::span<const double> a,
                                    std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    const double s = a[i] + b[i];
    acc += SafeDiv(d * d, s * s);
  }
  return 2.0 * acc;
}

double ClarkDistance::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double t = SafeDiv(std::fabs(a[i] - b[i]), a[i] + b[i]);
    acc += t * t;
  }
  return std::sqrt(acc);
}

double AdditiveSymmetricChiSqDistance::Distance(std::span<const double> a,
                                                std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += SafeDiv(d * d * (a[i] + b[i]), a[i] * b[i]);
  }
  return acc;
}

}  // namespace tsdist
