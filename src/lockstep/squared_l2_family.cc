#include "src/lockstep/squared_l2_family.h"

#include <cassert>
#include <cmath>

#include "src/lockstep/kernel_backed.h"
#include "src/simd/lockstep_kernels.h"

namespace tsdist {

using lockstep_internal::Identity;
using lockstep_internal::KernelDistanceBatch;
using lockstep_internal::KernelEaDistance;
using lockstep_internal::KernelEaDistanceBatch;
using lockstep_internal::Square;

namespace {
double Sqrt(double v) { return std::sqrt(v); }
double Double(double v) { return 2.0 * v; }
double Halve(double c) { return c / 2.0; }
}  // namespace

double SquaredEuclideanDistance::Distance(std::span<const double> a,
                                          std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().sum_sq(a.data(), b.data(), a.size());
}

double SquaredEuclideanDistance::EarlyAbandonDistance(
    std::span<const double> a, std::span<const double> b,
    double cutoff) const {
  return KernelEaDistance(simd::Kernels().sum_sq_ea, a, b, cutoff, Identity,
                          Identity);
}

void SquaredEuclideanDistance::DistanceBatch(SeriesView query,
                                             std::span<const SeriesView> refs,
                                             std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_sq, query, refs, out, Identity);
}

void SquaredEuclideanDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  KernelEaDistanceBatch(simd::Kernels().sum_sq_ea, query, refs, cutoff, out,
                        Identity, Identity);
}

double PearsonChiSqDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().sum_pearson(a.data(), b.data(), a.size());
}

void PearsonChiSqDistance::DistanceBatch(SeriesView query,
                                         std::span<const SeriesView> refs,
                                         std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_pearson, query, refs, out,
                      Identity);
}

double NeymanChiSqDistance::Distance(std::span<const double> a,
                                     std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().sum_neyman(a.data(), b.data(), a.size());
}

void NeymanChiSqDistance::DistanceBatch(SeriesView query,
                                        std::span<const SeriesView> refs,
                                        std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_neyman, query, refs, out, Identity);
}

double SquaredChiSqDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().sum_sqchi(a.data(), b.data(), a.size());
}

void SquaredChiSqDistance::DistanceBatch(SeriesView query,
                                         std::span<const SeriesView> refs,
                                         std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_sqchi, query, refs, out, Identity);
}

double ProbSymmetricChiSqDistance::Distance(std::span<const double> a,
                                            std::span<const double> b) const {
  assert(a.size() == b.size());
  return 2.0 * simd::Kernels().sum_sqchi(a.data(), b.data(), a.size());
}

void ProbSymmetricChiSqDistance::DistanceBatch(
    SeriesView query, std::span<const SeriesView> refs,
    std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_sqchi, query, refs, out, Double);
}

double DivergenceDistance::Distance(std::span<const double> a,
                                    std::span<const double> b) const {
  assert(a.size() == b.size());
  return 2.0 * simd::Kernels().sum_divergence(a.data(), b.data(), a.size());
}

double DivergenceDistance::EarlyAbandonDistance(std::span<const double> a,
                                                std::span<const double> b,
                                                double cutoff) const {
  return KernelEaDistance(simd::Kernels().sum_divergence_ea, a, b, cutoff,
                          Halve, Double);
}

void DivergenceDistance::DistanceBatch(SeriesView query,
                                       std::span<const SeriesView> refs,
                                       std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_divergence, query, refs, out,
                      Double);
}

void DivergenceDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  KernelEaDistanceBatch(simd::Kernels().sum_divergence_ea, query, refs,
                        cutoff, out, Halve, Double);
}

double ClarkDistance::Distance(std::span<const double> a,
                               std::span<const double> b) const {
  assert(a.size() == b.size());
  return std::sqrt(simd::Kernels().sum_clark(a.data(), b.data(), a.size()));
}

double ClarkDistance::EarlyAbandonDistance(std::span<const double> a,
                                           std::span<const double> b,
                                           double cutoff) const {
  return KernelEaDistance(simd::Kernels().sum_clark_ea, a, b, cutoff, Square,
                          Sqrt);
}

void ClarkDistance::DistanceBatch(SeriesView query,
                                  std::span<const SeriesView> refs,
                                  std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_clark, query, refs, out, Sqrt);
}

void ClarkDistance::EarlyAbandonDistanceBatch(
    SeriesView query, std::span<const SeriesView> refs, double cutoff,
    std::span<double> out) const {
  KernelEaDistanceBatch(simd::Kernels().sum_clark_ea, query, refs, cutoff,
                        out, Square, Sqrt);
}

double AdditiveSymmetricChiSqDistance::Distance(
    std::span<const double> a, std::span<const double> b) const {
  assert(a.size() == b.size());
  return simd::Kernels().sum_addsym(a.data(), b.data(), a.size());
}

void AdditiveSymmetricChiSqDistance::DistanceBatch(
    SeriesView query, std::span<const SeriesView> refs,
    std::span<double> out) const {
  KernelDistanceBatch(simd::Kernels().sum_addsym, query, refs, out, Identity);
}

}  // namespace tsdist
