// Inner-product family (6 measures): InnerProduct, HarmonicMean, Cosine,
// KumarHassebrook, Jaccard, Dice. These compare the series through their dot
// product. Note the paper's observation: under z-normalization the inner
// product (equivalently Pearson's correlation) induces the same 1-NN ordering
// as Euclidean distance — our tests assert that equivalence. The Jaccard
// distance (with MeanNorm) is one of the three previously unreported measures
// the paper finds to significantly outperform ED.

#ifndef TSDIST_LOCKSTEP_INNER_PRODUCT_FAMILY_H_
#define TSDIST_LOCKSTEP_INNER_PRODUCT_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Inner-product dissimilarity: -sum a*b (negated similarity so that lower
/// still means closer; the 1-NN ordering is what matters).
class InnerProductDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "innerproduct"; }
};

/// Harmonic-mean dissimilarity: -2 * sum a*b / (a+b).
class HarmonicMeanDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "harmonicmean"; }
};

/// Cosine distance: 1 - sum a*b / (||a|| * ||b||).
class CosineDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "cosine"; }
};

/// Kumar-Hassebrook (PCE) distance:
/// 1 - sum a*b / (sum a^2 + sum b^2 - sum a*b).
class KumarHassebrookDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "kumarhassebrook"; }
};

/// Jaccard distance: sum (a-b)^2 / (sum a^2 + sum b^2 - sum a*b).
class JaccardDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "jaccard"; }
};

/// Dice distance: sum (a-b)^2 / (sum a^2 + sum b^2).
class DiceDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "dice"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_INNER_PRODUCT_FAMILY_H_
