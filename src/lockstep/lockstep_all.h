// Aggregation header for the 52 lock-step measures: registration into a
// Registry plus the canonical name list used by the Table 2 benchmark.

#ifndef TSDIST_LOCKSTEP_LOCKSTEP_ALL_H_
#define TSDIST_LOCKSTEP_LOCKSTEP_ALL_H_

#include <string>
#include <vector>

#include "src/core/registry.h"
#include "src/lockstep/combination_family.h"
#include "src/lockstep/emanon_family.h"
#include "src/lockstep/entropy_family.h"
#include "src/lockstep/extra_measures.h"
#include "src/lockstep/fidelity_family.h"
#include "src/lockstep/inner_product_family.h"
#include "src/lockstep/intersection_family.h"
#include "src/lockstep/l1_family.h"
#include "src/lockstep/minkowski_family.h"
#include "src/lockstep/squared_l2_family.h"

namespace tsdist {

/// Registers the 52 lock-step measures. The "minkowski" factory honours
/// {"p": value} (default 2).
void RegisterLockStepMeasures(Registry* registry);

/// Names of all 52 lock-step measures, in survey (family) order.
const std::vector<std::string>& LockStepMeasureNames();

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_LOCKSTEP_ALL_H_
