// L1 family (6 measures): Sorensen, Gower, Soergel, Kulczynski d, Canberra,
// Lorentzian. The Lorentzian distance — the natural logarithm of L1 — is the
// measure the paper identifies as the new state-of-the-art lock-step measure
// (Figure 2), significantly outperforming Euclidean distance.
//
// Gower and Lorentzian accumulate non-negative terms and override
// EarlyAbandonDistance (see src/core/distance_measure.h for the contract);
// the ratio measures and Canberra (whose clamped division can produce
// negative terms) keep the default full computation.

#ifndef TSDIST_LOCKSTEP_L1_FAMILY_H_
#define TSDIST_LOCKSTEP_L1_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Sorensen distance: sum|a-b| / sum(a+b).
class SorensenDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "sorensen"; }
};

/// Gower distance: (1/m) * sum|a-b| (mean absolute difference).
class GowerDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  std::string name() const override { return "gower"; }
  bool is_metric() const override { return true; }
};

/// Soergel distance: sum|a-b| / sum max(a,b). One of the three previously
/// unreported measures the paper finds to beat ED under MinMax scaling.
class SoergelDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "soergel"; }
};

/// Kulczynski distance: sum|a-b| / sum min(a,b).
class KulczynskiDDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "kulczynski_d"; }
};

/// Canberra distance: sum |a-b| / (a+b), a per-coordinate-normalized L1.
class CanberraDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "canberra"; }
};

/// Lorentzian distance: sum ln(1 + |a-b|). Applies a log to each absolute
/// difference, damping large deviations (a robustified L1).
class LorentzianDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  double EarlyAbandonDistance(std::span<const double> a,
                              std::span<const double> b,
                              double cutoff) const override;
  std::string name() const override { return "lorentzian"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_L1_FAMILY_H_
