// "Emanon" measures (5): the distances proposed in Cha's survey without
// names in the prior literature ("no name" reversed), a.k.a. the Vicis
// measures. Emanon4 (Vicis symmetric chi-square, max-denominator form) under
// MinMax is one of the three previously unreported measures the paper finds
// to significantly outperform ED — the headline of debunked misconception M2.

#ifndef TSDIST_LOCKSTEP_EMANON_FAMILY_H_
#define TSDIST_LOCKSTEP_EMANON_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Emanon1 (Vicis-Wave Hedges): sum |a-b| / min(a,b).
class Emanon1Distance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "emanon1"; }
};

/// Emanon2 (Vicis symmetric chi-square, squared-min denominator):
/// sum (a-b)^2 / min(a,b)^2.
class Emanon2Distance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "emanon2"; }
};

/// Emanon3 (Vicis symmetric chi-square, min denominator):
/// sum (a-b)^2 / min(a,b).
class Emanon3Distance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "emanon3"; }
};

/// Emanon4 (Vicis symmetric chi-square, max denominator):
/// sum (a-b)^2 / max(a,b).
class Emanon4Distance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "emanon4"; }
};

/// Max-symmetric chi-square: max( sum (a-b)^2/a , sum (a-b)^2/b ).
class MaxSymmetricChiSqDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "max_symmetric_chisq"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_EMANON_FAMILY_H_
