#include "src/lockstep/fidelity_family.h"

#include <cassert>
#include <cmath>

namespace tsdist {

using lockstep_internal::SafeLog;
using lockstep_internal::SafeSqrt;

namespace {

// sum over i of (sqrt(a_i) - sqrt(b_i))^2 with clamped square roots.
double SquaredChordSum(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = SafeSqrt(a[i]) - SafeSqrt(b[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace

double FidelityDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeSqrt(a[i] * b[i]);
  }
  return 1.0 - acc;
}

double BhattacharyyaDistance::Distance(std::span<const double> a,
                                       std::span<const double> b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += SafeSqrt(a[i] * b[i]);
  }
  return -SafeLog(acc);
}

double HellingerDistance::Distance(std::span<const double> a,
                                   std::span<const double> b) const {
  assert(a.size() == b.size());
  return std::sqrt(2.0 * SquaredChordSum(a, b));
}

double MatusitaDistance::Distance(std::span<const double> a,
                                  std::span<const double> b) const {
  assert(a.size() == b.size());
  return std::sqrt(SquaredChordSum(a, b));
}

double SquaredChordDistance::Distance(std::span<const double> a,
                                      std::span<const double> b) const {
  assert(a.size() == b.size());
  return SquaredChordSum(a, b);
}

}  // namespace tsdist
