// Intersection family (7 measures): Intersection, Wave Hedges, Czekanowski,
// Motyka, Kulczynski s, Ruzicka, Tanimoto. These compare coordinate-wise
// minima/maxima ("overlap") of the two series. Several members are known to
// be monotone transforms of each other on valid domains (e.g. Ruzicka's
// distance form equals Soergel); the study keeps them all to mirror the
// survey faithfully and documents the equivalences.

#ifndef TSDIST_LOCKSTEP_INTERSECTION_FAMILY_H_
#define TSDIST_LOCKSTEP_INTERSECTION_FAMILY_H_

#include "src/lockstep/lockstep.h"

namespace tsdist {

/// Intersection distance (non-overlap): (1/2) sum |a-b|.
class IntersectionDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "intersection"; }
};

/// Wave Hedges distance: sum |a-b| / max(a,b).
class WaveHedgesDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "wavehedges"; }
};

/// Czekanowski distance: 1 - 2*sum min(a,b) / sum(a+b).
class CzekanowskiDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "czekanowski"; }
};

/// Motyka distance: sum max(a,b) / sum(a+b) (>= 0.5 on non-negative data).
class MotykaDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "motyka"; }
};

/// Kulczynski similarity s = sum min(a,b) / sum|a-b|, reported as the
/// distance 1/s (the survey's d = sum|a-b| / sum min).
class KulczynskiSDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "kulczynski_s"; }
};

/// Ruzicka distance: 1 - sum min(a,b) / sum max(a,b).
class RuzickaDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "ruzicka"; }
};

/// Tanimoto distance: (sum a + sum b - 2 sum min(a,b)) /
/// (sum a + sum b - sum min(a,b)).
class TanimotoDistance : public LockStepMeasure {
 public:
  double Distance(std::span<const double> a,
                  std::span<const double> b) const override;
  std::string name() const override { return "tanimoto"; }
};

}  // namespace tsdist

#endif  // TSDIST_LOCKSTEP_INTERSECTION_FAMILY_H_
