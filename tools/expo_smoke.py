#!/usr/bin/env python3
"""End-to-end smoke test for the embedded telemetry server.

Launches `tsdist_eval --serve 0` (ephemeral port) on the tiny synthetic
archive, waits for the "telemetry server listening" line on stderr, scrapes
every endpoint while the sweep is still running, validates the /metrics body
with check_metrics_schema.check_openmetrics, then sends SIGTERM and expects
the orderly-shutdown exit code (128 + SIGTERM = 143).

Stdlib only. Exits 0 on success, 1 with a message per failure otherwise.

Usage:
  expo_smoke.py --binary build/tools/tsdist_eval [--timeout 120]
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_metrics_schema  # noqa: E402

LISTEN_RE = re.compile(r"telemetry server listening.*\bport=(\d+)")


def fail(msg):
    print(f"expo_smoke: {msg}", file=sys.stderr)
    return 1


def fetch(port, path):
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), \
            resp.read().decode("utf-8")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True,
                        help="path to the tsdist_eval binary")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline in seconds")
    args = parser.parse_args(argv)

    # The per-cell sleep keeps the sweep alive long enough to scrape it
    # mid-run without depending on machine speed.
    cmd = [
        args.binary, "--scale", "tiny", "--measures", "euclidean",
        "--serve", "0", "--selftest-cell-sleep-ms", "400",
    ]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE, text=True)

    # Tail stderr on a thread: the listening line carries the ephemeral port.
    port_box = {}
    stderr_lines = []

    def drain():
        for line in proc.stderr:
            stderr_lines.append(line)
            m = LISTEN_RE.search(line)
            if m and "port" not in port_box:
                port_box["port"] = int(m.group(1))

    drainer = threading.Thread(target=drain, daemon=True)
    drainer.start()

    deadline = time.monotonic() + args.timeout
    try:
        while "port" not in port_box:
            if proc.poll() is not None:
                return fail(
                    "tsdist_eval exited before the server came up "
                    f"(exit {proc.returncode}); stderr:\n"
                    + "".join(stderr_lines))
            if time.monotonic() > deadline:
                return fail("timed out waiting for the listening line")
            time.sleep(0.05)
        port = port_box["port"]

        status, ctype, metrics = fetch(port, "/metrics")
        if status != 200:
            return fail(f"/metrics returned HTTP {status}")
        if not ctype.startswith("application/openmetrics-text"):
            return fail(f"/metrics Content-Type is {ctype!r}")
        errors = []
        families = check_metrics_schema.check_openmetrics(
            errors, "/metrics", metrics)
        for name in ("tsdist.proc.peak_rss_bytes", "tsdist.pool.live_threads",
                     "tsdist.pool.busy_participants"):
            om = check_metrics_schema.mangle_openmetrics_name(name)
            if om not in families["gauges"]:
                errors.append(f"/metrics: live gauge {name!r} not exposed")
        if families["gauges"].get("tsdist_proc_peak_rss_bytes", 0) <= 0:
            errors.append("/metrics: peak RSS gauge is zero mid-run")
        if errors:
            for e in errors:
                print(f"expo_smoke: {e}", file=sys.stderr)
            return 1

        status, _, health = fetch(port, "/healthz")
        if status != 200:
            return fail(f"/healthz returned HTTP {status}")
        doc = json.loads(health)
        if doc.get("schema") != "tsdist.health.v1" or doc.get("status") != "ok":
            return fail(f"/healthz unexpected document: {health!r}")
        if not isinstance(doc.get("uptime_sec"), (int, float)):
            return fail("/healthz missing numeric uptime_sec")

        status, _, runinfo = fetch(port, "/runinfo")
        if status != 200:
            return fail(f"/runinfo returned HTTP {status}")
        manifest = json.loads(runinfo)
        if manifest.get("schema_version") != 2:
            return fail(f"/runinfo is not a v2 manifest: {runinfo!r}")

        status, _, _logz = fetch(port, "/logz")
        if status != 200:
            return fail(f"/logz returned HTTP {status}")

        # Live profiler control: status, a start/dump/stop round trip, and a
        # schema-valid folded dump.
        status, _, profilez = fetch(port, "/profilez")
        if status != 200 or not profilez.startswith("profiler "):
            return fail(f"/profilez unexpected: {profilez!r}")
        status, _, started = fetch(port, "/profilez?start")
        if status != 200 or "started" not in started:
            return fail(f"/profilez?start unexpected: {started!r}")
        status, _, dump = fetch(port, "/profilez?dump")
        if status != 200 or not dump.startswith("# tsdist.profile.v1 "):
            return fail(f"/profilez?dump missing folded header: {dump[:80]!r}")
        status, _, stopped = fetch(port, "/profilez?stop")
        if status != 200 or "stopped" not in stopped:
            return fail(f"/profilez?stop unexpected: {stopped!r}")

        status, _, _ = fetch(port, "/nonexistent")
        return fail("/nonexistent should have returned 404")
    except urllib.error.HTTPError as exc:
        if exc.code != 404:
            return fail(f"expected 404 for /nonexistent, got {exc.code}")
    except Exception as exc:  # noqa: BLE001 - report and fail cleanly
        proc.kill()
        proc.wait()
        return fail(f"{type(exc).__name__}: {exc}")

    # Orderly shutdown: SIGTERM must drain and exit 128 + 15.
    proc.send_signal(signal.SIGTERM)
    try:
        rc = proc.wait(timeout=max(10.0, deadline - time.monotonic()))
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait()
        return fail("tsdist_eval did not exit after SIGTERM")
    drainer.join(timeout=5)
    # A sweep that already finished exits 0; one interrupted mid-run exits
    # 143. Both are orderly; anything else is a crash.
    if rc not in (0, 143):
        return fail(f"unexpected exit code {rc}; stderr:\n"
                    + "".join(stderr_lines))
    print("expo_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
