// Fleet trace stitcher + straggler gate: merges the per-process
// tsdist.tracespool.v1 spools a sharded sweep leaves under
// <checkpoint>/trace/ into one Chrome trace on a single wall-clock
// timeline, and reports where the makespan went.
//
//   trace_merge <spool-dir | spool.jsonl...> [--chrome-out <path>]
//               [--analysis-out <path>] [--top 10]
//               [--max-imbalance-pct P] [--warn-only]
//
// Every spool carries a CLOCK_REALTIME anchor sampled at its recorder
// epoch, so event times from N processes (started at different moments,
// some SIGKILL'd mid-run) land on one shared ruler: wall_us = anchor_wall_us
// + ts_ns/1000, rebased to the earliest anchor. Each spool becomes one pid
// row in the Chrome trace (chrome://tracing, Perfetto), with instant events
// for claims/steals/reclaims riding along.
//
// The analysis (tsdist.fleettrace.v1) attributes the makespan:
//   critical path — greedy backward chain over cell spans from the last
//                   finisher: each hop is the latest-ending cell that ends
//                   before the current one starts. Its coverage share says
//                   how much of the makespan is explained by one dependent
//                   chain of work (high = serialized, low = imbalance).
//   busy/idle     — per process, the interval union of its cell spans vs
//                   the fleet makespan.
//   imbalance     — 100 * (1 - mean_busy / max_busy) over cell-computing
//                   processes. 0 = perfectly level, 50 = the average worker
//                   computed half as long as the busiest.
//   stragglers    — the --top longest cells, labeled by dataset/measure.
//
// With --max-imbalance-pct the tool becomes a gate in the profile_diff /
// heap_diff mold: exit 1 when the fleet imbalance exceeds the threshold
// (suppressed by --warn-only). Torn spool tails — the kill residue the
// valid-prefix reader counts — are reported, never fatal.
//
// Exit codes: 0 clean (or --warn-only), 1 imbalance gate failure, 2 usage
// or input errors (no readable spool).

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/trace.h"
#include "src/obs/trace_spool.h"

namespace {

using tsdist::obs::ReadTraceSpool;
using tsdist::obs::TraceArg;
using tsdist::obs::TraceEvent;
using tsdist::obs::TraceSpoolContents;

struct Options {
  std::vector<std::string> inputs;
  std::string chrome_out;
  std::string analysis_out;
  int top = 10;
  double max_imbalance_pct = -1.0;  // < 0: report only, never gate
  bool warn_only = false;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: trace_merge <spool-dir | spool.trace.jsonl...>\n"
      "                   [--chrome-out <path>] [--analysis-out <path>]\n"
      "                   [--top N] [--max-imbalance-pct P] [--warn-only]\n"
      "\n"
      "  <spool-dir>            read every *.trace.jsonl under the directory\n"
      "                         (a sweep's <checkpoint>/trace/)\n"
      "  --chrome-out <path>    write the stitched Chrome trace-event JSON\n"
      "  --analysis-out <path>  write the tsdist.fleettrace.v1 analysis\n"
      "  --top N                stragglers / critical-path segments to list\n"
      "                         (default 10)\n"
      "  --max-imbalance-pct P  exit 1 when fleet imbalance exceeds P\n"
      "                         (default: report only)\n"
      "  --warn-only            report gate failures but exit 0\n");
}

bool ParseArgs(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char** value) -> bool {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "trace_merge: %s needs a value\n", arg.c_str());
        return false;
      }
      *value = argv[++i];
      return true;
    };
    const char* v = nullptr;
    if (arg == "--chrome-out") {
      if (!next(&v)) return false;
      opt->chrome_out = v;
    } else if (arg == "--analysis-out") {
      if (!next(&v)) return false;
      opt->analysis_out = v;
    } else if (arg == "--top") {
      if (!next(&v)) return false;
      opt->top = std::max(1, std::atoi(v));
    } else if (arg == "--max-imbalance-pct") {
      if (!next(&v)) return false;
      opt->max_imbalance_pct = std::atof(v);
    } else if (arg == "--warn-only") {
      opt->warn_only = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      std::exit(0);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "trace_merge: unknown flag '%s'\n", arg.c_str());
      return false;
    } else {
      opt->inputs.push_back(arg);
    }
  }
  if (opt->inputs.empty()) {
    std::fprintf(stderr, "trace_merge: no spool directory or files given\n");
    return false;
  }
  return true;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Microseconds with a fixed 3-digit nanosecond fraction (the same fixed-
// point rendering the recorder's own Chrome export uses).
std::string MicrosFixed(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string Ms(double ms) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", ms);
  return buf;
}

/// One loaded spool file: contents plus the display identity it gets in the
/// merged trace (pid row = file index, not OS pid — a restarted worker's
/// rotated spool must not share a row with its successor).
struct Spool {
  std::string path;
  std::string proc;  ///< filename stem, e.g. "w1" or "w1.r001"
  TraceSpoolContents contents;
};

/// A cell span placed on the fleet timeline (absolute wall nanoseconds
/// rebased to the earliest anchor).
struct Cell {
  std::size_t spool = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  const TraceEvent* event = nullptr;
};

const std::string* FindArg(const TraceEvent& event, const char* key) {
  for (const TraceArg& arg : event.args) {
    if (arg.key == key) return &arg.value;
  }
  return nullptr;
}

std::uint64_t Rebase(const Spool& spool, std::uint64_t ts_ns,
                     std::uint64_t fleet_t0_us) {
  return (spool.contents.header.anchor_wall_us - fleet_t0_us) * 1000 + ts_ns;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    PrintUsage(stderr);
    return 2;
  }

  // Expand directory inputs into their spool files (sorted for stable pid
  // assignment and deterministic output).
  std::vector<std::string> paths;
  for (const std::string& input : opt.inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      std::vector<std::string> found;
      for (std::filesystem::directory_iterator it(input, ec), end;
           !ec && it != end; it.increment(ec)) {
        const std::string p = it->path().string();
        if (it->is_regular_file(ec) && EndsWith(p, ".trace.jsonl")) {
          found.push_back(p);
        }
      }
      std::sort(found.begin(), found.end());
      paths.insert(paths.end(), found.begin(), found.end());
    } else {
      paths.push_back(input);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "trace_merge: no *.trace.jsonl files found\n");
    return 2;
  }

  std::vector<Spool> spools;
  std::size_t torn_files = 0, torn_lines = 0, torn_bytes = 0;
  std::size_t skipped = 0;
  for (const std::string& path : paths) {
    Spool spool;
    spool.path = path;
    spool.proc = std::filesystem::path(path).filename().string();
    if (EndsWith(spool.proc, ".trace.jsonl")) {
      spool.proc.resize(spool.proc.size() - std::strlen(".trace.jsonl"));
    }
    std::string error;
    if (!ReadTraceSpool(path, &spool.contents, &error)) {
      // A header-less file is a process killed inside spool Start — there
      // is nothing to merge from it, but the others still stitch.
      std::fprintf(stderr, "trace_merge: skipping %s\n", error.c_str());
      ++skipped;
      continue;
    }
    if (spool.contents.torn_lines > 0) {
      ++torn_files;
      torn_lines += spool.contents.torn_lines;
      torn_bytes += spool.contents.torn_bytes;
    }
    spools.push_back(std::move(spool));
  }
  if (spools.empty()) {
    std::fprintf(stderr, "trace_merge: no readable spools among %zu files\n",
                 paths.size());
    return 2;
  }

  // Shared ruler: rebase every event to the earliest process anchor so the
  // merged timeline starts near zero and keeps ns fidelity in uint64 math.
  std::uint64_t fleet_t0_us = UINT64_MAX;
  for (const Spool& spool : spools) {
    fleet_t0_us = std::min(fleet_t0_us, spool.contents.header.anchor_wall_us);
  }

  std::set<std::string> run_ids;
  for (const Spool& spool : spools) {
    if (!spool.contents.header.run_id.empty()) {
      run_ids.insert(spool.contents.header.run_id);
    }
  }
  if (run_ids.size() > 1) {
    std::fprintf(stderr,
                 "trace_merge: warning: %zu distinct run ids in one spool "
                 "set — mixed sweeps in one trace directory?\n",
                 run_ids.size());
  }
  const std::string run_id = run_ids.empty() ? "" : *run_ids.begin();

  // Fleet extent and the cell-span population (the unit of work busy time,
  // stragglers, and the critical path are attributed to).
  std::uint64_t fleet_start_ns = UINT64_MAX, fleet_end_ns = 0;
  std::size_t total_events = 0;
  std::vector<Cell> cells;
  std::size_t claims = 0, steals = 0, reclaims = 0, conflicts = 0;
  for (std::size_t i = 0; i < spools.size(); ++i) {
    for (const TraceEvent& event : spools[i].contents.events) {
      ++total_events;
      const std::uint64_t start = Rebase(spools[i], event.ts_ns, fleet_t0_us);
      fleet_start_ns = std::min(fleet_start_ns, start);
      fleet_end_ns = std::max(fleet_end_ns, start + event.dur_ns);
      if (event.name.rfind("shard.cell/", 0) == 0) {
        cells.push_back(Cell{i, start, start + event.dur_ns, &event});
      } else if (event.name == "shard.claim") {
        ++claims;
      } else if (event.name == "shard.steal") {
        ++steals;
      } else if (event.name == "shard.reclaim") {
        ++reclaims;
      } else if (event.name == "shard.conflict") {
        ++conflicts;
      }
    }
  }
  if (total_events == 0) fleet_start_ns = 0;
  const double makespan_ms =
      static_cast<double>(fleet_end_ns - fleet_start_ns) / 1e6;

  // Per-process busy time: interval union of that process's cell spans.
  struct ProcStat {
    double busy_ms = 0.0;
    std::size_t cells = 0;
  };
  std::vector<ProcStat> stats(spools.size());
  {
    std::vector<std::vector<std::pair<std::uint64_t, std::uint64_t>>> per(
        spools.size());
    for (const Cell& cell : cells) {
      per[cell.spool].push_back({cell.start_ns, cell.end_ns});
      ++stats[cell.spool].cells;
    }
    for (std::size_t i = 0; i < spools.size(); ++i) {
      auto& iv = per[i];
      std::sort(iv.begin(), iv.end());
      std::uint64_t busy = 0, cur_lo = 0, cur_hi = 0;
      bool open = false;
      for (const auto& [lo, hi] : iv) {
        if (!open || lo > cur_hi) {
          if (open) busy += cur_hi - cur_lo;
          cur_lo = lo;
          cur_hi = hi;
          open = true;
        } else {
          cur_hi = std::max(cur_hi, hi);
        }
      }
      if (open) busy += cur_hi - cur_lo;
      stats[i].busy_ms = static_cast<double>(busy) / 1e6;
    }
  }

  // Imbalance over the processes that actually computed cells.
  double max_busy = 0.0, sum_busy = 0.0;
  std::size_t computing = 0;
  for (const ProcStat& stat : stats) {
    if (stat.cells == 0) continue;
    ++computing;
    sum_busy += stat.busy_ms;
    max_busy = std::max(max_busy, stat.busy_ms);
  }
  const double imbalance_pct =
      computing >= 2 && max_busy > 0.0
          ? 100.0 * (1.0 - (sum_busy / static_cast<double>(computing)) /
                               max_busy)
          : 0.0;

  // Critical path: greedy backward chain from the last-ending cell. Each
  // hop picks the latest-ending cell that finished before the current one
  // started — the chain no schedule could have compressed by adding
  // workers, under the conservative assumption that later cells could not
  // start before earlier ones freed capacity.
  std::vector<const Cell*> chain;
  {
    const Cell* cur = nullptr;
    for (const Cell& cell : cells) {
      if (cur == nullptr || cell.end_ns > cur->end_ns) cur = &cell;
    }
    while (cur != nullptr) {
      chain.push_back(cur);
      const Cell* prev = nullptr;
      for (const Cell& cell : cells) {
        if (cell.end_ns > cur->start_ns) continue;
        if (prev == nullptr || cell.end_ns > prev->end_ns) prev = &cell;
      }
      cur = prev;
    }
    std::reverse(chain.begin(), chain.end());
  }
  double chain_ms = 0.0;
  for (const Cell* cell : chain) {
    chain_ms += static_cast<double>(cell->end_ns - cell->start_ns) / 1e6;
  }
  const double coverage_pct =
      makespan_ms > 0.0 ? 100.0 * chain_ms / makespan_ms : 0.0;

  // Stragglers: the longest individual cells fleet-wide.
  std::vector<const Cell*> by_duration;
  by_duration.reserve(cells.size());
  for (const Cell& cell : cells) by_duration.push_back(&cell);
  std::sort(by_duration.begin(), by_duration.end(),
            [](const Cell* a, const Cell* b) {
              const std::uint64_t da = a->end_ns - a->start_ns;
              const std::uint64_t db = b->end_ns - b->start_ns;
              if (da != db) return da > db;
              return a->start_ns < b->start_ns;
            });
  if (by_duration.size() > static_cast<std::size_t>(opt.top)) {
    by_duration.resize(static_cast<std::size_t>(opt.top));
  }

  // ---- Chrome trace ----
  if (!opt.chrome_out.empty()) {
    std::ofstream out(opt.chrome_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "trace_merge: cannot write %s\n",
                   opt.chrome_out.c_str());
      return 2;
    }
    out << "[";
    bool first = true;
    for (std::size_t i = 0; i < spools.size(); ++i) {
      const auto& header = spools[i].contents.header;
      const std::size_t pid = i + 1;
      std::string label = header.role.empty() ? spools[i].proc : header.role;
      if (!header.worker.empty() && header.worker != label) {
        label += ":" + header.worker;
      }
      label += " (" + spools[i].proc + ", pid " +
               std::to_string(header.pid) + ")";
      out << (first ? "\n" : ",\n")
          << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
          << ", \"tid\": 0, \"args\": {\"name\": \"" << JsonEscape(label)
          << "\"}}";
      first = false;
      for (const TraceEvent& event : spools[i].contents.events) {
        const std::uint64_t start =
            Rebase(spools[i], event.ts_ns, fleet_t0_us) - fleet_start_ns;
        out << ",\n  {\"name\": \"" << JsonEscape(event.name)
            << "\", \"cat\": \"" << JsonEscape(event.category) << "\"";
        if (event.instant) {
          out << ", \"ph\": \"i\", \"s\": \"t\", \"ts\": "
              << MicrosFixed(start);
        } else {
          out << ", \"ph\": \"X\", \"ts\": " << MicrosFixed(start)
              << ", \"dur\": " << MicrosFixed(event.dur_ns);
        }
        out << ", \"pid\": " << pid << ", \"tid\": " << event.tid;
        if (!event.args.empty()) {
          out << ", \"args\": {";
          bool first_arg = true;
          for (const TraceArg& arg : event.args) {
            out << (first_arg ? "" : ", ") << "\"" << JsonEscape(arg.key)
                << "\": ";
            if (arg.is_string) {
              out << "\"" << JsonEscape(arg.value) << "\"";
            } else {
              out << arg.value;
            }
            first_arg = false;
          }
          out << "}";
        }
        out << "}";
      }
    }
    out << "\n]\n";
    if (!out) {
      std::fprintf(stderr, "trace_merge: cannot write %s\n",
                   opt.chrome_out.c_str());
      return 2;
    }
  }

  // ---- tsdist.fleettrace.v1 analysis ----
  std::string analysis;
  {
    analysis += "{\n  \"schema\": \"tsdist.fleettrace.v1\",\n";
    analysis += "  \"run_id\": \"" + JsonEscape(run_id) + "\",\n";
    analysis += "  \"processes\": " + std::to_string(spools.size()) + ",\n";
    analysis += "  \"events\": " + std::to_string(total_events) + ",\n";
    analysis += "  \"torn\": {\"files\": " + std::to_string(torn_files) +
                ", \"lines\": " + std::to_string(torn_lines) +
                ", \"bytes\": " + std::to_string(torn_bytes) + "},\n";
    analysis += "  \"shard_events\": {\"claims\": " + std::to_string(claims) +
                ", \"steals\": " + std::to_string(steals) +
                ", \"reclaims\": " + std::to_string(reclaims) +
                ", \"conflicts\": " + std::to_string(conflicts) + "},\n";
    analysis += "  \"makespan_ms\": " + Ms(makespan_ms) + ",\n";
    analysis += "  \"imbalance_pct\": " + Ms(imbalance_pct) + ",\n";
    analysis += "  \"critical_path\": {\"segments\": [";
    bool first = true;
    for (const Cell* cell : chain) {
      analysis += first ? "\n" : ",\n";
      analysis += "    {\"proc\": \"" +
                  JsonEscape(spools[cell->spool].proc) + "\", \"name\": \"" +
                  JsonEscape(cell->event->name) + "\", \"start_ms\": " +
                  Ms(static_cast<double>(cell->start_ns - fleet_start_ns) /
                     1e6) +
                  ", \"dur_ms\": " +
                  Ms(static_cast<double>(cell->end_ns - cell->start_ns) /
                     1e6) +
                  "}";
      first = false;
    }
    analysis += std::string(first ? "" : "\n  ") +
                "], \"coverage_pct\": " + Ms(coverage_pct) + "},\n";
    analysis += "  \"workers\": [";
    first = true;
    for (std::size_t i = 0; i < spools.size(); ++i) {
      const auto& header = spools[i].contents.header;
      const double busy = stats[i].busy_ms;
      const double idle = std::max(0.0, makespan_ms - busy);
      analysis += first ? "\n" : ",\n";
      analysis += "    {\"proc\": \"" + JsonEscape(spools[i].proc) +
                  "\", \"role\": \"" + JsonEscape(header.role) +
                  "\", \"worker\": \"" + JsonEscape(header.worker) +
                  "\", \"pid\": " + std::to_string(header.pid) +
                  ", \"cells\": " + std::to_string(stats[i].cells) +
                  ", \"busy_ms\": " + Ms(busy) +
                  ", \"idle_ms\": " + Ms(idle) + ", \"busy_pct\": " +
                  Ms(makespan_ms > 0.0 ? 100.0 * busy / makespan_ms : 0.0) +
                  ", \"torn_lines\": " +
                  std::to_string(spools[i].contents.torn_lines) + "}";
      first = false;
    }
    analysis += std::string(first ? "" : "\n  ") + "],\n";
    analysis += "  \"stragglers\": [";
    first = true;
    for (const Cell* cell : by_duration) {
      const std::string* dataset = FindArg(*cell->event, "dataset");
      const std::string* measure = FindArg(*cell->event, "measure");
      analysis += first ? "\n" : ",\n";
      analysis += "    {\"name\": \"" + JsonEscape(cell->event->name) +
                  "\", \"proc\": \"" + JsonEscape(spools[cell->spool].proc) +
                  "\", \"dataset\": \"" +
                  JsonEscape(dataset != nullptr ? *dataset : "") +
                  "\", \"measure\": \"" +
                  JsonEscape(measure != nullptr ? *measure : "") +
                  "\", \"dur_ms\": " +
                  Ms(static_cast<double>(cell->end_ns - cell->start_ns) /
                     1e6) +
                  "}";
      first = false;
    }
    analysis += std::string(first ? "" : "\n  ") + "]\n}\n";
  }
  if (!opt.analysis_out.empty()) {
    std::ofstream out(opt.analysis_out, std::ios::binary);
    out << analysis;
    if (!out) {
      std::fprintf(stderr, "trace_merge: cannot write %s\n",
                   opt.analysis_out.c_str());
      return 2;
    }
  }

  // ---- human report ----
  std::printf("fleet trace: %zu processes, %zu events, makespan %.1f ms%s\n",
              spools.size(), total_events, makespan_ms,
              run_id.empty() ? "" : (", run " + run_id).c_str());
  if (skipped > 0) {
    std::printf("  skipped %zu unreadable spool file(s)\n", skipped);
  }
  if (torn_files > 0) {
    std::printf("  torn tails: %zu file(s), %zu line(s), %zu byte(s) — kill "
                "residue past the valid prefix\n",
                torn_files, torn_lines, torn_bytes);
  }
  std::printf("  shard events: %zu claims, %zu steals, %zu reclaims, %zu "
              "conflicts\n",
              claims, steals, reclaims, conflicts);
  for (std::size_t i = 0; i < spools.size(); ++i) {
    const auto& header = spools[i].contents.header;
    std::printf("  %-20s role=%-11s cells=%-4zu busy=%9.1f ms  idle=%9.1f "
                "ms  busy%%=%5.1f\n",
                spools[i].proc.c_str(),
                header.role.empty() ? "?" : header.role.c_str(),
                stats[i].cells, stats[i].busy_ms,
                std::max(0.0, makespan_ms - stats[i].busy_ms),
                makespan_ms > 0.0 ? 100.0 * stats[i].busy_ms / makespan_ms
                                  : 0.0);
  }
  std::printf("critical path: %zu segment(s), %.1f ms (%.1f%% of makespan)\n",
              chain.size(), chain_ms, coverage_pct);
  const std::size_t chain_show =
      std::min(chain.size(), static_cast<std::size_t>(opt.top));
  for (std::size_t i = 0; i < chain_show; ++i) {
    const Cell* cell = chain[i];
    std::printf("  %8.1f ms  %-12s %s\n",
                static_cast<double>(cell->end_ns - cell->start_ns) / 1e6,
                spools[cell->spool].proc.c_str(), cell->event->name.c_str());
  }
  if (chain.size() > chain_show) {
    std::printf("  ... %zu more segment(s)\n", chain.size() - chain_show);
  }
  if (!by_duration.empty()) {
    std::printf("top stragglers:\n");
    for (const Cell* cell : by_duration) {
      std::printf("  %8.1f ms  %-12s %s\n",
                  static_cast<double>(cell->end_ns - cell->start_ns) / 1e6,
                  spools[cell->spool].proc.c_str(),
                  cell->event->name.c_str());
    }
  }
  std::printf("imbalance: %.1f%% across %zu cell-computing process(es)\n",
              imbalance_pct, computing);

  if (opt.max_imbalance_pct >= 0.0 &&
      imbalance_pct > opt.max_imbalance_pct) {
    std::printf("GATE FAILED: imbalance %.1f%% exceeds --max-imbalance-pct "
                "%.1f%s\n",
                imbalance_pct, opt.max_imbalance_pct,
                opt.warn_only ? " (warn-only: exiting 0)" : "");
    return opt.warn_only ? 0 : 1;
  }
  if (opt.max_imbalance_pct >= 0.0) {
    std::printf("gate ok: imbalance %.1f%% within %.1f%%\n", imbalance_pct,
                opt.max_imbalance_pct);
  }
  return 0;
}
