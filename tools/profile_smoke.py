#!/usr/bin/env python3
"""End-to-end smoke test for the sampling profiler pipeline.

Runs the same tiny evaluation sweep three times with the real tsdist_eval
binary:

  1. a plain run (no profiling) — the reference results;
  2. a profiled run (--profile-out + --profile-trace);
  3. a second profiled run — the diff baseline.

Then asserts the whole contract end to end:

  * the results JSON of all three runs is bit-identical — profiling must
    never change evaluation output;
  * both folded profiles carry the tsdist.profile.v1 header and parse
    (validated via check_metrics_schema.check_folded_profile), and the
    profiled sweep captured at least one sample;
  * the Chrome-trace view is valid JSON with the stackFrames/samples shape;
  * profile_diff over the two captures of the identical binary exits 0 —
    sampling noise alone must not trip the hotspot gate.

Stdlib only. Exits 0 on success, 1 with a message per failure otherwise.

Usage:
  profile_smoke.py --eval build/tools/tsdist_eval \
      --profile-diff build/tools/profile_diff \
      --schema-check tools/check_metrics_schema.py \
      --workdir build/tools/profile_smoke [--timeout 300]
"""

import argparse
import importlib.util
import json
import os
import subprocess
import sys


def fail(msg):
    print(f"profile_smoke: {msg}", file=sys.stderr)
    return 1


def load_schema_module(path):
    spec = importlib.util.spec_from_file_location("check_metrics_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_eval(binary, workdir, tag, timeout, profile=False):
    results = os.path.join(workdir, f"results_{tag}.json")
    cmd = [
        binary, "--scale", "tiny", "--measures", "euclidean,dtw",
        "--results-json", results,
    ]
    artifacts = {"results": results}
    if profile:
        artifacts["folded"] = os.path.join(workdir, f"profile_{tag}.folded")
        artifacts["trace"] = os.path.join(workdir, f"profile_{tag}.json")
        cmd += ["--profile-out", artifacts["folded"],
                "--profile-trace", artifacts["trace"]]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, timeout=timeout)
    return proc, artifacts


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--eval", required=True, dest="eval_binary",
                        help="path to the tsdist_eval binary")
    parser.add_argument("--profile-diff", required=True,
                        help="path to the profile_diff binary")
    parser.add_argument("--schema-check", required=True,
                        help="path to check_metrics_schema.py")
    parser.add_argument("--workdir", required=True,
                        help="scratch directory for artifacts")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="per-run deadline in seconds")
    args = parser.parse_args(argv)

    os.makedirs(args.workdir, exist_ok=True)
    schema = load_schema_module(args.schema_check)

    runs = {}
    for tag, profile in (("plain", False), ("a", True), ("b", True)):
        proc, artifacts = run_eval(args.eval_binary, args.workdir, tag,
                                   args.timeout, profile=profile)
        if proc.returncode != 0:
            return fail(f"run '{tag}' exited {proc.returncode}; stderr:\n"
                        + proc.stderr)
        runs[tag] = artifacts

    # 1. Bit-identity: profiling must be a pure observer.
    with open(runs["plain"]["results"], "rb") as f:
        reference = f.read()
    for tag in ("a", "b"):
        with open(runs[tag]["results"], "rb") as f:
            if f.read() != reference:
                return fail(f"results JSON of profiled run '{tag}' differs "
                            "from the unprofiled run")

    # 2. Folded profiles: schema-valid and non-empty.
    for tag in ("a", "b"):
        with open(runs[tag]["folded"], "r", encoding="utf-8") as f:
            folded = f.read()
        errors = []
        header = schema.check_folded_profile(errors, runs[tag]["folded"],
                                             folded)
        if errors:
            for e in errors:
                print(f"profile_smoke: {e}", file=sys.stderr)
            return 1
        if header["samples"] == 0:
            return fail(f"profiled run '{tag}' captured zero samples")

    # 3. Chrome-trace view: valid JSON, sampling-profile shape.
    with open(runs["a"]["trace"], "r", encoding="utf-8") as f:
        trace = json.load(f)
    for key in ("traceEvents", "stackFrames", "samples"):
        if key not in trace:
            return fail(f"profile trace missing {key!r}")
    if not trace["samples"]:
        return fail("profile trace has no samples")

    # 4. Two captures of the same binary must pass the hotspot gate.
    diff = subprocess.run(
        [args.profile_diff, runs["a"]["folded"], runs["b"]["folded"]],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        timeout=args.timeout)
    if diff.returncode != 0:
        return fail(f"profile_diff exited {diff.returncode} on identical "
                    f"binaries:\n{diff.stdout}")

    print("profile_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
